"""Internal validation helpers shared across the package.

These helpers keep precondition checks uniform: every public entry point
validates its inputs eagerly and raises :class:`repro.exceptions.ValidationError`
with an actionable message, rather than failing deep inside numpy/scipy
with an inscrutable traceback.
"""

from __future__ import annotations

import ast
import functools
import inspect
import math
import os
from collections.abc import Callable, Iterable, Mapping, Sequence
from typing import Any, TypeVar

from .exceptions import ValidationError

__all__ = [
    "require",
    "check_positive",
    "check_nonnegative",
    "check_probability",
    "check_probability_vector",
    "check_integer_in_range",
    "check_finite",
    "check_scale",
    "contract",
    "effects",
    "EFFECT_KINDS",
    "cost",
    "cost_expression_problems",
    "COST_SYMBOLS",
    "COST_SCALES",
    "raises",
    "exception_name_problems",
]

#: Tolerance used when validating probability vectors and comparing loads.
PROBABILITY_TOLERANCE = 1e-9


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with *message* unless *condition* holds."""
    if not condition:
        raise ValidationError(message)


def check_finite(value: float, name: str) -> float:
    """Validate that *value* is a finite real number and return it as float."""
    try:
        result = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a real number, got {value!r}") from exc
    if not math.isfinite(result):
        raise ValidationError(f"{name} must be finite, got {result!r}")
    return result


def check_positive(value: float, name: str) -> float:
    """Validate that *value* is a finite number strictly greater than zero."""
    result = check_finite(value, name)
    if result <= 0:
        raise ValidationError(f"{name} must be positive, got {result!r}")
    return result


def check_nonnegative(value: float, name: str) -> float:
    """Validate that *value* is a finite number greater than or equal to zero."""
    result = check_finite(value, name)
    if result < 0:
        raise ValidationError(f"{name} must be non-negative, got {result!r}")
    return result


def check_probability(value: float, name: str) -> float:
    """Validate that *value* lies in the closed interval [0, 1]."""
    result = check_finite(value, name)
    if not -PROBABILITY_TOLERANCE <= result <= 1 + PROBABILITY_TOLERANCE:
        raise ValidationError(f"{name} must lie in [0, 1], got {result!r}")
    return min(max(result, 0.0), 1.0)


def check_probability_vector(values: Sequence[float], name: str) -> list[float]:
    """Validate that *values* are non-negative and sum to one.

    Returns the values normalized exactly (dividing by their sum) so that
    downstream arithmetic can rely on an exact unit total.
    """
    cleaned = [check_nonnegative(v, f"{name}[{i}]") for i, v in enumerate(values)]
    total = sum(cleaned)
    if abs(total - 1.0) > 1e-6:
        raise ValidationError(
            f"{name} must sum to 1 (got {total!r}); normalize weights with "
            "AccessStrategy.from_weights if they are unnormalized"
        )
    return [v / total for v in cleaned]


def check_integer_in_range(
    value: Any, name: str, *, low: int | None = None, high: int | None = None
) -> int:
    """Validate that *value* is an integer within the inclusive range [low, high]."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    if low is not None and value < low:
        raise ValidationError(f"{name} must be >= {low}, got {value}")
    if high is not None and value > high:
        raise ValidationError(f"{name} must be <= {high}, got {value}")
    return value


#: The closed set of values accepted by every solver ``scale=`` keyword.
SCALE_VALUES = (None, "dense", "large")


def check_scale(scale: str | None) -> str | None:
    """Validate a solver ``scale=`` keyword and return it unchanged.

    The shared gate behind every entry point that routes between the
    dense metric and the lazy/streamed large-scale path (``docs/api.md``
    documents the matrix): ``None`` and ``"dense"`` mean the classic
    dense ``(n, n)`` metric, ``"large"`` routes all distance access
    through :meth:`repro.network.Network.lazy_metric`.
    """
    if scale not in SCALE_VALUES:
        raise ValidationError(
            f"scale must be one of {SCALE_VALUES}, got {scale!r}"
        )
    return scale


#: Environment switch for runtime contract enforcement.  The static
#: checker (``repro lint --dataflow``, rules R200/R202) reads the same
#: declarations from the AST, so production runs pay nothing.
CONTRACTS_ENV = "REPRO_DEBUG_CONTRACTS"

_F = TypeVar("_F", bound=Callable[..., Any])

#: Accepted numpy dtype kinds per declared coarse kind.  Integer arrays
#: are acceptable wherever floats are declared (they promote exactly).
_DTYPE_KINDS = {"float": "fiu", "int": "iu", "bool": "b"}


def _contracts_enabled() -> bool:
    return os.environ.get(CONTRACTS_ENV) == "1"


def _check_shape(
    value: Any, declared: Sequence[int | str], name: str, symbols: dict[str, int]
) -> None:
    shape = getattr(value, "shape", None)
    if shape is None:
        raise ValidationError(
            f"contract on {name}: expected an array with shape "
            f"{tuple(declared)}, got {type(value).__name__}"
        )
    if len(shape) != len(declared):
        raise ValidationError(
            f"contract on {name}: expected rank {len(declared)} "
            f"(shape {tuple(declared)}), got shape {tuple(shape)}"
        )
    for axis, (want, got) in enumerate(zip(declared, shape)):
        if isinstance(want, int):
            if got != want:
                raise ValidationError(
                    f"contract on {name}: axis {axis} must have extent "
                    f"{want}, got {got}"
                )
        else:
            bound = symbols.setdefault(want, int(got))
            if bound != got:
                raise ValidationError(
                    f"contract on {name}: axis {axis} ({want}) must match "
                    f"extent {bound} bound earlier, got {got}"
                )


def _check_dtype(value: Any, declared: str, name: str) -> None:
    dtype = getattr(value, "dtype", None)
    kind = getattr(dtype, "kind", None)
    accepted = _DTYPE_KINDS.get(declared)
    if accepted is None or kind is None:
        return
    if kind not in accepted:
        raise ValidationError(
            f"contract on {name}: expected dtype kind {declared!r}, "
            f"got dtype {dtype!r}"
        )


def _check_simplex(value: Any, name: str) -> None:
    import numpy

    array = numpy.asarray(value, dtype=float)
    if array.size and float(array.min()) < -PROBABILITY_TOLERANCE:
        raise ValidationError(
            f"contract on {name}: simplex vector has a negative entry "
            f"({float(array.min())!r})"
        )
    total = float(array.sum())
    if abs(total - 1.0) > 1e-6:
        raise ValidationError(
            f"contract on {name}: simplex vector must sum to 1, got {total!r}"
        )


def _check_nonnegative_array(value: Any, name: str) -> None:
    import numpy

    array = numpy.asarray(value, dtype=float)
    if array.size and float(array.min()) < 0:
        raise ValidationError(
            f"contract on {name}: expected non-negative entries, found "
            f"{float(array.min())!r}"
        )


def _enforce_one(
    value: Any,
    name: str,
    spec: Mapping[str, Any],
    symbols: dict[str, int],
) -> None:
    shape = spec.get("shape")
    if shape is not None:
        _check_shape(value, shape, name, symbols)
    dtype = spec.get("dtype")
    if dtype is not None:
        _check_dtype(value, dtype, name)
    if spec.get("simplex"):
        _check_simplex(value, name)
    if spec.get("nonnegative"):
        _check_nonnegative_array(value, name)


def enforce_contract(
    func: Callable[..., Any],
    spec: Mapping[str, Any],
    args: tuple[Any, ...],
    kwargs: Mapping[str, Any],
    result: Any = None,
    *,
    check_result: bool = False,
) -> None:
    """Check *spec* against a call (used by the ``contract`` wrapper and
    directly testable without toggling the environment switch)."""
    label = getattr(func, "__qualname__", getattr(func, "__name__", "callable"))
    symbols: dict[str, int] = {}
    if not check_result:
        bound = inspect.signature(func).bind(*args, **kwargs)
        bound.apply_defaults()
        for parameter, parameter_spec in spec.get("params", {}).items():
            if parameter in bound.arguments:
                _enforce_one(
                    bound.arguments[parameter],
                    f"{label}({parameter})",
                    parameter_spec,
                    symbols,
                )
        return
    returns = spec.get("returns")
    if returns is None:
        return
    if isinstance(returns, Sequence) and not isinstance(returns, Mapping):
        values = result if isinstance(result, tuple) else (result,)
        for position, item_spec in enumerate(returns):
            if position < len(values):
                _enforce_one(
                    values[position],
                    f"{label}(return[{position}])",
                    item_spec,
                    symbols,
                )
    else:
        _enforce_one(result, f"{label}(return)", returns, symbols)


def contract(
    *,
    shapes: Mapping[str, Sequence[int | str]] | None = None,
    dtypes: Mapping[str, str] | None = None,
    simplex: Sequence[str] = (),
    nonnegative: Sequence[str] = (),
    returns: Mapping[str, Any] | Sequence[Mapping[str, Any]] | None = None,
) -> Callable[[_F], _F]:
    """Declare array preconditions on a kernel or metric builder.

    The declaration is attached to the function as ``__contract__`` and
    checked *statically* at resolved call sites by ``repro lint
    --dataflow`` (rules R200 and R202).  At runtime the checks only run
    when ``REPRO_DEBUG_CONTRACTS=1``, raising :class:`ValidationError`
    on violation — production call paths pay a single dict lookup.

    ``shapes`` maps parameter names to shape tuples whose axes are
    concrete extents or symbols (``("s", "L")``); a symbol must bind the
    same extent everywhere it appears, across parameters and returns.
    ``dtypes`` maps parameters to coarse kinds (``"float"`` accepts any
    numeric dtype, ``"int"`` integers only).  ``simplex`` and
    ``nonnegative`` list parameters carrying those invariants.
    ``returns`` is a spec mapping (``{"shape": ..., "dtype": ...,
    "simplex": True}``) or a sequence of such mappings for tuple
    returns.
    """
    params: dict[str, dict[str, Any]] = {}
    for name, shape in (shapes or {}).items():
        params.setdefault(name, {})["shape"] = tuple(shape)
    for name, dtype in (dtypes or {}).items():
        params.setdefault(name, {})["dtype"] = dtype
    for name in simplex:
        params.setdefault(name, {})["simplex"] = True
    for name in nonnegative:
        params.setdefault(name, {})["nonnegative"] = True
    spec: dict[str, Any] = {"params": params, "returns": returns}

    def decorate(func: _F) -> _F:
        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if _contracts_enabled():
                enforce_contract(func, spec, args, kwargs)
                result = func(*args, **kwargs)
                enforce_contract(
                    func, spec, args, kwargs, result, check_result=True
                )
                return result
            return func(*args, **kwargs)

        wrapper.__contract__ = spec  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate


#: The effect vocabulary understood by the ``repro lint --effects`` tier.
#: ``"pure"`` declares the empty effect set and cannot be combined with
#: other kinds.  See ``docs/static_analysis.md`` for what each kind means.
EFFECT_KINDS = frozenset(
    {
        "pure",
        "reads-global",
        "writes-global",
        "writes-metrics",
        "ambient-rng",
        "io",
        "spawns",
    }
)


def effects(*kinds: str) -> Callable[[_F], _F]:
    """Declare a function's side-effect set for the effects linter.

    The declaration is attached as ``__effects__`` (a frozenset of kind
    strings; ``effects("pure")`` attaches the empty set) and checked
    *statically* against the inferred effect set by ``repro lint
    --effects`` (rules R400/R401).  Functions whose declared-and-verified
    effects are limited to ``reads-global`` / ``writes-metrics`` appear
    as parallel-safe in the emitted certificate, which is what
    :func:`repro.parallel.parallel_map` gates process fan-out on.

    Unlike :func:`contract`, no wrapper is installed: the function object
    is returned unchanged (so it stays picklable for process pools) and
    the declaration costs nothing at call time.
    """
    declared = frozenset(kinds)
    unknown = declared - EFFECT_KINDS
    if unknown:
        raise ValidationError(
            f"unknown effect kind(s) {sorted(unknown)!r}; "
            f"known kinds: {sorted(EFFECT_KINDS)}"
        )
    if not declared:
        raise ValidationError(
            "effects() needs at least one kind; use effects('pure') to "
            "declare the empty effect set"
        )
    if "pure" in declared and len(declared) > 1:
        raise ValidationError(
            "effects('pure') cannot be combined with other effect kinds"
        )

    def decorate(func: _F) -> _F:
        func.__effects__ = (  # type: ignore[attr-defined]
            frozenset() if declared == {"pure"} else declared
        )
        return func

    return decorate


#: Symbol vocabulary of the asymptotic-cost tier (``repro lint --cost``).
#: ``n`` counts network nodes, ``m`` edges, ``q`` quorums in the system,
#: ``c`` candidate placements.  See ``docs/static_analysis.md``.
COST_SYMBOLS = ("n", "m", "q", "c")

#: Accepted ``scale=`` tags on :func:`cost`.  ``"large"`` marks a code
#: path meant to survive 10^3-10^5 node instances; R502 forbids dense
#: all-pairs metric materialization behind such a tag.
COST_SCALES = frozenset({"small", "medium", "large"})


def cost_expression_problems(expression: str) -> tuple[str, ...]:
    """Syntax-check a :func:`cost` bound; returns problem messages.

    The grammar is deliberately tiny: sums of products of ``sym``,
    ``sym**INT``, positive integer constants, ``log(sym)`` and
    ``exp(sym)`` (``2**sym`` is accepted as a spelling of the latter)
    over the :data:`COST_SYMBOLS` vocabulary.  An empty tuple means the
    expression is well-formed.  The static cost tier
    (``repro.lint.costmodel``) evaluates only expressions this function
    accepts, so the two stay in lockstep by construction.
    """
    problems: list[str] = []
    try:
        tree = ast.parse(expression, mode="eval")
    except SyntaxError:
        return (f"cost expression {expression!r} is not valid Python syntax",)

    known = ", ".join(COST_SYMBOLS)

    def visit(node: ast.expr) -> None:
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, (ast.Add, ast.Mult)):
                visit(node.left)
                visit(node.right)
                return
            if isinstance(node.op, ast.Pow):
                base, exponent = node.left, node.right
                if isinstance(base, ast.Name):
                    if base.id not in COST_SYMBOLS:
                        problems.append(
                            f"unknown cost symbol {base.id!r}; known: {known}"
                        )
                    if not (
                        isinstance(exponent, ast.Constant)
                        and isinstance(exponent.value, int)
                        and not isinstance(exponent.value, bool)
                        and exponent.value >= 0
                    ):
                        problems.append(
                            "polynomial exponents must be non-negative "
                            "integer literals"
                        )
                    return
                if (
                    isinstance(base, ast.Constant)
                    and base.value == 2
                    and isinstance(exponent, ast.Name)
                ):
                    if exponent.id not in COST_SYMBOLS:
                        problems.append(
                            f"unknown cost symbol {exponent.id!r}; "
                            f"known: {known}"
                        )
                    return
                problems.append(
                    "'**' accepts sym**INT or the exponential spelling "
                    "2**sym only"
                )
                return
            problems.append(
                "cost expressions combine terms with '+' and '*' only"
            )
            return
        if isinstance(node, ast.Name):
            if node.id not in COST_SYMBOLS:
                problems.append(
                    f"unknown cost symbol {node.id!r}; known: {known}"
                )
            return
        if isinstance(node, ast.Constant):
            if (
                not isinstance(node.value, int)
                or isinstance(node.value, bool)
                or node.value < 1
            ):
                problems.append(
                    "constant factors must be positive integer literals"
                )
            return
        if isinstance(node, ast.Call):
            name = node.func.id if isinstance(node.func, ast.Name) else None
            if name not in ("log", "exp"):
                problems.append(
                    "only log(sym) and exp(sym) calls are allowed"
                )
                return
            if (
                len(node.args) != 1
                or node.keywords
                or not isinstance(node.args[0], ast.Name)
            ):
                problems.append(f"{name}() takes exactly one cost symbol")
                return
            argument = node.args[0]
            assert isinstance(argument, ast.Name)
            if argument.id not in COST_SYMBOLS:
                problems.append(
                    f"unknown cost symbol {argument.id!r}; known: {known}"
                )
            return
        problems.append(
            f"unsupported construct {type(node).__name__!r} in cost "
            "expression"
        )

    visit(tree.body)
    return tuple(problems)


def cost(expression: str, *, scale: str | None = None) -> Callable[[_F], _F]:
    """Declare a function's asymptotic cost for the cost linter.

    *expression* is a symbolic upper bound over the
    :data:`COST_SYMBOLS` vocabulary, e.g. ``@cost("n**2 * c")`` — sums
    of products of symbols, ``sym**INT`` powers, ``log(sym)`` factors
    and ``exp(sym)`` (or ``2**sym``) exponential markers.  The optional
    ``scale="large"`` tag promises the function is safe on large
    instances (R502 then forbids reachable dense all-pairs metric
    builds).

    The declaration is attached as ``__cost__`` / ``__cost_scale__`` and
    checked *statically* by ``repro lint --cost`` (rule R500: the
    inferred bound must be covered by the declared one) and *empirically*
    by ``repro lint --cost --profile-check`` (rule R504: measured
    scaling exponents must not exceed the declaration).  Like
    :func:`effects`, no wrapper is installed: the function object is
    returned unchanged and the declaration costs nothing at call time.
    """
    if not isinstance(expression, str):
        raise ValidationError(
            f"cost expression must be a string, got {expression!r}"
        )
    problems = cost_expression_problems(expression)
    if problems:
        raise ValidationError(
            f"malformed cost expression {expression!r}: "
            + "; ".join(problems)
        )
    if scale is not None and scale not in COST_SCALES:
        raise ValidationError(
            f"unknown cost scale {scale!r}; known: {sorted(COST_SCALES)}"
        )

    def decorate(func: _F) -> _F:
        func.__cost__ = expression  # type: ignore[attr-defined]
        func.__cost_scale__ = scale  # type: ignore[attr-defined]
        return func

    return decorate


def exception_name_problems(name: Any) -> tuple[str, ...]:
    """Syntax-check one :func:`raises` entry; returns problem messages.

    An entry must be a bare exception *class name* (a Python
    identifier, conventionally CapWords like ``"InfeasibleError"``) —
    not a dotted path and not a class object, so the declaration can be
    read off the AST by the static tier without import machinery.  An
    empty tuple means the entry is well-formed.
    """
    if not isinstance(name, str):
        return (f"exception names must be strings, got {name!r}",)
    if not name.isidentifier():
        return (
            f"exception name {name!r} must be a bare class name "
            "(a Python identifier, no dots)",
        )
    if not name[:1].isupper():
        return (
            f"exception name {name!r} must be CapWords "
            "(a class name, not an instance)",
        )
    return ()


def raises(*names: str, transient: Sequence[str] = ()) -> Callable[[_F], _F]:
    """Declare a function's escaping-exception contract for the linter.

    *names* are the exception class names the function may let escape
    (e.g. ``@raises("InfeasibleError", "ValidationError")``); the
    keyword-only ``transient`` tuple marks the subset that is safe to
    retry (e.g. ``transient=("SolverError",)`` for solver-level
    breakdowns that a fresh attempt can clear).  Transient names are
    implicitly part of the escape set and need not be repeated
    positionally.  ``@raises()`` declares the empty escape set.

    The declaration is attached as ``__raises__`` / ``__raises_transient__``
    and checked *statically* against the interprocedurally inferred
    escape set by ``repro lint --errors`` (rule R600); validated entry
    points are published in the ``repro-error-contract`` certificate
    that :func:`repro.resilience.retrying` gates retries on.  Like
    :func:`effects` and :func:`cost`, no wrapper is installed: the
    function object is returned unchanged (so it stays picklable for
    process pools) and the declaration costs nothing at call time.
    """
    problems: list[str] = []
    for entry in (*names, *transient):
        problems.extend(exception_name_problems(entry))
    if problems:
        raise ValidationError(
            "malformed raises declaration: " + "; ".join(problems)
        )
    declared = frozenset(names) | frozenset(transient)

    def decorate(func: _F) -> _F:
        func.__raises__ = declared  # type: ignore[attr-defined]
        func.__raises_transient__ = frozenset(  # type: ignore[attr-defined]
            transient
        )
        return func

    return decorate


def unique_items(items: Iterable[Any], name: str) -> list[Any]:
    """Return *items* as a list, raising if any item appears more than once."""
    seen: set[Any] = set()
    result: list[Any] = []
    for item in items:
        if item in seen:
            raise ValidationError(f"{name} contains duplicate item {item!r}")
        seen.add(item)
        result.append(item)
    return result
