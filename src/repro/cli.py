"""Command-line interface.

Exposes the library's planning loop to shells and scripts::

    python -m repro system grid:3                 # inspect a construction
    python -m repro place grid:3 geometric:12:0.5 --capacity 1.0 \\
        --objective max --alpha 2 --out placement.json
    python -m repro evaluate placement.json       # delays/loads of a saved placement
    python -m repro gap --k 5                     # Figure 1 numbers
    python -m repro profile bench --quick         # trace + metrics of any command
    python -m repro lint src --whole-program      # invariant linter (R001-R104)
    python -m repro lint src --dataflow           # contract/dataflow rules (R200-R204)
    python -m repro lint src --errors             # exception-flow rules (R600-R604)
    python -m repro errors --check                # @raises vs inferred escape sets
    python -m repro deps src --dot                # module import graph
    python -m repro trace --json                  # theorem traceability matrix

Spec mini-language (shared by ``system`` and ``place``):

* systems — ``grid:K``, ``majority:N``, ``threshold:N:T``, ``fpp:Q``,
  ``wheel:N``, ``tree:H``, ``cwlog:ROWS``, ``star:N``
* networks — ``path:N``, ``cycle:N``, ``star:N``, ``complete:N``,
  ``lattice:R:C``, ``geometric:N:RADIUS``, ``er:N:P``, ``waxman:N``,
  ``twocluster:SIZE:BRIDGE``, ``broom:K``

Random networks take ``--seed`` (default 0) and are fully deterministic.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

import numpy as np

from . import io
from .analysis.integrality import broom_gap_instance
from .analysis.reporting import ResultTable
from .core import (
    average_max_delay,
    average_total_delay,
    capacity_violation_factor,
    node_loads,
    solve_qpp,
    solve_total_delay,
)
from .exceptions import ReproError, ValidationError
from .lint.cli import (
    add_cost_arguments,
    add_deps_arguments,
    add_errors_arguments,
    add_lint_arguments,
    add_trace_arguments,
    run_cost,
    run_deps,
    run_errors,
    run_lint,
    run_trace,
)
from .network import generators
from .network.graph import Network
from .serve import PlacementService, serve_session
from .quorums import (
    AccessStrategy,
    QuorumSystem,
    cw_log,
    degree_statistics,
    grid,
    majority,
    optimal_strategy,
    projective_plane,
    resilience,
    star,
    threshold,
    tree_quorum_system,
    wheel,
)

__all__ = ["main", "parse_system_spec", "parse_network_spec"]


def _int_args(parts: list[str], count: int, spec: str) -> list[int]:
    if len(parts) != count:
        raise ValidationError(f"spec {spec!r}: expected {count} integer parameter(s)")
    try:
        return [int(p) for p in parts]
    except ValueError as exc:
        raise ValidationError(f"spec {spec!r}: parameters must be integers") from exc


def parse_system_spec(spec: str) -> QuorumSystem:
    """Build a quorum system from a ``name:params`` spec string."""
    kind, _, rest = spec.partition(":")
    parts = rest.split(":") if rest else []
    if kind == "grid":
        (k,) = _int_args(parts, 1, spec)
        return grid(k)
    if kind == "majority":
        (n,) = _int_args(parts, 1, spec)
        return majority(n)
    if kind == "threshold":
        n, t = _int_args(parts, 2, spec)
        return threshold(n, t)
    if kind == "fpp":
        (q,) = _int_args(parts, 1, spec)
        return projective_plane(q)
    if kind == "wheel":
        (n,) = _int_args(parts, 1, spec)
        return wheel(n)
    if kind == "tree":
        (h,) = _int_args(parts, 1, spec)
        return tree_quorum_system(h)
    if kind == "cwlog":
        (rows,) = _int_args(parts, 1, spec)
        return cw_log(rows)
    if kind == "star":
        (n,) = _int_args(parts, 1, spec)
        return star(n)
    raise ValidationError(
        f"unknown system spec {spec!r}; see `python -m repro --help`"
    )


def parse_network_spec(spec: str, *, seed: int = 0) -> Network:
    """Build a network from a ``name:params`` spec string."""
    kind, _, rest = spec.partition(":")
    parts = rest.split(":") if rest else []
    rng = np.random.default_rng(seed)
    if kind == "path":
        (n,) = _int_args(parts, 1, spec)
        return generators.path_network(n)
    if kind == "cycle":
        (n,) = _int_args(parts, 1, spec)
        return generators.cycle_network(n)
    if kind == "star":
        (n,) = _int_args(parts, 1, spec)
        return generators.star_network(n)
    if kind == "complete":
        (n,) = _int_args(parts, 1, spec)
        return generators.complete_network(n)
    if kind == "lattice":
        rows, columns = _int_args(parts, 2, spec)
        return generators.grid_network(rows, columns)
    if kind == "geometric":
        if len(parts) != 2:
            raise ValidationError(f"spec {spec!r}: expected geometric:N:RADIUS")
        n = int(parts[0])
        radius = float(parts[1])
        return generators.random_geometric_network(n, radius, rng=rng)
    if kind == "er":
        if len(parts) != 2:
            raise ValidationError(f"spec {spec!r}: expected er:N:P")
        n = int(parts[0])
        p = float(parts[1])
        return generators.erdos_renyi_network(n, p, rng=rng)
    if kind == "waxman":
        (n,) = _int_args(parts, 1, spec)
        return generators.waxman_network(n, rng=rng)
    if kind == "twocluster":
        if len(parts) != 2:
            raise ValidationError(f"spec {spec!r}: expected twocluster:SIZE:BRIDGE")
        size = int(parts[0])
        bridge = float(parts[1])
        return generators.two_cluster_network(size, bridge_length=bridge)
    if kind == "broom":
        (k,) = _int_args(parts, 1, spec)
        return generators.broom_network(k)
    raise ValidationError(
        f"unknown network spec {spec!r}; see `python -m repro --help`"
    )


# -- subcommands ------------------------------------------------------------------


def _cmd_system(args: argparse.Namespace) -> int:
    system = parse_system_spec(args.spec)
    stats = degree_statistics(system)
    uniform = AccessStrategy.uniform(system)
    table = ResultTable(f"system {args.spec}", ["property", "value"])
    table.add_row(property="quorums", value=len(system))
    table.add_row(property="universe", value=system.universe_size)
    table.add_row(property="quorum size (min/mean/max)",
                  value=f"{stats.min_quorum_size}/{stats.mean_quorum_size:.2f}/{stats.max_quorum_size}")
    table.add_row(property="element degree (min/max)",
                  value=f"{stats.min_degree}/{stats.max_degree}")
    table.add_row(property="uniform max load", value=uniform.max_load())
    if args.optimal_load:
        table.add_row(property="optimal (Naor-Wool) load",
                      value=optimal_strategy(system).load)
    if system.universe_size <= 16:
        table.add_row(property="resilience", value=resilience(system))
    if args.dual and system.universe_size <= 15:
        from .quorums import is_non_dominated, minimal_transversals

        transversals = minimal_transversals(system)
        table.add_row(property="minimal transversals", value=len(transversals))
        table.add_row(
            property="non-dominated (self-dual)",
            value=is_non_dominated(system),
        )
    table.print()
    return 0


def _cmd_place(args: argparse.Namespace) -> int:
    system = parse_system_spec(args.system)
    network = parse_network_spec(args.network, seed=args.seed)
    if args.capacity is not None:
        network = network.with_capacities(float(args.capacity))
    if args.strategy == "uniform":
        strategy = AccessStrategy.uniform(system)
    else:
        strategy = optimal_strategy(system).strategy

    if args.objective == "max":
        result = solve_qpp(system, strategy, network=network, alpha=args.alpha)
        placement = result.placement
        objective_value = result.objective
        extra = [
            ("approx factor (proven)", result.approximation_factor),
            ("certified OPT lower bound", result.optimum_lower_bound),
        ]
    else:
        total = solve_total_delay(system, strategy, network=network)
        placement = total.placement
        objective_value = total.objective
        extra = [("LP bound (>= this placement)", total.lp_value)]

    table = ResultTable(
        f"placement of {args.system} on {args.network}", ["metric", "value"]
    )
    table.add_row(metric=f"avg {args.objective}-delay", value=objective_value)
    table.add_row(
        metric="worst load/capacity",
        value=capacity_violation_factor(placement, strategy),
    )
    for name, value in extra:
        table.add_row(metric=name, value=value)
    table.print()

    if args.out:
        io.save_json(io.placement_to_dict(placement), args.out)
        print(f"placement written to {args.out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    system = parse_system_spec(args.system)
    network = parse_network_spec(args.network, seed=args.seed)
    if args.capacity is not None:
        network = network.with_capacities(float(args.capacity))
    if args.strategy == "uniform":
        strategy = AccessStrategy.uniform(system)
    else:
        strategy = optimal_strategy(system).strategy
    service = PlacementService(
        system,
        strategy,
        network,
        alpha=args.alpha,
        drift_threshold=args.drift_threshold,
        max_batch=args.max_batch,
        queue_limit=args.queue_limit,
        scale=args.scale,
        landmarks=args.landmarks,
        retry_certificate=args.retry_certificate,
        warm_limit=args.warm_limit,
    )
    source = sys.stdin if args.input == "-" else open(args.input, encoding="utf-8")
    sink = sys.stdout if args.out == "-" else open(args.out, "w", encoding="utf-8")
    try:
        summary = serve_session(service, source, sink)
    finally:
        if source is not sys.stdin:
            source.close()
        if sink is not sys.stdout:
            sink.close()
    print(
        f"served {summary.responses} response(s) to {summary.requests} "
        f"request(s) in {summary.ticks} tick(s): "
        f"{summary.resolves} re-solve(s), {summary.errors} error(s), "
        f"final snapshot v{summary.final_version}",
        file=sys.stderr,
    )
    return 0 if summary.errors == 0 else 1


def _cmd_evaluate(args: argparse.Namespace) -> int:
    placement = io.placement_from_dict(io.load_json(args.placement))
    strategy = AccessStrategy.uniform(placement.system)
    table = ResultTable(f"evaluation of {args.placement}", ["metric", "value"])
    table.add_row(metric="avg max-delay", value=average_max_delay(placement, strategy))
    table.add_row(
        metric="avg total-delay", value=average_total_delay(placement, strategy)
    )
    table.add_row(
        metric="worst load/capacity",
        value=capacity_violation_factor(placement, strategy),
    )
    loads = node_loads(placement, strategy)
    busiest = max(loads.items(), key=lambda kv: kv[1])
    table.add_row(metric="busiest node", value=f"{busiest[0]!r} ({busiest[1]:.4f})")
    table.print()
    return 0


def _cmd_gap(args: argparse.Namespace) -> int:
    table = ResultTable(
        "Figure 1 integrality gaps", ["k", "n", "lp_value", "integral_opt", "gap"]
    )
    for k in range(2, args.k + 1):
        instance = broom_gap_instance(k)
        table.add_row(
            k=k,
            n=k * k,
            lp_value=instance.lp_value,
            integral_opt=instance.integral_optimum,
            gap=instance.gap,
        )
    table.print()
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    import numpy as np

    from .experiments.suite_runner import compare_algorithms
    from .experiments.workloads import PlacementInstance, feasible_uniform_capacity

    system = parse_system_spec(args.system)
    network = parse_network_spec(args.network, seed=args.seed)
    strategy = AccessStrategy.uniform(system)
    if args.capacity is not None:
        network = network.with_capacities(float(args.capacity))
    else:
        network = feasible_uniform_capacity(system, strategy, network)
    instance = PlacementInstance(
        name=f"{args.system}@{args.network}",
        system=system,
        strategy=strategy,
        network=network,
    )
    comparison = compare_algorithms(
        instance, rng=np.random.default_rng(args.seed), alpha=args.alpha
    )
    table = ResultTable(
        f"algorithm comparison on {instance.name}",
        ["algorithm", "avg_max_delay", "avg_total_delay", "load_factor"],
    )
    for score in comparison.scores:
        table.add_row(
            algorithm=score.name if not score.failed else f"{score.name} (failed)",
            avg_max_delay=score.max_delay,
            avg_total_delay=score.total_delay,
            load_factor=score.load_factor,
        )
    table.print()
    if comparison.optimal_max_delay is not None:
        print(f"exact optimal avg max-delay: {comparison.optimal_max_delay:.4g}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .experiments.bench import (
        compare_bench_reports,
        render_bench_comparison_markdown,
        render_bench_comparison_text,
        run_bench,
        validate_bench_report,
    )

    compare_paths = list(args.compare or [])
    if len(compare_paths) > 2:
        raise ValidationError(
            "--compare takes OLD.json or OLD.json NEW.json, got "
            f"{len(compare_paths)} paths"
        )
    if len(compare_paths) == 2:
        # Pure comparison: no fresh run, no report written.
        old_report = io.load_json(compare_paths[0])
        new_report = io.load_json(compare_paths[1])
        comparison = compare_bench_reports(
            old_report, new_report, noise_band=args.noise_band
        )
        renderer = (
            render_bench_comparison_markdown
            if args.markdown
            else render_bench_comparison_text
        )
        print(renderer(comparison))
        return 1 if comparison.regressions else 0

    if args.trace_out:
        from .obs.trace import JsonlSpanSink, collect

        with JsonlSpanSink(args.trace_out) as sink, collect(sink):
            report = run_bench(
                quick=args.quick, seed=args.seed,
                large=args.large, large_nodes=args.large_nodes,
            )
    else:
        report = run_bench(
            quick=args.quick, seed=args.seed,
            large=args.large, large_nodes=args.large_nodes,
        )
    validate_bench_report(report)
    io.save_json(report, args.out)
    table = ResultTable(
        f"bench micro-suite (schema v{report['schema_version']}, "
        f"{'quick' if report['quick'] else 'full'}, seed {report['seed']})",
        ["case", "value", "seconds", "speedup"],
    )
    for name, case in report["cases"].items():
        timing = next(
            case[key]
            for key in ("vectorized_seconds", "batched_seconds",
                        "solve_seconds", "sweep_seconds", "p99_seconds")
            if key in case
        )
        value = next(
            case[key]
            for key in ("value", "capacity_violation_factor", "lp_value",
                        "average_delay", "nodes")
            if key in case
        )
        table.add_row(
            case=name,
            value=value,
            seconds=timing,
            speedup=case.get("speedup", float("nan")),
        )
    table.print()
    telemetry = report["telemetry"]
    lp_solves = telemetry["metrics"].get("lp.solve.count", 0.0)
    print(
        f"telemetry: {lp_solves:g} LP solves in "
        f"{telemetry['wall_seconds']:.3f}s (see report['telemetry'])"
    )
    print(f"report written to {args.out}")
    if args.trace_out:
        print(f"spans written to {args.trace_out}")
    if compare_paths:
        old_report = io.load_json(compare_paths[0])
        comparison = compare_bench_reports(
            old_report, report, noise_band=args.noise_band
        )
        renderer = (
            render_bench_comparison_markdown
            if args.markdown
            else render_bench_comparison_text
        )
        print(renderer(comparison))
        if comparison.regressions:
            return 1
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .obs.metrics import default_registry, telemetry_scope
    from .obs.report import (
        metrics_table_rows,
        telemetry_document,
        validate_telemetry_document,
    )
    from .obs.trace import JsonlSpanSink, collect, render_span_tree, span

    command = list(args.wrapped)
    if not command:
        raise ValidationError(
            "profile: missing command to wrap, e.g. `repro profile bench --quick`"
        )
    if command[0] == "profile":
        raise ValidationError("profile cannot wrap itself")

    wrapped = build_parser().parse_args(command)
    sink = JsonlSpanSink(args.trace_out) if args.trace_out else None
    sinks = (sink,) if sink is not None else ()
    try:
        with collect(*sinks) as collector, telemetry_scope() as telemetry:
            with span("cli", command=" ".join(command)):
                exit_code = wrapped.func(wrapped)
    finally:
        if sink is not None:
            sink.close()

    snapshot = telemetry.snapshot
    assert snapshot is not None  # telemetry_scope fills it on exit
    document = telemetry_document(
        command=command,
        exit_code=exit_code,
        collector=collector,
        counters=snapshot.metrics,
        registry=default_registry(),
    )
    validate_telemetry_document(document)
    if args.report_out:
        io.save_json(document, args.report_out)
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print()
        print(
            f"== span tree ({collector.span_count} spans, "
            f"max depth {collector.max_depth}) =="
        )
        print(render_span_tree(collector.roots))
        table = ResultTable(f"metrics for `repro {' '.join(command)}`",
                            ["metric", "value"])
        for name, value in metrics_table_rows(
            snapshot.metrics, wall_seconds=snapshot.wall_seconds
        ):
            table.add_row(metric=name, value=value)
        table.print()
        if args.trace_out:
            print(f"spans written to {args.trace_out}")
        if args.report_out:
            print(f"telemetry document written to {args.report_out}")
    return exit_code


def _cmd_lint(args: argparse.Namespace) -> int:
    return run_lint(args)


def _cmd_deps(args: argparse.Namespace) -> int:
    return run_deps(args)


def _cmd_trace(args: argparse.Namespace) -> int:
    return run_trace(args)


def _cmd_cost(args: argparse.Namespace) -> int:
    return run_cost(args)


def _cmd_errors(args: argparse.Namespace) -> int:
    return run_errors(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quorum placement (PODC 2005) planning tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_system = sub.add_parser("system", help="inspect a quorum construction")
    p_system.add_argument("spec", help="e.g. grid:3, majority:5, fpp:3")
    p_system.add_argument(
        "--optimal-load",
        action="store_true",
        help="also solve the Naor-Wool LP for the optimal load",
    )
    p_system.add_argument(
        "--dual",
        action="store_true",
        help="also report transversal count and non-domination "
        "(universes up to 15 elements)",
    )
    p_system.set_defaults(func=_cmd_system)

    p_place = sub.add_parser("place", help="compute a placement")
    p_place.add_argument("system", help="system spec, e.g. grid:3")
    p_place.add_argument("network", help="network spec, e.g. geometric:12:0.5")
    p_place.add_argument("--seed", type=int, default=0)
    p_place.add_argument("--capacity", type=float, default=None,
                         help="uniform node capacity (default: uncapacitated)")
    p_place.add_argument("--alpha", type=float, default=2.0)
    p_place.add_argument("--objective", choices=("max", "total"), default="max")
    p_place.add_argument("--strategy", choices=("uniform", "optimal"),
                         default="uniform")
    p_place.add_argument("--out", default=None, help="write placement JSON here")
    p_place.set_defaults(func=_cmd_place)

    p_serve = sub.add_parser(
        "serve",
        help="serve placement queries over JSONL (docs/serving.md)",
        description="Long-running placement service: reads repro-serve-"
        "request documents (one JSON object per line) from --input, "
        "answers each from the current placement snapshot, and re-solves "
        "when accumulated demand updates drift the objective past "
        "--drift-threshold. Responses go to --out; the session summary "
        "goes to stderr.",
    )
    p_serve.add_argument("system", help="system spec, e.g. majority:5")
    p_serve.add_argument("network", help="network spec, e.g. geometric:500:0.1")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--capacity", type=float, default=None,
                         help="uniform node capacity (default: uncapacitated)")
    p_serve.add_argument("--alpha", type=float, default=2.0)
    p_serve.add_argument("--strategy", choices=("uniform", "optimal"),
                         default="uniform")
    p_serve.add_argument("--scale", choices=("dense", "large"), default=None,
                         help="'large' routes re-solves and snapshot "
                         "evaluation through the lazy metric layer")
    p_serve.add_argument("--landmarks", type=int, default=16,
                         help="scale='large' oracle size / default sweep width")
    p_serve.add_argument("--drift-threshold", type=float, default=0.1,
                         help="relative objective drift that triggers a "
                         "re-solve (default 0.1)")
    p_serve.add_argument("--max-batch", type=int, default=64,
                         help="requests drained per tick (default 64)")
    p_serve.add_argument("--queue-limit", type=int, default=4096,
                         help="bounded request queue size (default 4096)")
    p_serve.add_argument("--warm-limit", type=int, default=None,
                         help="restrict re-solves to the N best relay "
                         "candidates of the previous solve")
    p_serve.add_argument("--retry-certificate", default=None,
                         help="error-contract JSON enabling retrying() "
                         "around re-solves (see docs/resilience.md)")
    p_serve.add_argument("--input", default="-",
                         help="JSONL request file, or - for stdin")
    p_serve.add_argument("--out", default="-",
                         help="JSONL response file, or - for stdout")
    p_serve.set_defaults(func=_cmd_serve)

    p_eval = sub.add_parser("evaluate", help="evaluate a saved placement")
    p_eval.add_argument("placement", help="path to a placement JSON file")
    p_eval.set_defaults(func=_cmd_evaluate)

    p_gap = sub.add_parser("gap", help="regenerate the Figure 1 gap series")
    p_gap.add_argument("--k", type=int, default=5, help="largest broom parameter")
    p_gap.set_defaults(func=_cmd_gap)

    p_compare = sub.add_parser(
        "compare", help="run all placement algorithms on one instance"
    )
    p_compare.add_argument("system", help="system spec, e.g. majority:5")
    p_compare.add_argument("network", help="network spec, e.g. geometric:10:0.5")
    p_compare.add_argument("--seed", type=int, default=0)
    p_compare.add_argument("--capacity", type=float, default=None,
                           help="uniform node capacity (default: auto-feasible)")
    p_compare.add_argument("--alpha", type=float, default=2.0)
    p_compare.set_defaults(func=_cmd_compare)

    p_bench = sub.add_parser(
        "bench",
        help="run the deterministic benchmark micro-suite",
        description="Times the vectorized evaluator kernels against their "
        "scalar references, the batched metric builder, and the shared-LP "
        "solver path; writes a schema-versioned JSON report "
        "(see docs/performance.md).",
    )
    p_bench.add_argument(
        "--quick", action="store_true",
        help="single repeat per case (CI mode); values are identical either way",
    )
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--out", default="BENCH_3.json",
                         help="report path (default: BENCH_3.json)")
    p_bench.add_argument("--trace-out", default=None, dest="trace_out",
                         help="also record the run's span tree as JSONL here")
    p_bench.add_argument(
        "--compare", nargs="+", default=None, metavar="REPORT",
        help="compare timing trajectories: one path runs the suite fresh "
        "and compares against it; two paths compare OLD NEW without "
        "running; exits 1 on regressions beyond the noise band",
    )
    p_bench.add_argument(
        "--noise-band", type=float, default=0.25, dest="noise_band",
        help="tolerated relative timing noise for --compare (default: 0.25)",
    )
    p_bench.add_argument(
        "--markdown", action="store_true",
        help="render the --compare result as a markdown speedup table",
    )
    p_bench.add_argument(
        "--large", action="store_true",
        help="also run the qpp_lazy_large case: a full QPP solve on a "
        "large geometric graph via the lazy-metric path, asserting that "
        "no dense n x n matrix is ever built",
    )
    p_bench.add_argument(
        "--large-nodes", type=int, default=10_000, dest="large_nodes",
        help="node count for the --large case (default: 10000)",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_profile = sub.add_parser(
        "profile",
        help="run any repro command under the tracer and print the span tree",
        description="Wraps another repro command (e.g. `repro profile bench "
        "--quick`) with a trace collector and a telemetry scope, then prints "
        "the span tree and a metrics table (or the schema-versioned JSON "
        "document with --json). See docs/observability.md.",
    )
    p_profile.add_argument(
        "--json", action="store_true",
        help="print the telemetry document as JSON instead of text",
    )
    p_profile.add_argument(
        "--trace-out", default=None, dest="trace_out",
        help="write the span tree as JSONL here",
    )
    p_profile.add_argument(
        "--report-out", default=None, dest="report_out",
        help="write the telemetry document as JSON here",
    )
    p_profile.add_argument(
        "wrapped", nargs=argparse.REMAINDER,
        help="the repro command to profile, with its own flags",
    )
    p_profile.set_defaults(func=_cmd_profile)

    p_lint = sub.add_parser(
        "lint",
        help="run the invariant linter (R001-R604) over source paths",
        description="AST-based invariant linter; exit 0 clean, 1 findings. "
        "See docs/static_analysis.md for the rule catalogue.",
    )
    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=_cmd_lint)

    p_cost = sub.add_parser(
        "cost",
        help="render the declared/inferred asymptotic-cost table (R500's view)",
        description="Symbolic cost bounds per solver entry point: @cost "
        "declarations vs static inference; --check exits 1 on gaps. "
        "See docs/performance.md.",
    )
    add_cost_arguments(p_cost)
    p_cost.set_defaults(func=_cmd_cost)

    p_errors = sub.add_parser(
        "errors",
        help="render the declared/inferred exception-escape table (R600's view)",
        description="Escape sets per solver entry point: @raises "
        "declarations vs interprocedural inference; --check exits 1 on "
        "gaps. The same analysis emits the error contract that "
        "repro.resilience.retrying gates on. See docs/static_analysis.md.",
    )
    add_errors_arguments(p_errors)
    p_errors.set_defaults(func=_cmd_errors)

    p_deps = sub.add_parser(
        "deps",
        help="show the package's module import graph (text, --dot, --json)",
        description="Module import graph with layer assignments; the same "
        "graph the whole-program linter checks (R100/R101).",
    )
    add_deps_arguments(p_deps)
    p_deps.set_defaults(func=_cmd_deps)

    p_trace = sub.add_parser(
        "trace",
        help="render the paper-theorem traceability matrix (R204's view)",
        description="Theorem rows from the design document vs '# paper:' "
        "anchors in implementation and tests; --check exits 1 on gaps.",
    )
    add_trace_arguments(p_trace)
    p_trace.set_defaults(func=_cmd_trace)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
