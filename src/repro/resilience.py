"""Contract-gated retries, deadlines and seeded fault injection.

:func:`retrying` is the library's only sanctioned way to retry a solver
call, and it refuses to guess which failures are retryable: the *error
contract* — the JSON document emitted by ``repro lint --errors
--error-contract out.json`` (see :mod:`repro.lint.excflow`) — records,
for every solver entry point and every ``@raises``-declared function,
the interprocedurally inferred escape set and which of those exceptions
the author declared *transient*.  Only contract-declared-transient
exceptions are retried; a declared non-transient failure propagates
immediately (an ``InfeasibleError`` does not become feasible by asking
again), and an exception the contract never mentions raises
:class:`~repro.exceptions.ErrorContractError` — the escape analysis and
the declaration disagree, which is a defect, not a retry candidate.

This module deliberately consumes the contract as a plain JSON document
and never imports :mod:`repro.lint` — the lint tier sits at the top of
the layer order and this runtime near the bottom, so the certificate
file is the one-way bridge between them (the same pattern as
:mod:`repro.parallel`).

Typical use::

    from repro.resilience import deadline, load_certificate, retrying

    contract = load_certificate("error-contract.json")
    solve = retrying(solve_qpp, certificate=contract, attempts=3)
    result = solve(network, system, strategy)

:func:`deadline` adds a cooperative wall-clock budget: it is checked
between attempts (and after completion), never by interrupting a solver
mid-flight, so a partially-built LP model is never abandoned in an
inconsistent state.

Testing hooks: :func:`fault_point` is a no-op marker that solvers place
on their hot loops; :func:`inject_faults` / :func:`seeded_faults` arm
those markers deterministically so tests can force a transient
``SolverError`` mid-sweep and assert byte-identical recovery.
"""

from __future__ import annotations

import functools
import json
import os
import random
import time
from collections.abc import Callable, Iterator, Mapping, Sequence
from contextlib import contextmanager
from pathlib import Path
from typing import Any, TypeVar

from .exceptions import (
    DeadlineExceededError,
    ErrorContractError,
    SolverError,
    ValidationError,
)
from .obs.metrics import counter
from .parallel import resolve_qualified_name

__all__ = [
    "CONTRACT_ENV_VAR",
    "Deadline",
    "contract_entry",
    "deadline",
    "fault_point",
    "inject_faults",
    "load_certificate",
    "maybe_retrying",
    "retrying",
    "seeded_faults",
]

_R = TypeVar("_R")

#: Environment variable consulted when no certificate is passed explicitly.
CONTRACT_ENV_VAR = "REPRO_ERROR_CONTRACT"

#: The ``kind`` discriminator of an error-contract document.  Kept in
#: sync with ``repro.lint.excflow.CONTRACT_KIND`` (the lint tier owns
#: the schema; this module only recognises it).
_CONTRACT_KIND = "repro-error-contract"

#: Exception names never gated by the contract: programming errors
#: propagate verbatim no matter what the document says.  Mirrors the
#: ``policy.programming_errors`` default of the certificate schema.
_DEFAULT_PROGRAMMING_ERRORS = frozenset(
    {"TypeError", "NotImplementedError", "AssertionError", "KeyboardInterrupt"}
)


def load_certificate(
    source: Mapping[str, Any] | str | Path | None = None,
) -> dict[str, Any] | None:
    """Load an error-contract certificate from *source*.

    *source* may be an already-parsed contract mapping, a path to the
    JSON file written by ``repro lint --errors --error-contract``, or
    ``None`` — in which case the :data:`CONTRACT_ENV_VAR` environment
    variable is consulted and ``None`` is returned when it is unset.  A
    present but malformed contract raises
    :class:`~repro.exceptions.ValidationError`: a bad contract must
    never be mistaken for "no contract" and silently disable the gate.
    """
    if source is None:
        env = os.environ.get(CONTRACT_ENV_VAR)
        if not env:
            return None
        source = env
    if isinstance(source, Mapping):
        document: Any = dict(source)
    else:
        path = Path(source)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ValidationError(
                f"cannot read error contract {str(path)!r}: {exc}"
            ) from exc
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"error contract {str(path)!r} is not valid JSON: {exc}"
            ) from exc
    if not isinstance(document, dict):
        raise ValidationError(
            "error contract must be a JSON object, got "
            f"{type(document).__name__}"
        )
    if document.get("kind") != _CONTRACT_KIND:
        raise ValidationError(
            f"error contract 'kind' must be {_CONTRACT_KIND!r}, got "
            f"{document.get('kind')!r}"
        )
    functions = document.get("functions")
    if not isinstance(functions, dict):
        raise ValidationError(
            "error contract must carry a 'functions' object mapping "
            "qualified names to escape-set entries"
        )
    return document


def contract_entry(
    certificate: Mapping[str, Any], fn: Callable[..., Any]
) -> dict[str, Any] | None:
    """The contract entry covering *fn*, or ``None`` if uncovered."""
    qualified, _ = resolve_qualified_name(fn)
    if qualified is None:
        return None
    entry = certificate.get("functions", {}).get(qualified)
    return entry if isinstance(entry, dict) else None


def _programming_errors(document: Mapping[str, Any] | None) -> frozenset[str]:
    policy = (document or {}).get("policy")
    if isinstance(policy, Mapping):
        names = policy.get("programming_errors")
        if isinstance(names, (list, tuple)) and all(
            isinstance(name, str) for name in names
        ):
            return frozenset(names)
    return _DEFAULT_PROGRAMMING_ERRORS


def _exception_names(exc: BaseException) -> frozenset[str]:
    """Every class name in the exception's MRO (so a contract declaring
    ``ReproError`` covers a concrete ``CapacityError`` at runtime)."""
    return frozenset(klass.__name__ for klass in type(exc).__mro__)


class Deadline:
    """A cooperative wall-clock budget.

    The deadline never interrupts work in flight; callers (and
    :func:`retrying`, between attempts) ask :meth:`check`, which raises
    :class:`~repro.exceptions.DeadlineExceededError` once the budget is
    spent.  *clock* is injectable so tests stay deterministic.
    """

    __slots__ = ("seconds", "_clock", "_start")

    def __init__(
        self,
        seconds: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not seconds > 0:
            raise ValidationError(
                f"deadline seconds must be > 0, got {seconds!r}"
            )
        self.seconds = float(seconds)
        self._clock = clock
        self._start = clock()

    def elapsed(self) -> float:
        """Seconds spent since the deadline was created."""
        return self._clock() - self._start

    def remaining(self) -> float:
        """Seconds left in the budget (negative once expired)."""
        return self.seconds - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() < 0

    def check(self, context: str = "") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.expired():
            where = f" during {context}" if context else ""
            raise DeadlineExceededError(
                f"deadline of {self.seconds:g}s exceeded{where} "
                f"(elapsed {self.elapsed():.3f}s)"
            )

    def __repr__(self) -> str:
        return f"Deadline(seconds={self.seconds!r}, elapsed={self.elapsed():.3f})"


def deadline(
    seconds: float, *, clock: Callable[[], float] = time.monotonic
) -> Deadline:
    """Start a cooperative :class:`Deadline` of *seconds* now."""
    return Deadline(seconds, clock=clock)


def retrying(
    fn: Callable[..., _R],
    *,
    certificate: Mapping[str, Any] | str | Path | None = None,
    attempts: int = 3,
    backoff: float = 0.0,
    sleep: Callable[[float], None] = time.sleep,
    deadline: Deadline | None = None,
) -> Callable[..., _R]:
    """Wrap *fn* so contract-declared-transient failures are retried.

    *fn* must resolve to a module-level callable covered by the error
    contract (*certificate* follows :func:`load_certificate` semantics);
    the gate fails closed with
    :class:`~repro.exceptions.ErrorContractError` when no contract or no
    entry is available — retrying an unknown failure mode is how
    half-written outputs get committed.  At most *attempts* calls are
    made; attempt ``i`` (0-based) is preceded by a ``backoff * 2**(i-1)``
    second sleep (pass ``sleep=`` to stub it out in tests) and by a
    *deadline* check when one is given.

    Per call, a raised exception is classified against the entry:

    - transient (its MRO intersects the entry's ``transient`` list):
      retried while attempts remain (``resilience.retry.count``),
      re-raised once they run out (``resilience.giveup.count``);
    - declared (MRO intersects ``raises``): re-raised immediately;
    - a programming error (``policy.programming_errors``): re-raised
      verbatim;
    - anything else: :class:`~repro.exceptions.ErrorContractError`
      chained from the original — the contract and reality disagree.
    """
    if attempts < 1:
        raise ValidationError(f"attempts must be >= 1, got {attempts}")
    if backoff < 0:
        raise ValidationError(f"backoff must be >= 0, got {backoff}")
    document = load_certificate(certificate)
    qualified, reason = resolve_qualified_name(fn)
    if qualified is None:
        raise ErrorContractError(
            f"cannot gate retries on the error contract: {reason}"
        )
    if document is None:
        raise ErrorContractError(
            f"no error contract available for {qualified!r}; generate one "
            "with 'repro lint --errors --error-contract' and pass it "
            f"(or set ${CONTRACT_ENV_VAR})"
        )
    entry = document.get("functions", {}).get(qualified)
    if not isinstance(entry, dict):
        raise ErrorContractError(
            f"{qualified!r} is not covered by the error contract; declare "
            "its escape set with @raises(...) or make it a solver entry "
            "point so the analysis publishes it"
        )
    declared = frozenset(entry.get("raises", ()))
    transient = frozenset(entry.get("transient", ()))
    programming = _programming_errors(document)
    retries = counter("resilience.retry.count")
    giveups = counter("resilience.giveup.count")

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> _R:
        for attempt in range(attempts):
            if deadline is not None:
                deadline.check(f"retrying {qualified}")
            if attempt and backoff:
                sleep(backoff * 2.0 ** (attempt - 1))
            try:
                return fn(*args, **kwargs)
            except Exception as exc:
                names = _exception_names(exc)
                if names & programming:
                    raise
                if names & transient:
                    if attempt + 1 < attempts:
                        retries.inc()
                        continue
                    giveups.inc()
                    raise
                if names & declared:
                    raise
                raise ErrorContractError(
                    f"{qualified!r} raised {type(exc).__name__}, which its "
                    f"error contract (raises={sorted(declared)!r}) does not "
                    "declare; re-run 'repro lint --errors' — the contract "
                    "is stale or the analysis found a gap"
                ) from exc
        raise AssertionError("unreachable: loop returns or raises")

    return wrapper


def maybe_retrying(
    fn: Callable[..., _R],
    *,
    certificate: Mapping[str, Any] | str | Path | None = None,
    attempts: int = 3,
    backoff: float = 0.0,
    sleep: Callable[[float], None] = time.sleep,
    deadline: Deadline | None = None,
) -> Callable[..., _R]:
    """:func:`retrying` when an error contract is available, else *fn*.

    The opt-in variant for callers (the serving engine, notebooks) that
    want contract-gated retries *when configured* but must keep working
    without a certificate: :func:`retrying` itself deliberately fails
    closed.  *certificate* follows :func:`load_certificate` semantics,
    so with the default ``None`` the ``$REPRO_ERROR_CONTRACT``
    environment variable still arms retries.
    """
    document = load_certificate(certificate)
    if document is None:
        return fn
    return retrying(
        fn,
        certificate=document,
        attempts=attempts,
        backoff=backoff,
        sleep=sleep,
        deadline=deadline,
    )


# --------------------------------------------------------------------------
# Seeded fault injection


class _FaultPlan:
    """One armed injection plan (see :func:`inject_faults`)."""

    __slots__ = ("queues", "decide", "hits")

    def __init__(
        self,
        queues: dict[str, list[BaseException]],
        decide: Callable[[str, int], BaseException | None] | None,
    ) -> None:
        self.queues = queues
        self.decide = decide
        #: Per-name hit counts, scoped to this plan's lifetime.
        self.hits: dict[str, int] = {}


#: Active plans, innermost last.  Module state is test-only: production
#: code never arms a plan, making :func:`fault_point` a cheap no-op.
_ACTIVE_PLANS: list[_FaultPlan] = []


def fault_point(name: str) -> None:
    """A named injection marker on a solver hot loop.

    A no-op unless a test armed :func:`inject_faults` /
    :func:`seeded_faults`; then the innermost plan covering *name* pops
    and raises its scheduled exception.  Each plan counts the hits it
    observes per name and the counts die with the plan, so schedules
    are deterministic.
    """
    if not _ACTIVE_PLANS:
        return
    for plan in reversed(_ACTIVE_PLANS):
        hit = plan.hits.get(name, 0)
        plan.hits[name] = hit + 1
        queue = plan.queues.get(name)
        if queue:
            counter("resilience.fault.injected").inc()
            raise queue.pop(0)
        if plan.decide is not None:
            fault = plan.decide(name, hit)
            if fault is not None:
                counter("resilience.fault.injected").inc()
                raise fault


@contextmanager
def inject_faults(
    schedule: Mapping[str, Sequence[BaseException]],
) -> Iterator[None]:
    """Arm :func:`fault_point` with an explicit FIFO *schedule*.

    ``inject_faults({"qpp.candidate": [SolverError("boom")]})`` makes
    the first ``fault_point("qpp.candidate")`` hit raise that instance;
    later hits pass through once the queue drains.  Plans nest; the
    innermost wins.
    """
    for name, faults in schedule.items():
        for fault in faults:
            if not isinstance(fault, BaseException):
                raise ValidationError(
                    f"fault for point {name!r} must be an exception "
                    f"instance, got {fault!r}"
                )
    plan = _FaultPlan(
        {name: list(faults) for name, faults in schedule.items()}, None
    )
    _ACTIVE_PLANS.append(plan)
    try:
        yield
    finally:
        _ACTIVE_PLANS.remove(plan)


@contextmanager
def seeded_faults(
    seed: int,
    rate: float,
    *,
    points: Sequence[str] | None = None,
    factory: Callable[[str, int], BaseException] | None = None,
) -> Iterator[None]:
    """Arm probabilistic faults from a seeded RNG (deterministic replay).

    Each :func:`fault_point` hit on one of *points* (all points when
    ``None``) draws from ``random.Random(seed)`` and raises
    ``factory(name, hit)`` with probability *rate*.  The default factory
    raises :class:`~repro.exceptions.SolverError`, the library's one
    transient failure class, so the schedule composes directly with
    :func:`retrying`.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValidationError(f"fault rate must be in [0, 1], got {rate!r}")
    rng = random.Random(seed)
    allowed = None if points is None else frozenset(points)

    def decide(name: str, hit: int) -> BaseException | None:
        if allowed is not None and name not in allowed:
            return None
        if rng.random() >= rate:
            return None
        if factory is not None:
            return factory(name, hit)
        return SolverError(
            f"injected fault at {name!r} (seed={seed}, hit={hit})"
        )

    plan = _FaultPlan({}, decide)
    _ACTIVE_PLANS.append(plan)
    try:
        yield
    finally:
        _ACTIVE_PLANS.remove(plan)
