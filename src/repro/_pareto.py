"""Pareto-front utilities for delay/load trade-off reporting.

Several knobs in this library trade delay against load (the Theorem 3.7
alpha, the strategy re-weighting budget, placement choice itself).
These helpers identify the non-dominated points so benches and examples
can report frontiers instead of raw sweeps.

This module lives in the foundation layer (no dependencies beyond the
standard library) so that both the solver layers (``repro.core``) and
the reporting layer (``repro.analysis``) can use it without violating
the declared layer order; ``repro.analysis.pareto`` re-exports it for
backward compatibility.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

__all__ = ["ParetoPoint", "pareto_front"]


@dataclass(frozen=True)
class ParetoPoint:
    """A candidate with two minimized coordinates and an arbitrary tag."""

    delay: float
    load: float
    tag: Any = None

    def dominates(self, other: "ParetoPoint", tolerance: float = 1e-12) -> bool:
        """Weakly better on both axes, strictly on at least one."""
        no_worse = (
            self.delay <= other.delay + tolerance
            and self.load <= other.load + tolerance
        )
        strictly_better = (
            self.delay < other.delay - tolerance
            or self.load < other.load - tolerance
        )
        return no_worse and strictly_better


def pareto_front(points: Sequence[ParetoPoint]) -> list[ParetoPoint]:
    """The non-dominated subset, sorted by increasing delay.

    Duplicate coordinates are collapsed to the first occurrence.  The
    returned front is antichain-clean: no member dominates another.

    Examples
    --------
    >>> front = pareto_front([
    ...     ParetoPoint(1.0, 3.0, "a"),
    ...     ParetoPoint(2.0, 2.5, "dominated-by-none"),
    ...     ParetoPoint(2.5, 2.6, "dominated"),
    ... ])
    >>> [p.tag for p in front]
    ['a', 'dominated-by-none']
    """
    front: list[ParetoPoint] = []
    seen: set[tuple[float, float]] = set()
    for candidate in points:
        key = (candidate.delay, candidate.load)
        if key in seen:
            continue
        if any(other.dominates(candidate) for other in points):
            continue
        seen.add(key)
        front.append(candidate)
    front.sort(key=lambda p: (p.delay, p.load))
    return front
