# Developer entry points. Everything here is a thin wrapper around the
# `repro` CLI and pytest so CI and local runs stay identical.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-scale lint lint-baseline effects cost errors trace bench bench-compare bench-large profile serve-smoke

test:
	$(PYTHON) -m pytest -x -q

# The scale tier: tests marked @pytest.mark.scale (thousand-node lazy
# metric solves, minutes not seconds). Excluded from the default run by
# the addopts marker filter; CI runs this as a separate non-blocking job.
test-scale:
	$(PYTHON) -m pytest -q -m scale

# The full static tier: per-file rules, whole-program R100-series, the
# R200-series dataflow/contract rules, the R400-series
# effect/concurrency rules, the R500-series asymptotic cost rules, and
# the R600-series exception-flow/resource-safety rules, ratcheted
# against the committed baseline. CI runs exactly this.
lint:
	$(PYTHON) -m repro lint src --whole-program --dataflow --effects --cost --errors --baseline lint-baseline.json

# Run the effect tier and (re)generate the parallel-safety certificate
# consumed by repro.parallel.parallel_map (docs/static_analysis.md).
# CI regenerates and uploads this on every push.
effects:
	$(PYTHON) -m repro lint src --effects --certificate parallel-safety.json

# The declared-vs-inferred asymptotic cost table (R500 tier,
# docs/static_analysis.md). --check exits 1 on any mismatch or
# undeclared solver entry point; CI uploads the --json document.
cost:
	$(PYTHON) -m repro cost src --check

# Run the error tier and (re)generate the error-contract certificate
# consumed by repro.resilience.retrying (docs/static_analysis.md).
# --check exits 1 unless every solver entry point declares @raises
# covering its inferred escape set; CI uploads the JSON document.
errors:
	$(PYTHON) -m repro errors src --check
	$(PYTHON) -m repro lint src --errors --error-contract error-contract.json

# Refresh the ratchet. Run this ONLY when a finding is a deliberate,
# reviewed exception: the regenerated lint-baseline.json is committed
# alongside the change, so the diff shows exactly which findings were
# grandfathered. New findings not in the baseline always fail `make lint`.
lint-baseline:
	$(PYTHON) -m repro lint src --whole-program --dataflow --effects --cost --errors --format json > lint-baseline.json

# Paper-theorem traceability matrix (what R204 checks).
trace:
	$(PYTHON) -m repro trace src --check

bench:
	$(PYTHON) -m repro bench --quick --out BENCH_3.json

# End-to-end smoke of the serving layer (docs/serving.md): a short
# scripted JSONL session through `repro serve` — queries, a demand
# update, a forced re-solve — that must exit 0 (no error responses).
serve-smoke:
	printf '%s\n' \
	  '{"kind": "repro-serve-request", "schema_version": 1, "id": 1, "op": "query", "client": 0}' \
	  '{"kind": "repro-serve-request", "schema_version": 1, "id": 2, "op": "update", "client": 1, "rate": 25.0}' \
	  '{"kind": "repro-serve-request", "schema_version": 1, "id": 3, "op": "query", "client": 1}' \
	  '{"kind": "repro-serve-request", "schema_version": 1, "id": 4, "op": "resolve"}' \
	  '{"kind": "repro-serve-request", "schema_version": 1, "id": 5, "op": "stats"}' \
	  | $(PYTHON) -m repro serve majority:3 cycle:12 --capacity 2.0 --max-batch 2

# The bench trajectory ratchet (docs/performance.md): run the suite
# fresh and compare its timing trajectory against the committed
# reference report. The generous noise band tolerates host differences;
# only order-of-magnitude breaks (a lost vectorization, an oracle on a
# hot path) trip it.
bench-compare:
	$(PYTHON) -m repro bench --quick --out BENCH_COMPARE.json --compare BENCH_3.json --noise-band 4.0

# The large-scale series: the full micro-suite plus the qpp_lazy_large
# case (a 10k-node QPP solve through the lazy metric, asserting no dense
# n x n build). Compared against the committed report the same way —
# the extra case shows up as a "new series" note, never a regression.
bench-large:
	$(PYTHON) -m repro bench --quick --large --out BENCH_LARGE.json --compare BENCH_3.json --noise-band 4.0

# Trace + metrics view of the bench micro-suite (docs/observability.md).
# Wrap any other subcommand the same way: `python -m repro profile <cmd>`.
profile:
	$(PYTHON) -m repro profile bench --quick --out BENCH_3.json
