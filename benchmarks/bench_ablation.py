"""E12 — ablations of the design choices DESIGN.md calls out.

Three ablations of the paper's pipeline:

* **Filtering** (§3.3): round the raw LP solution without the
  alpha-filtering step.  The Theorem 3.7 delay guarantee
  ``alpha/(alpha-1) * Z*`` is only proven *with* filtering; the table
  reports how often the unfiltered variant escapes that bound (and that
  the filtered one never does).
* **Candidate sources** (Theorem 3.3): sweep all sources vs only the
  network median.  Full sweep is what the theorem needs; the table
  measures the delay cost of the cheap heuristic.
* **Local search vs LP**: random start + local search, LP + rounding,
  and LP + rounding + local-search polish, on the QPP objective.  The
  polish can only help; pure local search carries no guarantee.
"""

import math

import numpy as np
import pytest

from repro.analysis import ResultTable
from repro.core import (
    average_max_delay,
    improve_max_delay,
    random_placement,
    solve_qpp,
    solve_ssqpp,
)
from repro.core.placement import Placement, expected_max_delay
from repro.core.ssqpp import build_ssqpp_lp
from repro.experiments import small_suite, standard_suite
from repro.gap import FractionalAssignment, GAPInstance, round_fractional_assignment

ALPHA = 2.0


def _round_without_filtering(system, strategy, network, source):
    """The §3.3 pipeline minus the filtering step (ablation arm)."""
    model, x_element, _, ordered_nodes, distances = build_ssqpp_lp(
        system, strategy, network, source
    )
    solution = model.solve()
    universe = list(system.universe)
    n = len(ordered_nodes)
    raw = np.zeros((n, len(universe)))
    for j, u in enumerate(universe):
        for t in range(n):
            variable = x_element.get((t, u))
            if variable is not None:
                raw[t, j] = max(solution.value(variable), 0.0)
    raw = raw / raw.sum(axis=0, keepdims=True)

    loads = strategy.load_array()
    costs = np.full((n, len(universe)), math.inf)
    gap_loads = np.full((n, len(universe)), math.inf)
    for j in range(len(universe)):
        for t in range(n):
            if raw[t, j] > 1e-12:
                costs[t, j] = distances[t]
                gap_loads[t, j] = loads[j]
    instance = GAPInstance(
        jobs=tuple(universe),
        machines=tuple(ordered_nodes),
        costs=costs,
        loads=gap_loads,
        capacities=np.array([network.capacity(v) for v in ordered_nodes]),
    )
    fractional = FractionalAssignment(
        instance=instance, fractions=raw, cost=float(solution.objective)
    )
    rounded = round_fractional_assignment(fractional)
    placement = Placement(system, network, rounded.assignment)
    return placement, float(solution.objective)


def _filtering_table():
    table = ResultTable(
        "E12a ablation - filtering step of section 3.3 (alpha=2)",
        ["instance", "lp_value", "filtered_delay", "unfiltered_delay",
         "bound", "filtered_within", "unfiltered_within"],
    )
    for instance in standard_suite(1201)[:6]:
        source = instance.network.nodes[0]
        filtered = solve_ssqpp(
            instance.system, instance.strategy, instance.network, source, alpha=ALPHA
        )
        unfiltered_placement, lp_value = _round_without_filtering(
            instance.system, instance.strategy, instance.network, source
        )
        unfiltered_delay = expected_max_delay(
            unfiltered_placement, instance.strategy, source
        )
        bound = (ALPHA / (ALPHA - 1.0)) * lp_value
        table.add_row(
            instance=instance.name,
            lp_value=lp_value,
            filtered_delay=filtered.delay,
            unfiltered_delay=unfiltered_delay,
            bound=bound,
            filtered_within=filtered.delay <= bound + 1e-6,
            unfiltered_within=unfiltered_delay <= bound + 1e-6,
        )
    return table


def _source_sweep_table():
    table = ResultTable(
        "E12b ablation - relay-candidate sweep (all sources vs median only)",
        ["instance", "full_sweep_delay", "median_only_delay", "penalty_pct"],
    )
    for instance in small_suite(1202)[:5]:
        full = solve_qpp(
            instance.system, instance.strategy, instance.network, alpha=ALPHA
        )
        median = instance.network.metric().median()
        pruned = solve_qpp(
            instance.system,
            instance.strategy,
            instance.network,
            alpha=ALPHA,
            candidate_sources=[median],
        )
        penalty = (
            100.0 * (pruned.average_delay - full.average_delay) / full.average_delay
            if full.average_delay > 0
            else 0.0
        )
        table.add_row(
            instance=instance.name,
            full_sweep_delay=full.average_delay,
            median_only_delay=pruned.average_delay,
            penalty_pct=penalty,
        )
    return table


def _local_search_table():
    rng = np.random.default_rng(1203)
    table = ResultTable(
        "E12c ablation - local search vs LP pipeline (QPP objective)",
        ["instance", "random_start", "local_search", "lp_round",
         "lp_round_polished", "polish_helps_or_ties"],
    )
    for instance in small_suite(1203)[:5]:
        start = random_placement(
            instance.system, instance.strategy, instance.network, rng=rng
        )
        start_delay = average_max_delay(start, instance.strategy)
        searched = improve_max_delay(start, instance.strategy)
        lp = solve_qpp(
            instance.system, instance.strategy, instance.network, alpha=ALPHA
        )
        # Polish in the same (alpha+1)-relaxed capacity regime the LP
        # solution is entitled to, so moves are not vacuously blocked.
        relaxed = instance.network.with_capacities(
            {v: (ALPHA + 1) * instance.network.capacity(v)
             for v in instance.network.nodes}
        )
        relaxed_start = Placement(
            instance.system, relaxed, lp.placement.as_dict()
        )
        polished = improve_max_delay(relaxed_start, instance.strategy)
        table.add_row(
            instance=instance.name,
            random_start=start_delay,
            local_search=searched.objective,
            lp_round=lp.average_delay,
            lp_round_polished=polished.objective,
            polish_helps_or_ties=polished.objective <= lp.average_delay + 1e-9,
        )
    return table


def test_ablations(benchmark, report):
    filtering = _filtering_table()
    sources = _source_sweep_table()
    search = _local_search_table()
    report(filtering)
    report(sources)
    report(search)
    # The paper's pipeline must stay within its bound on every instance.
    assert filtering.all_rows_pass("filtered_within")
    assert search.all_rows_pass("polish_helps_or_ties")

    instance = small_suite(1203)[0]
    rng = np.random.default_rng(4)
    start = random_placement(
        instance.system, instance.strategy, instance.network, rng=rng
    )
    benchmark.pedantic(
        lambda: improve_max_delay(start, instance.strategy), rounds=3, iterations=1
    )
