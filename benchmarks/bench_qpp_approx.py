"""E1 — Theorem 1.2: the QPP algorithm's delay is within
``5 alpha/(alpha-1)`` of the optimum and its load within ``(alpha+1) cap``.

Regenerates, for every exhaustively solvable instance in the small suite:
the algorithm's average max-delay, the true optimum, the realized ratio,
the paper bound, and the realized/allowed load factors.  The *shape* the
paper promises — ratio well under the bound, load factor under alpha+1 —
must hold on every row.
"""

import pytest

from repro.analysis import ResultTable
from repro.core import (
    capacity_violation_factor,
    solve_qpp,
    solve_qpp_exact,
)
from repro.experiments import small_suite

ALPHA = 2.0


def _run_table():
    table = ResultTable(
        "E1 Theorem 1.2 - QPP approximation (alpha=2, bound 10x)",
        ["instance", "alg_delay", "opt_delay", "ratio", "bound", "load_factor",
         "load_bound", "within"],
    )
    for instance in small_suite(101)[:8]:
        result = solve_qpp(instance.system, instance.strategy, instance.network, alpha=ALPHA)
        exact = solve_qpp_exact(instance.system, instance.strategy, instance.network)
        ratio = result.average_delay / exact.objective if exact.objective > 0 else 1.0
        load_factor = capacity_violation_factor(result.placement, instance.strategy)
        within = (
            ratio <= result.approximation_factor + 1e-6
            and load_factor <= result.load_factor_bound + 1e-6
        )
        table.add_row(
            instance=instance.name,
            alg_delay=result.average_delay,
            opt_delay=exact.objective,
            ratio=ratio,
            bound=result.approximation_factor,
            load_factor=load_factor,
            load_bound=result.load_factor_bound,
            within=within,
        )
    return table


def test_qpp_theorem_1_2(benchmark, report):
    table = _run_table()
    report(table)
    assert table.all_rows_pass("within")

    instance = small_suite(101)[0]
    benchmark.pedantic(
        lambda: solve_qpp(
            instance.system, instance.strategy, instance.network, alpha=ALPHA
        ),
        rounds=3,
        iterations=1,
    )
