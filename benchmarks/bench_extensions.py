"""E10 — §6 extensions: non-uniform access rates and per-client strategies.

Regenerates the two §6 claims operationally:

* **Rates**: with skewed client rates, the rate-aware QPP solver produces
  a placement whose rate-weighted delay beats (or ties) the rate-oblivious
  one, and Lemma 3.1's bound continues to hold under the weighted average.
* **Per-client strategies**: replacing heterogeneous client strategies by
  their rate-weighted average preserves the average relay delay exactly
  (the identity behind the §6 reduction).
"""

import numpy as np
import pytest

from repro.analysis import ResultTable
from repro.core import (
    average_max_delay,
    average_strategy,
    random_placement,
    relay_analysis,
    solve_qpp,
)
from repro.core.placement import _client_weights, _per_client_expected_max_delay
from repro.network import random_geometric_network, uniform_capacities
from repro.quorums import AccessStrategy, majority


def _network(seed):
    rng = np.random.default_rng(seed)
    return uniform_capacities(random_geometric_network(9, 0.5, rng=rng), 0.9)


def _rates_table():
    table = ResultTable(
        "E10a section 6 - rate-aware placement beats rate-oblivious",
        ["seed", "skew", "aware_delay", "oblivious_delay", "aware_wins_or_ties",
         "relay_factor", "relay_within_5"],
    )
    system = majority(5)
    strategy = AccessStrategy.uniform(system)
    for seed in (1, 2, 3):
        network = _network(seed)
        rng = np.random.default_rng(seed + 100)
        hot = network.nodes[int(rng.integers(network.size))]
        rates = {v: 0.05 for v in network.nodes}
        rates[hot] = 10.0
        aware = solve_qpp(system, strategy, network, rates=rates)
        oblivious = solve_qpp(system, strategy, network)
        aware_delay = average_max_delay(aware.placement, strategy, rates=rates)
        oblivious_delay = average_max_delay(oblivious.placement, strategy, rates=rates)
        relay = relay_analysis(aware.placement, strategy, rates=rates)
        table.add_row(
            seed=seed,
            skew="10.0 vs 0.05",
            aware_delay=aware_delay,
            oblivious_delay=oblivious_delay,
            aware_wins_or_ties=aware_delay <= oblivious_delay + 1e-9,
            relay_factor=relay.factor,
            relay_within_5=relay.factor <= 5.0 + 1e-9,
        )
    return table


def _mixture_table():
    table = ResultTable(
        "E10b section 6 - averaged strategy preserves relay delay",
        ["seed", "per_client_relay_delay", "averaged_relay_delay", "identical"],
    )
    system = majority(5)
    for seed in (4, 5, 6):
        network = _network(seed)
        rng = np.random.default_rng(seed + 200)
        per_client = {
            v: AccessStrategy.from_weights(
                system, rng.uniform(0.1, 1.0, len(system))
            )
            for v in network.nodes
        }
        averaged = average_strategy(per_client, network)
        placement = random_placement(system, averaged, network, rng=rng)
        metric = network.metric()
        v0 = network.nodes[0]
        weights = _client_weights(network, None)
        to_v0 = float(weights @ metric.distances_from(v0))
        # Relay delay with per-client strategies: each client pays
        # d(v, v0) + Delta^{p_v}_f(v0); averaging over clients equals
        # to_v0 + Delta^{avg p}_f(v0) by linearity of Delta in p.
        per_client_value = to_v0 + float(
            np.mean(
                [
                    _per_client_expected_max_delay(placement, per_client[v])[
                        network.node_index(v0)
                    ]
                    for v in network.nodes
                ]
            )
        )
        averaged_value = to_v0 + float(
            _per_client_expected_max_delay(placement, averaged)[
                network.node_index(v0)
            ]
        )
        table.add_row(
            seed=seed,
            per_client_relay_delay=per_client_value,
            averaged_relay_delay=averaged_value,
            identical=abs(per_client_value - averaged_value) < 1e-9,
        )
    return table


def test_extensions_section_6(benchmark, report):
    rates = _rates_table()
    mixtures = _mixture_table()
    report(rates)
    report(mixtures)
    assert rates.all_rows_pass("aware_wins_or_ties")
    assert rates.all_rows_pass("relay_within_5")
    assert mixtures.all_rows_pass("identical")

    system = majority(5)
    strategy = AccessStrategy.uniform(system)
    network = _network(9)
    benchmark.pedantic(
        lambda: solve_qpp(
            system, strategy, network, rates={network.nodes[0]: 2.0, network.nodes[1]: 1.0}
        ),
        rounds=2,
        iterations=1,
    )
