"""E13 — extension: post-placement strategy re-weighting.

For a fixed placement, the access strategy itself is a knob: an LP
minimizes expected delay subject to a per-element load budget L
(:mod:`repro.core.strategy_opt`).  The bench regenerates the delay/load
Pareto frontier — at L = system load the strategy can only re-balance
among load-optimal strategies; at L = 1 it collapses onto the closest
quorum, the degenerate hot-spot the paper's related-work section warns
about.  The frontier must be monotone (looser budget, weakly lower
delay) on every instance.
"""

import numpy as np
import pytest

from repro.analysis import ResultTable
from repro.core import (
    delay_optimal_strategy,
    random_placement,
    strategy_delay_frontier,
)
from repro.core.placement import expected_max_delay
from repro.network import random_geometric_network, uniform_capacities
from repro.quorums import AccessStrategy, grid, majority, system_load


def _instances():
    rng = np.random.default_rng(1301)
    network = uniform_capacities(random_geometric_network(10, 0.5, rng=rng), 2.0)
    result = []
    for system in (majority(5), grid(3)):
        strategy = AccessStrategy.uniform(system)
        placement = random_placement(system, strategy, network, rng=rng)
        result.append((system, strategy, network, placement))
    return result


def _run_table():
    table = ResultTable(
        "E13 strategy re-weighting frontier (fixed placement)",
        ["system", "budget", "delay", "uniform_delay", "max_load", "monotone"],
    )
    for system, uniform, network, placement in _instances():
        source = network.nodes[0]
        floor = system_load(system)
        budgets = [floor, (2 * floor + 1) / 3, (floor + 2) / 3, 1.0]
        frontier = strategy_delay_frontier(placement, budgets, source=source)
        uniform_delay = expected_max_delay(placement, uniform, source)
        previous = float("inf")
        for point in frontier:
            monotone = point.delay <= previous + 1e-9
            previous = point.delay
            table.add_row(
                system=system.name,
                budget=point.load_budget,
                delay=point.delay,
                uniform_delay=uniform_delay,
                max_load=point.max_load,
                monotone=monotone,
            )
    return table


def test_strategy_frontier(benchmark, report):
    table = _run_table()
    report(table)
    assert table.all_rows_pass("monotone")

    system, uniform, network, placement = _instances()[0]
    benchmark(
        lambda: delay_optimal_strategy(
            placement, load_budget=1.0, source=network.nodes[0]
        )
    )
