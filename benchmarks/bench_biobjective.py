"""E17 — extension: the max-delay / total-delay Pareto frontier.

Both paper objectives are linear in the placement LP's variables, so a
convex scalarization runs through the §3.3 pipeline unchanged.  The
bench regenerates the frontier on a fixed instance: as the weight moves
from total-delay to max-delay, ``Delta`` falls while ``Gamma`` rises,
and the ``(alpha+1)·cap`` load guarantee holds at every point.
"""

import numpy as np
import pytest

from repro.analysis import ResultTable
from repro.core import max_vs_total_frontier, solve_scalarized_placement
from repro.network import random_geometric_network, uniform_capacities
from repro.quorums import AccessStrategy, grid, majority


def _instance():
    rng = np.random.default_rng(1701)
    network = uniform_capacities(random_geometric_network(10, 0.5, rng=rng), 0.9)
    system = majority(5)
    return system, AccessStrategy.uniform(system), network


def _run_table():
    system, strategy, network = _instance()
    table = ResultTable(
        "E17 bi-objective frontier (max-delay vs total-delay, alpha=2)",
        ["weight", "max_delay", "total_delay", "load_factor", "load_ok"],
    )
    front = max_vs_total_frontier(
        system, strategy, network, 0,
        weights=[0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
    )
    for point in front:
        table.add_row(
            weight=point.weight,
            max_delay=point.max_delay,
            total_delay=point.total_delay,
            load_factor=point.max_load_factor,
            load_ok=point.max_load_factor <= 3.0 + 1e-6,
        )
    return table, front


def test_biobjective_frontier(benchmark, report):
    table, front = _run_table()
    report(table)
    assert table.all_rows_pass("load_ok")
    assert len(front) >= 2, "the two objectives should genuinely trade off"
    # Frontier shape: sorted by max-delay, total-delay decreasing.
    max_delays = [p.max_delay for p in front]
    total_delays = [p.total_delay for p in front]
    assert max_delays == sorted(max_delays)
    assert total_delays == sorted(total_delays, reverse=True)

    system, strategy, network = _instance()
    benchmark.pedantic(
        lambda: solve_scalarized_placement(
            system, strategy, network, 0, weight=0.5
        ),
        rounds=3,
        iterations=1,
    )
