"""E7 — Theorems 1.4 / 5.1: total-delay placement via GAP.

Regenerates, on the exhaustively solvable suite: the algorithm's average
total delay vs the true capacity-respecting optimum (the algorithm must
be <= OPT, the paper's headline), and the realized load factor vs the 2x
bound.
"""

import pytest

from repro.analysis import ResultTable
from repro.core import solve_total_delay, solve_total_delay_exact
from repro.experiments import small_suite


def _run_table():
    table = ResultTable(
        "E7 Theorem 5.1 - total delay <= OPT with load <= 2 cap",
        ["instance", "alg_delay", "opt_delay", "alg_le_opt", "load_factor",
         "load_bound", "within"],
    )
    for instance in small_suite(707)[:8]:
        result = solve_total_delay(instance.system, instance.strategy, instance.network)
        exact = solve_total_delay_exact(
            instance.system, instance.strategy, instance.network
        )
        table.add_row(
            instance=instance.name,
            alg_delay=result.delay,
            opt_delay=exact.objective,
            alg_le_opt=result.delay <= exact.objective + 1e-6,
            load_factor=result.max_load_factor,
            load_bound=2.0,
            within=result.within_guarantees,
        )
    return table


def test_total_delay_theorem_5_1(benchmark, report):
    table = _run_table()
    report(table)
    assert table.all_rows_pass("alg_le_opt")
    assert table.all_rows_pass("within")

    instance = small_suite(707)[0]
    benchmark.pedantic(
        lambda: solve_total_delay(
            instance.system, instance.strategy, instance.network
        ),
        rounds=5,
        iterations=1,
    )
