"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper artifact (a theorem bound, a figure
family, or a closed form) as a :class:`repro.analysis.ResultTable`, then
times a representative unit of the computation with pytest-benchmark.

Tables are printed (visible with ``pytest -s``) *and* written to
``benchmarks/results/<title>.txt`` so the regenerated numbers survive the
run regardless of output capture.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Emit a ResultTable: print it and persist it under results/."""

    def emit(table):
        table.print()
        RESULTS_DIR.mkdir(exist_ok=True)
        slug = re.sub(r"[^A-Za-z0-9._-]+", "_", table.title).strip("_")
        (RESULTS_DIR / f"{slug}.txt").write_text(table.render() + "\n")

    return emit
