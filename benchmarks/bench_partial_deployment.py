"""E16 — related work (§2): the Gilbert-Malewicz partial deployment.

The paper notes its Section 5 machinery generalizes the partial quorum
deployment problem (bijective placement + one distinct quorum per
client).  This bench regenerates the restricted problem itself: the
alternating-Hungarian heuristic vs the exhaustive optimum across seeded
instances, reporting the heuristic's gap (usually zero) and iteration
counts.
"""

import numpy as np
import pytest

from repro.analysis import ResultTable
from repro.core import (
    solve_partial_deployment,
    solve_partial_deployment_exact,
)
from repro.network import cycle_network, path_network, random_geometric_network
from repro.quorums import QuorumSystem, wheel

SEEDS = [0, 1, 2, 3]


def _instances():
    anchored = QuorumSystem(
        [{0, 1}, {0, 2}, {0, 3}, {0, 1, 2}], universe=range(4), check=False
    )
    result = [
        ("wheel(5)@geo", wheel(5), lambda seed: random_geometric_network(
            5, 0.7, rng=np.random.default_rng(seed))),
        ("anchored@cycle", anchored, lambda seed: cycle_network(4)),
        ("wheel(5)@path", wheel(5), lambda seed: path_network(5)),
    ]
    return result


def _run_table():
    table = ResultTable(
        "E16 partial deployment - alternating Hungarian vs exact",
        ["instance", "seed", "alternating", "exact", "gap_pct", "iterations",
         "never_below_exact"],
    )
    for name, system, make_network in _instances():
        for seed in SEEDS:
            network = make_network(seed)
            alternating = solve_partial_deployment(system, network)
            exact = solve_partial_deployment_exact(system, network)
            gap = (
                100.0 * (alternating.average_delay - exact.average_delay)
                / exact.average_delay
                if exact.average_delay > 0
                else 0.0
            )
            table.add_row(
                instance=name,
                seed=seed,
                alternating=alternating.average_delay,
                exact=exact.average_delay,
                gap_pct=gap,
                iterations=alternating.iterations,
                never_below_exact=(
                    alternating.average_delay >= exact.average_delay - 1e-9
                ),
            )
    return table


def test_partial_deployment(benchmark, report):
    table = _run_table()
    report(table)
    assert table.all_rows_pass("never_below_exact")
    gaps = [float(row["gap_pct"]) for row in table.rows]
    # The alternation should find the optimum on most instances.
    assert sum(1 for g in gaps if g < 1e-6) >= len(gaps) * 0.6

    system = wheel(5)
    network = random_geometric_network(5, 0.7, rng=np.random.default_rng(0))
    benchmark(lambda: solve_partial_deployment(system, network))
