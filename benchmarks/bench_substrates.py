"""E11 — substrate throughput: the building blocks at realistic sizes.

Times the substrates the placement algorithms lean on — all-pairs
metric computation, quorum construction, the Naor-Wool strategy LP, the
SSQPP LP build+solve, and the access simulator — and regenerates a
scaling table (construction sizes vs wall time is in the pytest-benchmark
output; the table records the problem sizes exercised).
"""

import numpy as np
import pytest

from repro.analysis import ResultTable
from repro.core import random_placement, solve_ssqpp
from repro.core.ssqpp import build_ssqpp_lp
from repro.experiments import simulate_accesses
from repro.network import random_geometric_network, uniform_capacities
from repro.quorums import AccessStrategy, grid, majority, optimal_strategy, projective_plane


def test_metric_all_pairs(benchmark):
    rng = np.random.default_rng(11)
    network = random_geometric_network(80, 0.25, rng=rng)

    def compute():
        from repro.network import Metric

        return Metric.from_network(network)

    metric = benchmark(compute)
    assert metric.size == 80


def test_quorum_construction_grid(benchmark):
    system = benchmark(lambda: grid(12))
    assert system.universe_size == 144


def test_quorum_construction_fpp(benchmark):
    system = benchmark(lambda: projective_plane(7))
    assert system.universe_size == 57


def test_naor_wool_lp(benchmark):
    system = grid(6)
    result = benchmark.pedantic(
        lambda: optimal_strategy(system), rounds=3, iterations=1
    )
    assert result.load == pytest.approx((2 * 6 - 1) / 36, abs=1e-6)


def test_ssqpp_lp_build(benchmark):
    rng = np.random.default_rng(12)
    network = uniform_capacities(random_geometric_network(16, 0.4, rng=rng), 1.0)
    system = grid(3)
    strategy = AccessStrategy.uniform(system)
    model, *_ = benchmark.pedantic(
        lambda: build_ssqpp_lp(system, strategy, network, 0), rounds=3, iterations=1
    )
    assert model.num_variables > 0


def test_ssqpp_full_solve(benchmark):
    rng = np.random.default_rng(13)
    network = uniform_capacities(random_geometric_network(14, 0.4, rng=rng), 1.0)
    system = majority(9)
    strategy = AccessStrategy.uniform(system)
    result = benchmark.pedantic(
        lambda: solve_ssqpp(system, strategy, network, 0), rounds=3, iterations=1
    )
    assert result.within_guarantees


def test_ssqpp_lp_cumulative_formulation(benchmark):
    """The sparse encoding of (14): build + solve under 'cumulative'."""
    rng = np.random.default_rng(12)
    network = uniform_capacities(random_geometric_network(16, 0.4, rng=rng), 1.0)
    system = grid(3)
    strategy = AccessStrategy.uniform(system)

    def build_and_solve():
        model, *_ = build_ssqpp_lp(
            system, strategy, network, 0, formulation="cumulative"
        )
        return model.solve().objective

    value = benchmark.pedantic(build_and_solve, rounds=3, iterations=1)
    reference_model, *_ = build_ssqpp_lp(
        system, strategy, network, 0, formulation="prefix"
    )
    assert value == pytest.approx(reference_model.solve().objective, abs=1e-7)


def test_access_simulation_throughput(benchmark):
    rng = np.random.default_rng(14)
    network = uniform_capacities(random_geometric_network(12, 0.5, rng=rng), 2.0)
    system = majority(7)
    strategy = AccessStrategy.uniform(system)
    placement = random_placement(system, strategy, network, rng=rng)
    result = benchmark.pedantic(
        lambda: simulate_accesses(
            placement, strategy, rng=np.random.default_rng(0), accesses_per_client=200
        ),
        rounds=3,
        iterations=1,
    )
    assert result.accesses == 200 * network.size


def test_substrate_size_table(benchmark, report):
    def build():
        table = ResultTable(
            "E11 substrate scales exercised",
            ["substrate", "size"],
        )
        return table

    table = benchmark(build)
    table.add_row(substrate="metric all-pairs", size="80 nodes")
    table.add_row(substrate="grid construction", size="k=12 (144 elements)")
    table.add_row(substrate="projective plane", size="q=7 (57 elements)")
    table.add_row(substrate="Naor-Wool LP", size="grid(6): 36 quorums")
    table.add_row(substrate="SSQPP LP build", size="grid(3) x 16 nodes")
    table.add_row(substrate="SSQPP full solve", size="majority(9) x 14 nodes")
    table.add_row(substrate="access simulator", size="2400 accesses")
    report(table)
