"""E5 — §4.1 / Theorem B.1 / Figure 2: the concentric Grid layout.

Two regenerations:

* **Optimality** (Theorem B.1): for k = 2 the concentric arrangement is
  checked against *all* 4! matrix arrangements; for k = 3 against all
  9!/(symmetry-free) arrangements via full enumeration of distance
  permutations (the 362 880-case certificate the appendix proves
  analytically).
* **Baselines**: for larger k, the concentric layout vs row-major,
  reversed (closest-first at the origin) and random arrangements on
  random distance multisets — the concentric layout must never lose.
"""

from itertools import permutations

import numpy as np
import pytest

from repro.analysis import ResultTable
from repro.core import concentric_matrix, grid_matrix_delay


def _exhaustive_table():
    rng = np.random.default_rng(404)
    table = ResultTable(
        "E5a Theorem B.1 - exhaustive optimality of the concentric layout",
        ["k", "arrangements", "concentric", "exhaustive_min", "optimal"],
    )
    # k = 2: all 24 arrangements, several random multisets.
    values2 = sorted(rng.uniform(0, 10, 4))
    best2 = min(
        grid_matrix_delay(np.array(p).reshape(2, 2)) for p in permutations(values2)
    )
    ours2 = grid_matrix_delay(concentric_matrix(list(values2)))
    table.add_row(
        k=2, arrangements=24, concentric=ours2, exhaustive_min=best2,
        optimal=abs(ours2 - best2) < 1e-9,
    )
    # k = 3: full 9! enumeration on one multiset (the heavy certificate).
    values3 = sorted(rng.uniform(0, 10, 9))
    array = np.empty((3, 3))
    best3 = np.inf
    for p in permutations(values3):
        array.flat[:] = p
        best3 = min(best3, grid_matrix_delay(array))
    ours3 = grid_matrix_delay(concentric_matrix(list(values3)))
    table.add_row(
        k=3, arrangements=362880, concentric=ours3, exhaustive_min=best3,
        optimal=abs(ours3 - best3) < 1e-9,
    )
    return table


def _baseline_table():
    rng = np.random.default_rng(405)
    table = ResultTable(
        "E5b Figure 2 layout vs baselines (avg max-delay, lower is better)",
        ["k", "concentric", "row_major", "reversed", "random_best_of_200",
         "never_beaten"],
    )
    for k in (4, 6, 8, 10, 12):
        values = sorted(rng.uniform(0, 10, k * k), reverse=True)
        ours = grid_matrix_delay(concentric_matrix(list(values)))
        row_major = grid_matrix_delay(np.array(values).reshape(k, k))
        reverse = grid_matrix_delay(np.array(values[::-1]).reshape(k, k))
        array = np.array(values)
        random_best = np.inf
        for _ in range(200):
            rng.shuffle(array)
            random_best = min(random_best, grid_matrix_delay(array.reshape(k, k)))
        table.add_row(
            k=k,
            concentric=ours,
            row_major=row_major,
            reversed=reverse,
            random_best_of_200=random_best,
            never_beaten=ours <= min(row_major, reverse, random_best) + 1e-9,
        )
    return table


def test_grid_layout_theorem_b1(benchmark, report):
    exhaustive = _exhaustive_table()
    baselines = _baseline_table()
    report(exhaustive)
    report(baselines)
    assert exhaustive.all_rows_pass("optimal")
    assert baselines.all_rows_pass("never_beaten")

    values = list(np.random.default_rng(1).uniform(0, 10, 64))
    benchmark(lambda: grid_matrix_delay(concentric_matrix(values)))
