"""E14 — extension: read/write quorum workloads.

Sweeps the read fraction of the Grid's read/write split (rows read,
row+column writes) and regenerates the expected shape: as the workload
becomes read-heavier, the placed average delay and the per-element load
both fall (rows are smaller and spread thinner than writes), while the
Theorem 3.7 load guarantee — which never uses the intersection property
— keeps holding for every mix.
"""

import numpy as np
import pytest

from repro.analysis import ResultTable
from repro.core import capacity_violation_factor, solve_rw_placement, solve_rw_ssqpp
from repro.network import random_geometric_network, uniform_capacities
from repro.quorums import grid_rw

READ_FRACTIONS = [0.0, 0.25, 0.5, 0.75, 0.95]


def _network():
    rng = np.random.default_rng(1401)
    return uniform_capacities(random_geometric_network(11, 0.5, rng=rng), 1.0)


def _run_table():
    network = _network()
    rw = grid_rw(3)
    table = ResultTable(
        "E14 read/write Grid workload sweep (alpha=2)",
        ["read_fraction", "avg_delay", "expected_quorum_size", "load_factor",
         "load_bound", "within"],
    )
    previous_delay = float("inf")
    monotone = True
    for rho in READ_FRACTIONS:
        result = solve_rw_placement(
            rw, network, read_fraction=rho, alpha=2.0,
            candidate_sources=list(network.nodes)[:4],
        )
        violation = capacity_violation_factor(result.placement, result.strategy)
        table.add_row(
            read_fraction=rho,
            avg_delay=result.average_delay,
            expected_quorum_size=result.strategy.expected_quorum_size(),
            load_factor=violation,
            load_bound=result.load_factor_bound,
            within=violation <= result.load_factor_bound + 1e-6,
        )
        monotone = monotone and result.average_delay <= previous_delay + 0.25
        previous_delay = result.average_delay
    return table, monotone


def test_readwrite_workloads(benchmark, report):
    table, roughly_monotone = _run_table()
    report(table)
    assert table.all_rows_pass("within")
    # Shape check: read-heavier mixes should not get meaningfully slower.
    assert roughly_monotone

    network = _network()
    rw = grid_rw(3)
    benchmark.pedantic(
        lambda: solve_rw_ssqpp(rw, network, 0, read_fraction=0.5),
        rounds=3,
        iterations=1,
    )
