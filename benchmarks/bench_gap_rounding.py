"""E9 — Theorem 3.11 (Shmoys-Tardos): GAP rounding quality at scale.

Regenerates, across random GAP instances of growing size: the integral
cost vs the LP bound (ratio must be <= 1) and the worst machine load vs
the ``T_i + p_i^max`` guarantee.  Also compares against the exact optimum
where enumeration is feasible.
"""

import numpy as np
import pytest

from repro.analysis import ResultTable
from repro.exceptions import InfeasibleError
from repro.gap import GAPInstance, solve_gap, solve_gap_exact

SIZES = [(3, 5), (4, 8), (6, 12), (8, 20), (10, 40)]


def _random_instance(rng, machines, jobs):
    return GAPInstance(
        tuple(range(jobs)),
        tuple(f"m{i}" for i in range(machines)),
        rng.uniform(1, 10, (machines, jobs)),
        rng.uniform(0.1, 1.0, (machines, jobs)),
        rng.uniform(1.0, 2.5, machines),
    )


def _run_table():
    rng = np.random.default_rng(909)
    table = ResultTable(
        "E9 Theorem 3.11 - Shmoys-Tardos rounding quality",
        ["machines", "jobs", "cost_over_lp", "worst_load_over_bound",
         "cost_over_opt", "within"],
    )
    for machines, jobs in SIZES:
        instance = _random_instance(rng, machines, jobs)
        try:
            solution = solve_gap(instance)
        except InfeasibleError:
            continue
        cost_ratio = solution.cost / solution.lp_cost if solution.lp_cost > 0 else 1.0
        load_ratio = 0.0
        for i, machine in enumerate(instance.machines):
            bound = instance.capacities[i] + instance.max_load_on_machine(i)
            load_ratio = max(load_ratio, solution.machine_loads[machine] / bound)
        if machines * jobs <= 40:
            try:
                exact = solve_gap_exact(instance)
                opt_ratio = solution.cost / exact.cost if exact.cost > 0 else 1.0
            except InfeasibleError:
                opt_ratio = float("nan")
        else:
            opt_ratio = float("nan")
        table.add_row(
            machines=machines,
            jobs=jobs,
            cost_over_lp=cost_ratio,
            worst_load_over_bound=load_ratio,
            cost_over_opt=opt_ratio,
            within=cost_ratio <= 1.0 + 1e-6 and load_ratio <= 1.0 + 1e-6,
        )
    return table


def test_gap_rounding_theorem_3_11(benchmark, report):
    table = _run_table()
    report(table)
    assert table.all_rows_pass("within")

    rng = np.random.default_rng(2)
    instance = _random_instance(rng, 6, 12)
    benchmark.pedantic(lambda: solve_gap(instance), rounds=5, iterations=1)
