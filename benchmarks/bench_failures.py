"""E15 — extension: delay under failure injection.

The paper motivates capacity limits with load dispersion and fault
tolerance; this bench quantifies the trade on the co-location spectrum.
For collapsed / LP-rounded / fully-spread placements of Majority(5), a
crash-rate sweep measures the empirical success rate (cross-checked
against the exact placement availability) and the effective delay of
successful accesses with greedy failover.

Shape to regenerate: the collapsed placement wins on delay but its
success rate is exactly the survival of one node; spreading trades delay
for availability.
"""

import numpy as np
import pytest

from repro.analysis import ResultTable, placement_availability
from repro.core import Placement, single_node_placement, solve_qpp
from repro.experiments import simulate_with_failures
from repro.network import random_geometric_network, uniform_capacities
from repro.quorums import AccessStrategy, majority

FAILURE_RATES = [0.05, 0.15, 0.3]


def _setting():
    rng = np.random.default_rng(1501)
    system = majority(5)
    strategy = AccessStrategy.uniform(system)
    network = uniform_capacities(
        random_geometric_network(9, 0.5, rng=rng), 0.7
    )
    placements = {
        "collapsed": single_node_placement(system, network),
        "lp(alpha=1.2)": solve_qpp(system, strategy, network, alpha=1.2).placement,
        "spread": Placement(
            system,
            network,
            {u: network.nodes[i] for i, u in enumerate(system.universe)},
        ),
    }
    return system, strategy, network, placements


def _run_table():
    system, strategy, network, placements = _setting()
    table = ResultTable(
        "E15 failure injection - success rate and effective delay",
        ["placement", "p_fail", "success_rate", "exact_availability",
         "match", "effective_delay", "baseline_delay"],
    )
    for name, placement in placements.items():
        for p_fail in FAILURE_RATES:
            exact = placement_availability(placement, p_fail)
            result = simulate_with_failures(
                placement,
                strategy,
                failure_probability=p_fail,
                rng=np.random.default_rng(7),
                epochs=300,
                accesses_per_client=3,
            )
            table.add_row(
                placement=name,
                p_fail=p_fail,
                success_rate=result.success_rate,
                exact_availability=exact,
                match=abs(result.success_rate - exact) < 0.05,
                effective_delay=result.effective_delay,
                baseline_delay=result.baseline_delay,
            )
    return table


def test_failure_injection(benchmark, report):
    table = _run_table()
    report(table)
    assert table.all_rows_pass("match")

    system, strategy, network, placements = _setting()
    benchmark.pedantic(
        lambda: simulate_with_failures(
            placements["spread"],
            strategy,
            failure_probability=0.15,
            rng=np.random.default_rng(0),
            epochs=50,
            accesses_per_client=3,
        ),
        rounds=3,
        iterations=1,
    )
