"""E8 — Theorem 3.6: correctness of the NP-hardness reduction.

For a family of Woeginger-form scheduling instances, solves both sides
exactly and regenerates the affine cost/delay correspondence: the optimal
schedule cost must map exactly onto the optimal placement delay.
"""

import numpy as np
import pytest

from repro.analysis import ResultTable
from repro.core import reduce_scheduling_to_ssqpp, solve_ssqpp_exact
from repro.scheduling import random_woeginger_instance, solve_scheduling_exact

SHAPES = [(2, 2), (3, 2), (3, 3), (4, 2), (4, 3), (2, 4)]


def _run_table():
    rng = np.random.default_rng(808)
    table = ResultTable(
        "E8 Theorem 3.6 - scheduling <-> placement equivalence",
        ["unit_time", "unit_weight", "opt_schedule_cost", "opt_placement_delay",
         "mapped_delay", "exact_match"],
    )
    for unit_time, unit_weight in SHAPES:
        instance = random_woeginger_instance(
            unit_time, unit_weight, rng=rng, edge_probability=0.5
        )
        reduction = reduce_scheduling_to_ssqpp(instance)
        schedule = solve_scheduling_exact(instance)
        placement = solve_ssqpp_exact(
            reduction.system, reduction.strategy, reduction.network, 0
        )
        mapped = reduction.delay_of_schedule_cost(schedule.cost)
        table.add_row(
            unit_time=unit_time,
            unit_weight=unit_weight,
            opt_schedule_cost=schedule.cost,
            opt_placement_delay=placement.objective,
            mapped_delay=mapped,
            exact_match=abs(mapped - placement.objective) < 1e-9,
        )
    return table


def test_hardness_reduction_theorem_3_6(benchmark, report):
    table = _run_table()
    report(table)
    assert table.all_rows_pass("exact_match")

    rng = np.random.default_rng(1)
    instance = random_woeginger_instance(3, 3, rng=rng)
    benchmark(lambda: reduce_scheduling_to_ssqpp(instance))
