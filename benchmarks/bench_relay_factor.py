"""E2 — Lemma 3.1: the relay-via-v0 detour costs at most 5x.

Measures the relay factor over many (system, network, placement) triples,
including adversarial cluster-straddling placements, and reports the
worst factor observed per family.  The paper's bound is 5; the measured
shape is that typical factors sit well below it (usually < 2).
"""

import numpy as np
import pytest

from repro.analysis import ResultTable
from repro.core import Placement, random_placement, relay_analysis
from repro.network import (
    random_geometric_network,
    two_cluster_network,
    uniform_capacities,
)
from repro.quorums import AccessStrategy, grid, majority, wheel

TRIALS_PER_FAMILY = 12


def _families(rng):
    geometric = uniform_capacities(random_geometric_network(12, 0.45, rng=rng), 2.0)
    clusters = uniform_capacities(two_cluster_network(6, bridge_length=30.0), 2.0)
    return [
        ("majority(5)@geo", majority(5), geometric),
        ("grid(3)@geo", grid(3), geometric),
        ("wheel(5)@geo", wheel(5), geometric),
        ("majority(5)@clusters", majority(5), clusters),
        ("grid(3)@clusters", grid(3), clusters),
    ]


def _run_table():
    rng = np.random.default_rng(202)
    table = ResultTable(
        "E2 Lemma 3.1 - relay-via-v0 factor (bound 5)",
        ["family", "trials", "mean_factor", "max_factor", "bound", "within"],
    )
    for name, system, network in _families(rng):
        strategy = AccessStrategy.uniform(system)
        factors = []
        for _ in range(TRIALS_PER_FAMILY):
            placement = random_placement(system, strategy, network, rng=rng)
            factors.append(relay_analysis(placement, strategy).factor)
        # One adversarial spread placement per family.
        nodes = list(network.nodes)
        spread = Placement(
            system,
            network,
            {u: nodes[i % len(nodes)] for i, u in enumerate(system.universe)},
        )
        factors.append(relay_analysis(spread, strategy).factor)
        table.add_row(
            family=name,
            trials=len(factors),
            mean_factor=float(np.mean(factors)),
            max_factor=float(np.max(factors)),
            bound=5.0,
            within=max(factors) <= 5.0 + 1e-9,
        )
    return table


def test_relay_factor_lemma_3_1(benchmark, report):
    table = _run_table()
    report(table)
    assert table.all_rows_pass("within")

    rng = np.random.default_rng(7)
    network = uniform_capacities(random_geometric_network(12, 0.45, rng=rng), 2.0)
    system = majority(5)
    strategy = AccessStrategy.uniform(system)
    placement = random_placement(system, strategy, network, rng=rng)
    benchmark(lambda: relay_analysis(placement, strategy))
