"""E3 — Theorem 3.7: the alpha trade-off for the single-source algorithm.

Sweeps alpha over a fixed instance suite and regenerates the trade-off
curve the theorem describes: the delay guarantee ``alpha/(alpha-1) * Z*``
falls with alpha while the permitted load ``(alpha+1) cap`` rises.  Both
realized quantities must stay inside their bounds at every alpha.
"""

import numpy as np
import pytest

from repro.analysis import ResultTable
from repro.core import solve_ssqpp
from repro.network import random_geometric_network, uniform_capacities
from repro.quorums import AccessStrategy, grid, majority

ALPHAS = [1.25, 1.5, 2.0, 3.0, 5.0]


def _instances():
    rng = np.random.default_rng(303)
    network = uniform_capacities(random_geometric_network(11, 0.5, rng=rng), 0.9)
    return [
        ("majority(7)", majority(7), network),
        ("grid(3)", grid(3), network),
    ]


def _run_table():
    table = ResultTable(
        "E3 Theorem 3.7 - SSQPP alpha trade-off",
        ["instance", "alpha", "lp_value", "delay", "delay_bound",
         "load_factor", "load_bound", "within"],
    )
    for name, system, network in _instances():
        strategy = AccessStrategy.uniform(system)
        for alpha in ALPHAS:
            result = solve_ssqpp(system, strategy, network, 0, alpha=alpha)
            table.add_row(
                instance=name,
                alpha=alpha,
                lp_value=result.lp_value,
                delay=result.delay,
                delay_bound=result.delay_bound,
                load_factor=result.max_load_factor,
                load_bound=result.load_factor_bound,
                within=result.within_guarantees,
            )
    return table


def test_ssqpp_alpha_tradeoff(benchmark, report):
    table = _run_table()
    report(table)
    assert table.all_rows_pass("within")

    name, system, network = _instances()[0]
    strategy = AccessStrategy.uniform(system)
    benchmark.pedantic(
        lambda: solve_ssqpp(system, strategy, network, 0, alpha=2.0),
        rounds=3,
        iterations=1,
    )
