"""E6 — §4.2 equation (19): the Majority delay formula.

Regenerates, for a sweep of (n, t):

* the closed-form (19) vs the directly evaluated ``Delta_f(v0)`` of the
  produced placement (must agree to machine precision), and
* the placement-invariance claim: random permutations of the elements
  over the same slots all have identical delay.
"""

import numpy as np
import pytest

from repro.analysis import ResultTable
from repro.core import (
    Placement,
    expected_max_delay,
    majority_delay_formula,
    optimal_majority_placement,
)
from repro.network import random_geometric_network, uniform_capacities

SWEEP = [(5, 3), (5, 4), (7, 4), (9, 5), (9, 7), (11, 6)]


def _network():
    rng = np.random.default_rng(606)
    return uniform_capacities(random_geometric_network(14, 0.45, rng=rng), 1.0)


def _run_table():
    network = _network()
    rng = np.random.default_rng(607)
    table = ResultTable(
        "E6 Equation (19) - Majority delay formula and invariance",
        ["n", "t", "formula", "measured", "agree", "permutations_identical"],
    )
    for n, t in SWEEP:
        result = optimal_majority_placement(network, network.nodes[0], n, t=t)
        agree = abs(result.delay - result.formula_delay) < 1e-9

        # Invariance: shuffle the element -> slot assignment 5 times.
        system = result.placement.system
        slots = [result.placement[u] for u in system.universe]
        identical = True
        for _ in range(5):
            shuffled = list(slots)
            rng.shuffle(shuffled)
            permuted = Placement(
                system, network, dict(zip(system.universe, shuffled))
            )
            delay = expected_max_delay(permuted, result.strategy, network.nodes[0])
            if abs(delay - result.delay) > 1e-9:
                identical = False
        table.add_row(
            n=n,
            t=t,
            formula=result.formula_delay,
            measured=result.delay,
            agree=agree,
            permutations_identical=identical,
        )
    return table


def test_majority_formula_eq19(benchmark, report):
    table = _run_table()
    report(table)
    assert table.all_rows_pass("agree")
    assert table.all_rows_pass("permutations_identical")

    distances = list(np.random.default_rng(2).uniform(0, 10, 101))
    benchmark(lambda: majority_delay_formula(101, 51, distances))
