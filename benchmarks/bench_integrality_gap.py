"""E4 — Claim A.1 and Figure 1: integrality gaps of the LP (9)-(14).

Regenerates both gap families:

* the general-metric star (gap -> n as the far distance M grows), and
* the Figure 1 unit-length broom with k^2 nodes (gap Omega(sqrt(n))).

The *shape* to reproduce: the star gap climbs toward n with M; the broom
gap grows linearly in k = sqrt(n) while the LP value stays near 3/2.
"""

import pytest

from repro.analysis import ResultTable, broom_gap_instance, general_metric_gap_instance

STAR_N = 8
STAR_MS = [10.0, 100.0, 1000.0, 10000.0]
BROOM_KS = [2, 3, 4, 5, 6, 7]


def _star_table():
    table = ResultTable(
        "E4a Claim A.1 - general-metric gap (approaches n)",
        ["n", "M", "lp_value", "integral_opt", "gap", "gap_le_n"],
    )
    for M in STAR_MS:
        instance = general_metric_gap_instance(STAR_N, M)
        table.add_row(
            n=STAR_N,
            M=M,
            lp_value=instance.lp_value,
            integral_opt=instance.integral_optimum,
            gap=instance.gap,
            gap_le_n=instance.gap <= STAR_N + 1e-6,
        )
    return table


def _broom_table():
    table = ResultTable(
        "E4b Figure 1 - broom gap (Omega(sqrt(n)))",
        ["k", "n", "lp_value", "integral_opt", "gap", "gap_ge_k_half"],
    )
    for k in BROOM_KS:
        instance = broom_gap_instance(k)
        table.add_row(
            k=k,
            n=k * k,
            lp_value=instance.lp_value,
            integral_opt=instance.integral_optimum,
            gap=instance.gap,
            gap_ge_k_half=instance.gap >= 0.5 * k,
        )
    return table


def test_integrality_gaps_claim_a1(benchmark, report):
    star = _star_table()
    broom = _broom_table()
    report(star)
    report(broom)
    assert star.all_rows_pass("gap_le_n")
    assert broom.all_rows_pass("gap_ge_k_half")

    # Star gaps must be increasing in M; broom gaps increasing in k.
    star_gaps = [float(row["gap"]) for row in star.rows]
    assert star_gaps == sorted(star_gaps)
    broom_gaps = [float(row["gap"]) for row in broom.rows]
    assert broom_gaps == sorted(broom_gaps)

    benchmark.pedantic(lambda: broom_gap_instance(4), rounds=3, iterations=1)
