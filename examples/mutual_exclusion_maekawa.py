"""Maekawa-style distributed mutual exclusion on a WAN.

Maekawa's algorithm grants a lock after collecting votes from a quorum;
with finite-projective-plane quorums each process contacts only
O(sqrt(n)) voters.  On a wide-area network the *placement* of the voters
determines lock-acquisition latency: a client must hear back from its
entire quorum, which is exactly the paper's max-delay access cost.

This example:

1. builds the FPP quorum system of order 2 (7 elements, quorums of 3),
2. computes its load-optimal access strategy with the Naor-Wool LP,
3. places voters on a 40-node Waxman internet with heterogeneous
   capacities (some machines are beefy, some are PDAs),
4. compares lock latency and voter load against a random placement, and
5. reports the availability of the voter set under crash failures.

Run:  python examples/mutual_exclusion_maekawa.py
"""

import numpy as np

from repro.analysis import ResultTable
from repro.core import (
    average_max_delay,
    capacity_violation_factor,
    random_placement,
    relay_analysis,
    solve_qpp,
)
from repro.network import random_capacities, waxman_network
from repro.quorums import (
    availability_exact,
    optimal_strategy,
    projective_plane,
    resilience,
)


def main() -> None:
    rng = np.random.default_rng(99)

    # The voting structure: PG(2, 2), a.k.a. the Fano plane.
    system = projective_plane(2)
    print(f"voting structure: {system} (quorums of {system.min_quorum_size()})")
    print(f"resilience: tolerates {resilience(system)} voter crashes")
    print(f"availability at 10% crash rate: {availability_exact(system, 0.1):.4f}")

    strategy_result = optimal_strategy(system)
    strategy = strategy_result.strategy
    print(f"load-optimal strategy: max voter load {strategy_result.load:.4f}")

    # A 40-node Waxman internet; latencies in ms.  Capacities model a
    # heterogeneous fleet: anything below the voter load cannot host one.
    network = waxman_network(40, rng=rng, scale=80.0)
    network = random_capacities(network, rng=rng, low=0.1, high=1.0)

    qpp = solve_qpp(
        system,
        strategy,
        network,
        alpha=2.0,
        candidate_sources=list(network.nodes)[:8],  # prune the sweep for speed
    )
    naive = random_placement(system, strategy, network, rng=rng)

    table = ResultTable(
        "Maekawa voter placement: lock-acquisition latency",
        ["placement", "avg_lock_latency_ms", "worst_load_factor", "relay_factor"],
    )
    for name, placement in (("LP rounding (thm 1.2)", qpp.placement), ("random", naive)):
        table.add_row(
            placement=name,
            avg_lock_latency_ms=average_max_delay(placement, strategy),
            worst_load_factor=capacity_violation_factor(placement, strategy),
            relay_factor=relay_analysis(placement, strategy).factor,
        )
    table.print()

    print(
        f"certified: no capacity-respecting placement beats "
        f"{qpp.optimum_lower_bound:.2f} ms average lock latency."
    )


if __name__ == "__main__":
    main()
