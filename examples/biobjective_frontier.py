"""Choosing between round latency and message cost.

A quorum access pays twice: the *max-delay* (you wait for the farthest
member — the latency of a parallel round) and the *total delay* (you pay
per contacted member — bandwidth / work).  The paper optimizes each
separately (Sections 3 and 5); both are linear in the placement LP, so a
convex scalarization traces the whole trade-off with the same machinery
and the same load guarantee.

This example sweeps the scalarization weight for a Majority deployment
on a WAN and prints the realized Pareto frontier, so an operator can
pick the placement matching their latency/cost priorities.

Run:  python examples/biobjective_frontier.py
"""

import numpy as np

from repro.analysis import ResultTable
from repro.core import max_vs_total_frontier
from repro.network import random_geometric_network, uniform_capacities
from repro.quorums import AccessStrategy, majority


def main() -> None:
    rng = np.random.default_rng(1)
    network = uniform_capacities(
        random_geometric_network(9, 0.5, rng=rng, scale=80.0), 0.9
    )
    system = majority(5)
    strategy = AccessStrategy.uniform(system)
    # A corner client: its round latency pulls the placement toward it,
    # while the all-clients message cost pulls toward the median — a
    # genuine conflict.
    source = network.nodes[0]

    front = max_vs_total_frontier(
        system,
        strategy,
        network,
        source,
        weights=[0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0],
    )

    table = ResultTable(
        "latency vs message-cost frontier (Pareto points only)",
        ["weight", "round_latency_ms", "messages_cost_ms", "load_factor"],
    )
    for point in front:
        table.add_row(
            weight=point.weight,
            round_latency_ms=point.max_delay,
            messages_cost_ms=point.total_delay,
            load_factor=point.max_load_factor,
        )
    table.print()

    fastest = front[0]
    cheapest = front[-1]
    print(
        f"extremes: weight {fastest.weight:g} gives "
        f"{fastest.max_delay:.1f} ms rounds at {fastest.total_delay:.1f} ms "
        f"of messaging; weight {cheapest.weight:g} gives "
        f"{cheapest.max_delay:.1f} ms rounds at {cheapest.total_delay:.1f} ms."
    )
    print(
        "every point respects the same (alpha+1) capacity bound — the "
        "trade is purely between the two delay measures."
    )


if __name__ == "__main__":
    main()
