"""Capacity provisioning with LP shadow prices.

You run a quorum deployment and can afford to upgrade ONE machine.
Which one?  The single-source placement LP already knows: the dual value
of each capacity constraint is the marginal delay improvement per unit
of capacity at that node.  This example

1. prices every node's capacity on a tight deployment,
2. upgrades the top bottleneck (and, for contrast, a zero-priced node),
3. re-solves and shows the realized delay change matching the LP's
   first-order prediction.

Run:  python examples/capacity_provisioning.py
"""

import numpy as np

from repro.analysis import ResultTable
from repro.core import capacity_sensitivity, solve_ssqpp
from repro.network import random_geometric_network, uniform_capacities
from repro.quorums import AccessStrategy, majority


def main() -> None:
    rng = np.random.default_rng(31)
    system = majority(7)
    strategy = AccessStrategy.uniform(system)
    # Tight capacities: every node fits one element and little more.
    network = uniform_capacities(
        random_geometric_network(9, 0.5, rng=rng, scale=50.0), 0.6
    )
    source = network.nodes[0]

    sensitivity = capacity_sensitivity(system, strategy, network, source)
    print(f"LP delay bound at current capacities: {sensitivity.lp_value:.3f} ms")
    print("\ncapacity shadow prices (ms of delay bound per unit capacity):")
    for node, price in sorted(sensitivity.shadow_prices.items(), key=lambda kv: kv[1]):
        marker = "  <- bottleneck" if (node, price) in sensitivity.bottlenecks(2) else ""
        print(f"  node {node!r}: {price:+.3f}{marker}")

    bottleneck = sensitivity.bottlenecks(1)[0][0]
    slack_nodes = [
        node
        for node, price in sensitivity.shadow_prices.items()
        if abs(price) < 1e-9 and node != bottleneck
    ]

    table = ResultTable(
        "upgrade one machine by +0.6 capacity: predicted vs realized",
        ["upgraded_node", "lp_before", "lp_after", "realized_delay_after"],
    )
    upgrades = [bottleneck] + slack_nodes[:1]
    for target in upgrades:
        capacities = {v: network.capacity(v) for v in network.nodes}
        capacities[target] += 0.6
        upgraded = network.with_capacities(capacities)
        after = capacity_sensitivity(system, strategy, upgraded, source)
        solved = solve_ssqpp(system, strategy, upgraded, source, alpha=2.0)
        table.add_row(
            upgraded_node=repr(target),
            lp_before=sensitivity.lp_value,
            lp_after=after.lp_value,
            realized_delay_after=solved.delay,
        )
    table.print()

    print(
        "upgrading the priced bottleneck moves the bound; upgrading a "
        "zero-priced machine is wasted budget — the dual told us so "
        "before buying anything."
    )


if __name__ == "__main__":
    main()
