"""Wide-area data replication across two datacenters.

The scenario from the paper's introduction: a replicated data service
whose clients live in two clusters joined by a slow WAN bridge.  Writes
use majority quorums; the placement decides whether quorum accesses stay
inside a cluster or straddle the bridge on every request.

The example compares four placements on both paper objectives
(average max-delay and average total delay) and on capacity violation:

* the Theorem 1.2 LP-rounding solution,
* the Theorem 5.1 total-delay GAP solution,
* greedy packing around the network median, and
* Lin's single-node collapse (delay-optimal, load-disastrous).

It finishes with a discrete simulation showing the analytic objective
matches what clients actually measure.

Run:  python examples/wide_area_replication.py
"""

import numpy as np

from repro.analysis import ResultTable
from repro.core import (
    average_max_delay,
    average_total_delay,
    capacity_violation_factor,
    greedy_placement,
    single_node_placement,
    solve_qpp,
    solve_total_delay,
)
from repro.experiments import simulate_accesses
from repro.network import two_cluster_network, uniform_capacities
from repro.quorums import AccessStrategy, majority


def main() -> None:
    rng = np.random.default_rng(7)

    # Two datacenters of 6 machines; intra-DC hops cost 1 ms, the
    # cross-country bridge costs 40 ms.  Every machine can absorb the
    # load of about one replica.
    network = uniform_capacities(
        two_cluster_network(6, local_length=1.0, bridge_length=40.0), 1.0
    )

    # 7-way majority replication (tolerates 3 replica failures).
    system = majority(7)
    strategy = AccessStrategy.uniform(system)
    print(f"replicating with {system}: quorums of {system.min_quorum_size()}")

    placements = {}
    qpp = solve_qpp(system, strategy, network, alpha=2.0,
                    candidate_sources=[("a", 0), ("b", 0)])
    placements["theorem 1.2 (max-delay)"] = qpp.placement
    placements["theorem 5.1 (total-delay)"] = solve_total_delay(
        system, strategy, network
    ).placement
    placements["greedy packing"] = greedy_placement(system, strategy, network)
    placements["single-node collapse"] = single_node_placement(system, network)

    table = ResultTable(
        "wide-area replication: placement comparison",
        ["placement", "avg_max_delay_ms", "avg_total_delay_ms", "load_factor",
         "feasible"],
    )
    for name, placement in placements.items():
        violation = capacity_violation_factor(placement, strategy)
        table.add_row(
            placement=name,
            avg_max_delay_ms=average_max_delay(placement, strategy),
            avg_total_delay_ms=average_total_delay(placement, strategy),
            load_factor=violation,
            feasible=violation <= qpp.load_factor_bound + 1e-9,
        )
    table.print()

    # Sanity-check the analytics with a simulation of real accesses.
    best = placements["theorem 1.2 (max-delay)"]
    simulation = simulate_accesses(best, strategy, rng=rng, accesses_per_client=1000)
    print(
        f"simulated {simulation.accesses} accesses: measured "
        f"{simulation.measured_max_delay:.2f} ms vs analytic "
        f"{simulation.analytic_max_delay:.2f} ms "
        f"(error {100 * simulation.max_delay_error:.2f}%)"
    )

    # How much does the bridge hurt a placement that straddles it?
    straddler = placements["greedy packing"]
    print(
        "\nnote: the single-node collapse has the best delay but a load "
        f"factor of {capacity_violation_factor(placements['single-node collapse'], strategy):.1f} "
        "— the trade-off the paper is about."
    )


if __name__ == "__main__":
    main()
