"""Quickstart: place a Grid quorum system on a random wide-area network.

Walks the library's core loop in ~40 lines:

1. build a quorum system and its access strategy,
2. build a capacitated network,
3. solve the Quorum Placement Problem (Theorem 1.2),
4. inspect delays, loads and the proven guarantees.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    average_max_delay,
    capacity_violation_factor,
    node_loads,
    solve_qpp,
)
from repro.network import random_geometric_network, uniform_capacities
from repro.quorums import AccessStrategy, grid


def main() -> None:
    rng = np.random.default_rng(42)

    # A 3x3 Grid quorum system: 9 logical elements, 9 quorums of 5.
    system = grid(3)
    strategy = AccessStrategy.uniform(system)  # load-optimal for the Grid
    print(f"system: {system}")
    print(f"per-element load: {strategy.max_load():.4f}")

    # A 12-node random geometric network; distances are latencies in ms.
    network = random_geometric_network(12, 0.5, rng=rng, scale=100.0)
    network = uniform_capacities(network, 1.0)
    print(f"network: {network}, diameter {network.metric().diameter():.1f} ms")

    # Solve the Quorum Placement Problem with the alpha = 2 trade-off:
    # load may exceed capacity by at most 3x, delay is within 10x of
    # optimal (Theorem 1.2) — and usually far closer.
    result = solve_qpp(system, strategy, network, alpha=2.0)

    print(f"\nplacement found via relay candidate {result.source}:")
    for element, node in sorted(result.placement.as_dict().items()):
        print(f"  element {element} -> node {node}")

    delay = average_max_delay(result.placement, strategy)
    print(f"\naverage max-delay: {delay:.2f} ms")
    print(f"certified optimum lower bound: {result.optimum_lower_bound:.2f} ms")
    print(f"certified approximation ratio: <= {result.certified_ratio:.2f}x")
    print(f"proven worst-case factor: {result.approximation_factor:.1f}x")

    violation = capacity_violation_factor(result.placement, strategy)
    print(f"\nworst node load/capacity: {violation:.2f} (bound {result.load_factor_bound:.0f})")
    busiest = max(node_loads(result.placement, strategy).items(), key=lambda kv: kv[1])
    print(f"busiest node: {busiest[0]} with load {busiest[1]:.3f}")


if __name__ == "__main__":
    main()
