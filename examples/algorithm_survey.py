"""Survey: every placement algorithm on every small-suite instance.

Uses :func:`repro.experiments.compare_algorithms` — the library's
one-call comparison harness — to score, on each exhaustively solvable
instance,

* the Theorem 1.2 LP-rounding solver (max-delay objective),
* the Theorem 5.1 GAP solver (total-delay objective, scored here on
  max-delay for comparability),
* greedy packing and random first-fit baselines,

against the true optimum, reporting delay as a multiple of OPT plus each
placement's worst load/capacity ratio.  This is the "which tool should I
reach for" table for new users.

Run:  python examples/algorithm_survey.py
"""

import numpy as np

from repro.analysis import ResultTable
from repro.experiments import compare_algorithms, small_suite


def main() -> None:
    rng = np.random.default_rng(21)
    table = ResultTable(
        "algorithm survey (delay as multiple of OPT | worst load factor)",
        ["instance", "thm1.2", "thm5.1", "greedy", "random", "opt_delay"],
    )

    for instance in small_suite(77)[:8]:
        comparison = compare_algorithms(
            instance, rng=rng, alpha=2.0, candidate_sources=None
        )
        opt = comparison.optimal_max_delay

        def cell(name: str) -> str:
            score = comparison.score(name)
            if score.failed:
                return "stuck"
            ratio = score.max_delay / opt if opt else 1.0
            return f"{ratio:.2f}x | {score.load_factor:.2f}"

        table.add_row(
            instance=instance.name,
            opt_delay=opt,
            **{"thm1.2": cell("qpp"), "thm5.1": cell("total_delay")},
            greedy=cell("greedy"),
            random=cell("random"),
        )

    table.print()
    print(
        "reading: 'a x | b' = delay as a multiple of the true optimum | "
        "worst node load/capacity.  Theorem 1.2 may show < 1x because it "
        "is allowed 3x capacity; greedy/random respect capacity exactly."
    )


if __name__ == "__main__":
    main()
