"""Exploring the Theorem 3.7 load/delay trade-off knob.

The single-source algorithm takes a parameter alpha > 1: the placement's
delay is within ``alpha/(alpha-1)`` of the LP bound while node loads may
reach ``(alpha+1) cap``.  Small alpha protects capacity; large alpha
chases delay.  This example sweeps alpha on a fixed instance and prints
the realized frontier next to the proven bounds — the practical answer to
"which alpha should I deploy with?".

Run:  python examples/capacity_tradeoff_sweep.py
"""

import numpy as np

from repro.analysis import ResultTable
from repro.core import solve_ssqpp, solve_ssqpp_exact
from repro.network import random_geometric_network, uniform_capacities
from repro.quorums import AccessStrategy, majority


def main() -> None:
    rng = np.random.default_rng(11)
    network = uniform_capacities(
        random_geometric_network(10, 0.5, rng=rng, scale=50.0), 0.7
    )
    system = majority(5)
    strategy = AccessStrategy.uniform(system)
    source = network.nodes[0]

    # Ground truth for reference (exponential, fine at this size).
    exact = solve_ssqpp_exact(system, strategy, network, source)
    print(f"true optimal capacity-respecting delay: {exact.objective:.2f} ms")

    table = ResultTable(
        "alpha sweep: realized delay/load vs proven bounds",
        ["alpha", "delay_ms", "delay_bound_ms", "delay_over_opt",
         "load_factor", "load_bound"],
    )
    for alpha in (1.1, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0):
        result = solve_ssqpp(system, strategy, network, source, alpha=alpha)
        table.add_row(
            alpha=alpha,
            delay_ms=result.delay,
            delay_bound_ms=result.delay_bound,
            delay_over_opt=result.delay / exact.objective,
            load_factor=result.max_load_factor,
            load_bound=result.load_factor_bound,
        )
    table.print()

    print(
        "reading the table: as alpha grows the delay guarantee tightens "
        "toward the LP bound while the permitted capacity violation "
        "(alpha + 1) grows; pick the smallest alpha whose delay you can "
        "live with."
    )


if __name__ == "__main__":
    main()
