"""Regenerating Figure 1: the sqrt(n) integrality gap of the LP.

Appendix A of the paper shows the placement LP (9)-(14) cannot bound the
delay without relaxing capacities: on the "broom" graph of Figure 1 —
``k^2`` unit-length nodes, one path of length ``k`` and a thick star —
every integral placement pays delay ``k`` while the LP pays about 3/2.

This example rebuilds the exact graph family, solves the LP for real,
verifies the integral optimum by brute force where feasible, and prints
the gap series — an executable version of the figure.

Run:  python examples/integrality_gap_figure1.py
"""

from repro.analysis import ResultTable, broom_gap_instance, general_metric_gap_instance
from repro.core import solve_ssqpp_exact


def main() -> None:
    table = ResultTable(
        "Figure 1 family: LP gap grows like sqrt(n)",
        ["k", "n=k^2", "lp_value", "integral_opt", "gap", "gap/k"],
    )
    for k in range(2, 8):
        instance = broom_gap_instance(k)
        if k <= 3:  # brute-force certificate where the search is tiny
            exact = solve_ssqpp_exact(
                instance.system, instance.strategy, instance.network, instance.source
            )
            assert abs(exact.objective - instance.integral_optimum) < 1e-9
        table.add_row(
            k=k,
            **{"n=k^2": k * k},
            lp_value=instance.lp_value,
            integral_opt=instance.integral_optimum,
            gap=instance.gap,
            **{"gap/k": instance.gap / k},
        )
    table.print()

    print("and the general-metric star from Claim A.1 (gap approaches n = 8):")
    star = ResultTable(
        "general-metric family",
        ["M", "lp_value", "integral_opt", "gap"],
    )
    for M in (10.0, 100.0, 1000.0):
        instance = general_metric_gap_instance(8, M)
        star.add_row(
            M=M,
            lp_value=instance.lp_value,
            integral_opt=instance.integral_optimum,
            gap=instance.gap,
        )
    star.print()

    print(
        "conclusion (Appendix A): the LP alone cannot certify delay with "
        "hard capacities — which is why Theorem 3.7 relaxes capacities by "
        "alpha + 1."
    )


if __name__ == "__main__":
    main()
