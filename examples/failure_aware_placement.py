"""Fault tolerance vs delay: why capacities matter beyond load.

The paper's related-work section criticizes Lin's delay-optimal solution
for "eliminating the advantages (such as load dispersion and fault
tolerance) of any distributed quorum-based algorithm".  This example
quantifies that criticism: it compares placements of a Majority system
along the co-location spectrum — fully collapsed, capacity-respecting LP
placement, and fully spread — on three axes at once:

* average max-delay (the paper's objective),
* placement resilience (node crashes always survivable), and
* availability under 10% independent node failures.

Run:  python examples/failure_aware_placement.py
"""

import numpy as np

from repro.analysis import (
    ResultTable,
    placement_availability,
    placement_resilience,
)
from repro.core import (
    Placement,
    average_max_delay,
    capacity_violation_factor,
    single_node_placement,
    solve_qpp,
)
from repro.network import random_geometric_network, uniform_capacities
from repro.quorums import AccessStrategy, majority, resilience


def main() -> None:
    rng = np.random.default_rng(13)
    system = majority(5)
    strategy = AccessStrategy.uniform(system)
    print(
        f"logical system: {system} — element-level resilience "
        f"{resilience(system)} (best any placement can preserve)"
    )

    network = uniform_capacities(
        random_geometric_network(9, 0.5, rng=rng, scale=50.0), 0.7
    )

    placements = {}
    placements["collapsed (Lin)"] = single_node_placement(system, network)
    # A small alpha keeps the capacity violation (and hence co-location)
    # low: the placement stays dispersed.
    qpp = solve_qpp(system, strategy, network, alpha=1.2)
    placements["LP rounding (thm 1.2, alpha=1.2)"] = qpp.placement
    # Fully spread: one element per distinct node.
    nodes = list(network.nodes)
    placements["fully spread"] = Placement(
        system, network, {u: nodes[i] for i, u in enumerate(system.universe)}
    )

    table = ResultTable(
        "co-location spectrum: delay vs fault tolerance",
        ["placement", "avg_max_delay_ms", "load_factor", "node_resilience",
         "availability@10%"],
    )
    for name, placement in placements.items():
        table.add_row(
            placement=name,
            avg_max_delay_ms=average_max_delay(placement, strategy),
            load_factor=capacity_violation_factor(placement, strategy),
            node_resilience=placement_resilience(placement),
            **{"availability@10%": placement_availability(placement, 0.1)},
        )
    table.print()

    collapsed = placements["collapsed (Lin)"]
    spread = placements["fully spread"]
    print(
        "the collapsed placement minimizes delay but one crash kills the "
        f"service (resilience {placement_resilience(collapsed)}); spreading "
        f"recovers resilience {placement_resilience(spread)} at "
        f"{average_max_delay(spread, strategy) / average_max_delay(collapsed, strategy):.1f}x "
        "the delay — the dispersion/delay tension the paper's capacity "
        "constraints are designed to manage."
    )


if __name__ == "__main__":
    main()
