"""Tuning a replicated register: read/write quorums + placement + strategy.

A storage service uses the Grid's read/write split (any full row reads;
a row plus a column writes).  Operators know their workload's read
fraction and want to co-optimize three knobs this library exposes:

1. the **placement** of the 9 replicas on the WAN (Theorem 3.7 — valid
   for read/write families because its proof never uses intersection),
2. the **access strategy** re-weighting for the realized placement
   (LP frontier under a load budget), and
3. the **read fraction sensitivity**: how delay and replica load move as
   the workload shifts.

Run:  python examples/read_write_tuning.py
"""

import numpy as np

from repro.analysis import ResultTable
from repro.core import (
    capacity_violation_factor,
    delay_optimal_strategy,
    solve_rw_placement,
)
from repro.core.placement import expected_max_delay
from repro.network import ring_of_clusters_network, uniform_capacities
from repro.quorums import grid_rw


def main() -> None:
    # Three regional clusters of four machines on a WAN ring.
    network = uniform_capacities(
        ring_of_clusters_network(3, 4, local_length=1.0, ring_length=25.0), 1.0
    )
    rw = grid_rw(3)
    print(f"replication scheme: {rw}")

    sweep = ResultTable(
        "read-fraction sweep (placement re-solved per mix)",
        ["read_fraction", "avg_delay_ms", "replica_load_factor"],
    )
    placements = {}
    for rho in (0.1, 0.5, 0.9):
        result = solve_rw_placement(
            rw, network, read_fraction=rho, alpha=2.0,
            candidate_sources=[(c, 0) for c in range(3)],
        )
        placements[rho] = result
        sweep.add_row(
            read_fraction=rho,
            avg_delay_ms=result.average_delay,
            replica_load_factor=capacity_violation_factor(
                result.placement, result.strategy
            ),
        )
    sweep.print()

    # Fix the read-heavy placement and re-weight its strategy.
    chosen = placements[0.9]
    source = chosen.source
    frontier = ResultTable(
        "strategy re-weighting on the read-heavy placement",
        ["load_budget", "delay_ms", "hot_replica_load"],
    )
    for budget in (0.45, 0.6, 0.8, 1.0):
        try:
            point = delay_optimal_strategy(
                chosen.placement, load_budget=budget, source=source
            )
        except Exception:
            continue
        frontier.add_row(
            load_budget=budget,
            delay_ms=point.delay,
            hot_replica_load=point.max_load,
        )
    frontier.print()

    base = expected_max_delay(chosen.placement, chosen.strategy, source)
    print(
        f"baseline delay at source {source}: {base:.2f} ms; the frontier "
        "shows how much latency a hotter hottest-replica buys."
    )


if __name__ == "__main__":
    main()
