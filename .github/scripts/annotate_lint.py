"""Consume ``repro lint --format json`` reports in CI.

Reads the JSON documents produced by the linter (the per-file run and
the ``--whole-program`` run), re-emits every finding as a GitHub
Actions workflow annotation (``::error``) so violations show inline on
pull requests, and exits non-zero when findings exist.

Usage: ``python .github/scripts/annotate_lint.py REPORT.json [...]``
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def annotate(report_path: Path) -> int | None:
    """Emit annotations for one report; finding count, or None on error."""
    try:
        report = json.loads(report_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"::error::cannot read lint report {report_path}: {exc}")
        return None
    findings = report.get("findings", [])
    for finding in findings:
        path = finding.get("path", "")
        line = finding.get("line", 1)
        column = finding.get("column", 1)
        rule = finding.get("rule_id", "R???")
        message = finding.get("message", "").replace("\n", " ")
        print(
            f"::error file={path},line={line},col={column},"
            f"title=repro-lint {rule}::{message}"
        )
    return int(report.get("count", len(findings)))


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print("usage: annotate_lint.py REPORT.json [...]", file=sys.stderr)
        return 2
    total = 0
    for raw in argv[1:]:
        count = annotate(Path(raw))
        if count is None:
            return 2
        total += count
    if total:
        print(f"repro lint reported {total} finding(s)", file=sys.stderr)
        return 1
    print("repro lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
