"""The ``repro profile`` subcommand: span tree + metrics surfacing."""

import json

import pytest

from repro.cli import main
from repro.obs.report import (
    TELEMETRY_SCHEMA_VERSION,
    derived_metrics,
    metrics_table_rows,
    validate_telemetry_document,
)
from repro.obs.trace import read_spans_jsonl


class TestProfileText:
    def test_profile_bench_quick_prints_tree_and_metrics(self, tmp_path, capsys):
        out = tmp_path / "BENCH_3.json"
        code = main(["profile", "bench", "--quick", "--out", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        # The golden surface: a span tree with the solver hierarchy...
        assert "== span tree" in captured
        for name in ("cli", "bench.run", "qpp.sweep", "ssqpp.solve", "lp.solve"):
            assert name in captured
        # ...with visible nesting (>= 3 indent levels)...
        tree = captured.split("== span tree")[1]
        assert any(line.startswith("      ") for line in tree.splitlines())
        # ...and the metrics table with the headline numbers.
        assert "LP solve count" in captured
        assert "metric cache hit rate" in captured
        assert out.exists()  # the wrapped command still did its job

    def test_profile_forwards_wrapped_exit_code(self, tmp_path, capsys):
        out = tmp_path / "x.json"
        code = main(["profile", "place", "grid:3", "lattice:3:3",
                     "--capacity", "2", "--out", str(out)])
        assert code == 0
        assert "placement" in capsys.readouterr().out

    def test_profile_without_command_errors(self, capsys):
        assert main(["profile"]) == 2
        assert "missing command" in capsys.readouterr().err

    def test_profile_cannot_wrap_itself(self, capsys):
        assert main(["profile", "profile", "gap"]) == 2
        assert "cannot wrap itself" in capsys.readouterr().err


class TestProfileJson:
    def test_json_document_is_schema_valid(self, tmp_path, capsys):
        out = tmp_path / "BENCH_3.json"
        code = main(["profile", "--json", "bench", "--quick", "--out", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        document = json.loads(stdout[stdout.index("{"):])
        validate_telemetry_document(document)
        assert document["telemetry_schema_version"] == TELEMETRY_SCHEMA_VERSION
        assert document["exit_code"] == 0
        assert document["max_depth"] >= 3
        assert document["derived"]["lp_solve_count"] > 0
        assert 0 <= document["derived"]["metric_cache_hit_rate"] <= 1

    def test_trace_and_report_outputs_round_trip(self, tmp_path, capsys):
        spans = tmp_path / "spans.jsonl"
        report = tmp_path / "telemetry.json"
        out = tmp_path / "x.json"
        code = main([
            "profile", "--trace-out", str(spans), "--report-out", str(report),
            "gap", "--k", "3",
        ])
        assert code == 0
        roots = read_spans_jsonl(str(spans))
        assert roots and roots[0].name == "cli"
        document = json.loads(report.read_text())
        validate_telemetry_document(document)
        assert document["command"] == ["gap", "--k", "3"]
        captured = capsys.readouterr().out
        assert str(spans) in captured and str(report) in captured


class TestReportHelpers:
    def test_derived_metrics_hit_rate(self):
        derived = derived_metrics(
            {"lp.solve.count": 4, "metric.cache.builds": 1, "metric.cache.hits": 3}
        )
        assert derived["lp_solve_count"] == 4.0
        assert derived["metric_cache_hit_rate"] == pytest.approx(0.75)

    def test_derived_metrics_empty_cache(self):
        assert derived_metrics({})["metric_cache_hit_rate"] == 0.0

    def test_metrics_table_rows_lead_with_headlines(self):
        rows = metrics_table_rows(
            {"lp.solve.count": 2.0, "zero.count": 0.0}, wall_seconds=1.5
        )
        names = [name for name, _ in rows]
        assert names[0] == "LP solve count"
        assert names[1] == "metric cache hit rate"
        assert "wall seconds" in names
        assert "zero.count" not in names  # zero-delta counters are noise
