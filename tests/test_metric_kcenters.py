"""Tests for the greedy k-center candidate selector."""

import pytest

from repro.exceptions import ValidationError
from repro.network import path_network, random_geometric_network, two_cluster_network


class TestKCenters:
    def test_first_center_is_median(self):
        metric = path_network(5).metric()
        assert metric.k_centers(1) == [2]

    def test_two_centers_span_the_path(self):
        metric = path_network(9).metric()
        centers = metric.k_centers(2)
        assert centers[0] == 4  # median
        assert centers[1] in (0, 8)  # farthest endpoint

    def test_centers_cover_both_clusters(self):
        network = two_cluster_network(4, bridge_length=50.0)
        centers = network.metric().k_centers(2)
        sides = {node[0] for node in centers}
        assert sides == {"a", "b"}

    def test_k_larger_than_nodes_truncates(self):
        metric = path_network(3).metric()
        centers = metric.k_centers(10)
        assert len(centers) == 3
        assert len(set(centers)) == 3

    def test_invalid_k(self):
        metric = path_network(3).metric()
        with pytest.raises(ValidationError):
            metric.k_centers(0)

    def test_centers_are_distinct(self, rng):
        metric = random_geometric_network(15, 0.5, rng=rng).metric()
        centers = metric.k_centers(5)
        assert len(set(centers)) == len(centers)

    def test_k_center_objective_two_approximation_shape(self, rng):
        """Greedy k-center: max distance to the chosen centers shrinks
        (weakly) as k grows."""
        metric = random_geometric_network(20, 0.4, rng=rng).metric()
        radii = []
        import numpy as np

        for k in (1, 2, 4, 8):
            centers = metric.k_centers(k)
            indices = [metric.node_index(c) for c in centers]
            radii.append(float(metric.matrix[:, indices].min(axis=1).max()))
        assert radii == sorted(radii, reverse=True)

    def test_qpp_with_kcenter_candidates(self, rng):
        """The intended use: prune the relay sweep with k-centers."""
        from repro.core import solve_qpp
        from repro.network import uniform_capacities
        from repro.quorums import AccessStrategy, majority

        network = uniform_capacities(
            random_geometric_network(10, 0.5, rng=rng), 1.0
        )
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        candidates = network.metric().k_centers(3)
        pruned = solve_qpp(
            system, strategy, network, candidate_sources=candidates
        )
        full = solve_qpp(system, strategy, network)
        # Pruning can lose a little; it must stay within a sane factor.
        assert pruned.average_delay <= 2.0 * full.average_delay + 1e-9
