"""Tests for topology generators, including the Figure 1 broom."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.network import (
    balanced_tree_network,
    broom_network,
    caterpillar_network,
    complete_network,
    cycle_network,
    erdos_renyi_network,
    grid_network,
    path_network,
    proportional_capacities,
    random_capacities,
    random_geometric_network,
    star_network,
    two_cluster_network,
    uniform_capacities,
    waxman_network,
)


class TestStructured:
    def test_path(self):
        net = path_network(5, length=2.0)
        assert net.size == 5
        assert net.edge_count == 4
        assert net.distance(0, 4) == pytest.approx(8.0)

    def test_cycle(self):
        net = cycle_network(6)
        assert net.edge_count == 6
        assert net.distance(0, 3) == pytest.approx(3.0)  # halfway round

    def test_star(self):
        net = star_network(7)
        assert net.distance(1, 2) == pytest.approx(2.0)
        assert net.distance(0, 6) == pytest.approx(1.0)

    def test_complete(self):
        net = complete_network(5, length=3.0)
        assert net.edge_count == 10
        assert net.distance(1, 4) == pytest.approx(3.0)

    def test_grid(self):
        net = grid_network(3, 4)
        assert net.size == 12
        assert net.distance((0, 0), (2, 3)) == pytest.approx(5.0)

    def test_balanced_tree(self):
        net = balanced_tree_network(2, 2)
        assert net.size == 7
        assert net.distance(0, 6) == pytest.approx(2.0)
        assert net.distance(3, 6) == pytest.approx(4.0)

    def test_caterpillar(self):
        net = caterpillar_network(3, 2)
        assert net.size == 3 + 6
        assert net.distance(("l", 0, 0), ("l", 2, 1)) == pytest.approx(4.0)

    def test_two_cluster(self):
        net = two_cluster_network(4, bridge_length=10.0)
        assert net.size == 8
        assert net.distance(("a", 1), ("b", 1)) == pytest.approx(12.0)
        assert net.distance(("a", 1), ("a", 3)) == pytest.approx(1.0)


class TestBroom:
    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_distance_multiset_matches_appendix_a(self, k):
        net = broom_network(k)
        assert net.size == k * k
        distances = sorted(net.metric().distances_from(0))
        expected = [0.0] + [1.0] * (k * k - k) + [float(d) for d in range(2, k + 1)]
        assert distances == pytest.approx(expected)

    def test_minimum_k(self):
        with pytest.raises(ValidationError):
            broom_network(1)


class TestRandomModels:
    def test_erdos_renyi_connected_and_deterministic(self):
        a = erdos_renyi_network(20, 0.1, rng=np.random.default_rng(5))
        b = erdos_renyi_network(20, 0.1, rng=np.random.default_rng(5))
        assert a.is_connected()
        assert a.edges() == b.edges()

    def test_erdos_renyi_length_range(self):
        net = erdos_renyi_network(
            12, 0.5, rng=np.random.default_rng(0), length_range=(2.0, 3.0)
        )
        for _, _, length in net.edges():
            assert 2.0 <= length <= 3.0

    def test_geometric_connected_even_with_tiny_radius(self):
        net = random_geometric_network(15, 0.05, rng=np.random.default_rng(1))
        assert net.is_connected()

    def test_geometric_metric_satisfies_triangle_inequality(self):
        net = random_geometric_network(15, 0.5, rng=np.random.default_rng(2))
        net.metric().verify_triangle_inequality()

    def test_waxman_connected(self):
        net = waxman_network(18, rng=np.random.default_rng(3))
        assert net.is_connected()

    def test_invalid_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            erdos_renyi_network(5, 1.5, rng=rng)
        with pytest.raises(ValidationError):
            erdos_renyi_network(5, 0.5, rng=rng, length_range=(3.0, 2.0))
        with pytest.raises(ValidationError):
            random_geometric_network(5, -0.1, rng=rng)


class TestCapacityPolicies:
    def test_uniform(self):
        net = uniform_capacities(path_network(4), 2.5)
        assert all(net.capacity(v) == 2.5 for v in net.nodes)

    def test_proportional(self):
        net = proportional_capacities(path_network(4), 10.0)
        assert net.total_capacity() == pytest.approx(10.0)

    def test_random_in_range_and_deterministic(self):
        base = path_network(6)
        a = random_capacities(base, rng=np.random.default_rng(9), low=1.0, high=2.0)
        b = random_capacities(base, rng=np.random.default_rng(9), low=1.0, high=2.0)
        for v in base.nodes:
            assert 1.0 <= a.capacity(v) <= 2.0
            assert a.capacity(v) == b.capacity(v)

    def test_random_validation(self):
        with pytest.raises(ValidationError):
            random_capacities(path_network(3), rng=np.random.default_rng(0), low=2.0, high=1.0)
