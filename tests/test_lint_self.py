"""The repository must stay clean against its own linter.

This is the self-check gate promised in ``docs/static_analysis.md``:
``repro lint src`` (and the benchmark/example trees) report zero
findings, so every future PR that violates an invariant fails here and
in CI before review.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import Finding, lint_paths, load_config

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def _run(
    paths: list[Path],
    *,
    whole_program: bool = False,
    dataflow: bool = False,
    effects: bool = False,
    cost: bool = False,
    errors: bool = False,
) -> list[Finding]:
    config = load_config(search_from=REPO_ROOT)
    return lint_paths(
        paths,
        config,
        whole_program=whole_program,
        dataflow=dataflow,
        effects=effects,
        cost=cost,
        errors=errors,
    )


def _report(findings: list[Finding]) -> str:
    return "\n".join(f.render() for f in findings)


@pytest.mark.skipif(not SRC.is_dir(), reason="source tree not present")
def test_src_is_lint_clean():
    findings = _run([SRC])
    assert not findings, f"repro lint src must stay clean:\n{_report(findings)}"


@pytest.mark.skipif(not SRC.is_dir(), reason="source tree not present")
def test_src_is_whole_program_clean():
    """The graph rules (R100-R104) must also hold over the whole tree."""
    findings = _run([SRC], whole_program=True)
    assert not findings, (
        f"repro lint src --whole-program must stay clean:\n{_report(findings)}"
    )


@pytest.mark.skipif(not SRC.is_dir(), reason="source tree not present")
def test_src_is_dataflow_clean():
    """The dataflow tier (R200-R204) must also hold over the whole tree."""
    findings = _run([SRC], whole_program=True, dataflow=True)
    assert not findings, (
        f"repro lint src --whole-program --dataflow must stay clean:\n"
        f"{_report(findings)}"
    )


@pytest.mark.skipif(not SRC.is_dir(), reason="source tree not present")
def test_src_is_effects_and_cost_clean():
    """The effect (R400s) and cost (R500s) tiers must also hold over src.

    Every solver entry point carries a ``@cost`` declaration that covers
    its inferred bound, no hot path allocates superlinearly without
    declaring it, and no ``scale="large"`` function reaches a dense
    all-pairs metric build.
    """
    findings = _run([SRC], effects=True, cost=True)
    assert not findings, (
        f"repro lint src --effects --cost must stay clean:\n{_report(findings)}"
    )


@pytest.mark.skipif(not SRC.is_dir(), reason="source tree not present")
def test_src_is_errors_clean():
    """The error tier (R600-R604) must also hold over src.

    Every public solver entry point carries a ``@raises`` declaration
    covering its inferred escape set, no resource leaks on exceptional
    paths, no broad handlers on hot paths, and nothing but ReproError
    subclasses escape the entry points.
    """
    findings = _run([SRC], errors=True)
    assert not findings, (
        f"repro lint src --errors must stay clean:\n{_report(findings)}"
    )


@pytest.mark.skipif(not SRC.is_dir(), reason="source tree not present")
def test_whole_program_run_parses_each_file_exactly_once():
    """One run = one parse per file, across all five tiers at once.

    ``--whole-program --dataflow --effects --cost --errors`` share one
    ``ProgramContext``; adding a tier must never re-parse the tree
    (including the R104 usage-root scan).
    """
    from repro.lint import ParseCache

    cache = ParseCache()
    config = load_config(search_from=REPO_ROOT)
    lint_paths(
        [SRC],
        config,
        whole_program=True,
        dataflow=True,
        effects=True,
        cost=True,
        errors=True,
        cache=cache,
    )
    assert cache.parse_counts, "expected the run to parse files"
    over_parsed = {
        str(path): count for path, count in cache.parse_counts.items() if count != 1
    }
    assert not over_parsed, f"files parsed more than once: {over_parsed}"


@pytest.mark.skipif(
    not (REPO_ROOT / "benchmarks").is_dir() or not (REPO_ROOT / "examples").is_dir(),
    reason="benchmarks/examples not present",
)
def test_benchmarks_and_examples_are_lint_clean():
    findings = _run([REPO_ROOT / "benchmarks", REPO_ROOT / "examples"])
    assert not findings, f"auxiliary trees must stay clean:\n{_report(findings)}"


class TestInlineSuppressions:
    """The suppression directives behave exactly as documented."""

    @staticmethod
    def _lint(source: str) -> list[Finding]:
        from dataclasses import replace

        from repro.lint import LintConfig, lint_source

        config = replace(LintConfig(), select=frozenset({"R003", "R006"}))
        return lint_source(source, module="repro.fake", config=config)

    def test_one_directive_silences_multiple_codes_on_a_line(self):
        offending = '"""m."""\n\n\ndef helper(xs=[]): print(xs)\n'
        assert {f.rule_id for f in self._lint(offending)} == {"R003", "R006"}
        suppressed = offending.replace(
            "print(xs)", "print(xs)  # repro-lint: disable=R003,R006"
        )
        assert not self._lint(suppressed)

    def test_trailing_comment_text_after_the_codes_is_ignored(self):
        source = '"""m."""\n\nprint("x")  # repro-lint: disable=R006 -- CLI helper\n'
        assert not self._lint(source)

    def test_unknown_code_in_directive_warns_instead_of_silencing(self):
        source = '"""m."""\n\nx = 1  # repro-lint: disable=R999\n'
        findings = self._lint(source)
        assert [f.rule_id for f in findings] == ["E002"]
        assert "R999" in findings[0].message
        assert "silences nothing" in findings[0].message

    def test_known_codes_do_not_warn(self):
        source = '"""m."""\n\nprint("x")  # repro-lint: disable=R006\n'
        assert not self._lint(source)


def test_every_rule_is_exercised_by_src_conventions():
    """The linter engine sees the whole tree (guard against silent no-op).

    If path discovery broke (e.g. an over-broad exclude), the self-check
    above would pass vacuously; assert we actually visited the library.
    """
    from repro.lint.engine import iter_python_files

    config = load_config(search_from=REPO_ROOT)
    files = list(iter_python_files([SRC], config))
    assert len(files) > 50, "expected to lint the full src tree"
    assert not any("egg-info" in str(f) for f in files)
