"""Tests for §4.2: the Majority placement and equation (19)."""

from math import comb

import numpy as np
import pytest

from repro.core import (
    Placement,
    expected_max_delay,
    is_capacity_respecting,
    majority_delay_formula,
    optimal_majority_placement,
)
from repro.exceptions import ValidationError
from repro.network import path_network, random_geometric_network, uniform_capacities
from repro.quorums import AccessStrategy, threshold


# paper: Thm 1.3, eq. (19)
class TestFormula:
    def test_formula_validation(self):
        with pytest.raises(ValidationError, match="2t > n"):
            majority_delay_formula(6, 3, [1.0] * 6)
        with pytest.raises(ValidationError, match="distances"):
            majority_delay_formula(5, 3, [1.0] * 4)

    def test_formula_by_hand_n3_t2(self):
        """n=3, t=2, distances 0, 1, 2 (taus: 2, 1, 0).
        Quorums: C(3,2)=3; coefficient of tau_1 is C(2,1)=2, of tau_2 is
        C(1,1)=1 => (2*2 + 1*1)/3 = 5/3."""
        assert majority_delay_formula(3, 2, [0.0, 1.0, 2.0]) == pytest.approx(5 / 3)

    def test_formula_equals_direct_evaluation(self, rng):
        """Equation (19) must match the brute-force expectation for every
        random distance multiset."""
        n, t = 6, 4
        for _ in range(10):
            distances = sorted(rng.uniform(0, 10, n), reverse=True)
            expected = 0.0
            from itertools import combinations

            for quorum in combinations(range(n), t):
                expected += max(distances[i] for i in quorum)
            expected /= comb(n, t)
            assert majority_delay_formula(n, t, list(distances)) == pytest.approx(expected)

    def test_formula_zero_distances(self):
        assert majority_delay_formula(5, 3, [0.0] * 5) == 0.0


class TestPlacementInvariance:
    def test_any_permutation_has_same_delay(self, rng):
        """§4.2's claim: the delay depends only on the occupied slots."""
        n, t = 5, 3
        system = threshold(n, t)
        strategy = AccessStrategy.uniform(system)
        network = uniform_capacities(random_geometric_network(8, 0.55, rng=rng), 1.0)
        source = network.nodes[0]
        hosts = list(network.nodes[:n])
        reference = None
        for _ in range(10):
            shuffled = list(hosts)
            rng.shuffle(shuffled)
            placement = Placement(
                system, network, dict(zip(system.universe, shuffled))
            )
            delay = expected_max_delay(placement, strategy, source)
            if reference is None:
                reference = delay
            assert delay == pytest.approx(reference)


class TestOptimalMajorityPlacement:
    def test_formula_matches_realized_delay(self, rng):
        network = uniform_capacities(random_geometric_network(9, 0.5, rng=rng), 1.0)
        result = optimal_majority_placement(network, network.nodes[0], 5)
        assert result.delay == pytest.approx(result.formula_delay)

    def test_respects_capacities(self, rng):
        network = uniform_capacities(random_geometric_network(9, 0.5, rng=rng), 1.0)
        result = optimal_majority_placement(network, network.nodes[0], 7)
        assert is_capacity_respecting(result.placement, result.strategy)

    def test_custom_threshold(self, rng):
        network = uniform_capacities(random_geometric_network(8, 0.55, rng=rng), 1.0)
        result = optimal_majority_placement(network, network.nodes[0], 5, t=4)
        assert result.placement.system.min_quorum_size() == 4

    def test_optimal_on_path_uses_closest_nodes(self):
        """On a path with the source at one end, the n closest slots are
        nodes 0..n-1 and the delay follows formula (19) on 0..n-1."""
        network = path_network(8).with_capacities(1.0)
        n, t = 5, 3
        result = optimal_majority_placement(network, 0, n, t=t)
        used = sorted(set(result.placement.as_dict().values()))
        assert used == [0, 1, 2, 3, 4]
        expected = majority_delay_formula(n, t, [0.0, 1.0, 2.0, 3.0, 4.0])
        assert result.delay == pytest.approx(expected)

    def test_beats_exhaustive_alternatives_small(self):
        """On a tiny instance, no capacity-respecting placement has
        smaller delay (cross-check of the optimality argument)."""
        from repro.core import solve_ssqpp_exact

        network = path_network(6).with_capacities(1.0)
        n, t = 4, 3
        result = optimal_majority_placement(network, 0, n, t=t)
        exact = solve_ssqpp_exact(
            result.placement.system, result.strategy, network, 0
        )
        assert result.delay == pytest.approx(exact.objective)
