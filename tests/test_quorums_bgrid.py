"""Tests for the B-Grid construction (Naor & Wool 1998)."""

import pytest

from repro.exceptions import ValidationError
from repro.quorums import AccessStrategy, bgrid, optimal_strategy


class TestStructure:
    def test_universe_size(self):
        system = bgrid(2, 2, 2)
        assert system.universe_size == 2 * 2 * 2
        assert all(len(element) == 3 for element in system.universe)

    def test_quorum_size(self):
        """A quorum has one mini-column per band (h*r elements, minus
        overlap with the representatives) plus d representatives."""
        d, h, r = 2, 2, 2
        system = bgrid(d, h, r)
        # Sizes range: cover h*r elements; representatives d, of which at
        # least one lies inside the chosen band's cover mini-column when
        # columns collide.
        assert system.min_quorum_size() >= h * r
        assert system.max_quorum_size() <= h * r + d

    def test_intersection_verified_at_construction(self):
        # The constructor runs check=True; explicit re-check too.
        for params in [(2, 2, 2), (3, 2, 1), (2, 3, 1)]:
            bgrid(*params).verify_intersection()

    def test_single_column_degenerates_to_one_quorum(self):
        system = bgrid(1, 2, 2)
        assert len(system) == 1

    def test_enumeration_guard(self):
        with pytest.raises(ValidationError, match="enumerate"):
            bgrid(6, 6, 6)

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            bgrid(0, 2, 2)


class TestLoad:
    def test_uniform_strategy_is_valid(self):
        system = bgrid(2, 2, 2)
        strategy = AccessStrategy.uniform(system)
        assert strategy.max_load() <= 1.0

    def test_optimal_load_reasonable(self):
        """B-Grid load should be well below 1 (it is O(1/sqrt(n)))
        even at toy sizes."""
        system = bgrid(2, 2, 2)
        result = optimal_strategy(system)
        assert result.load < 0.9
        assert result.load >= system.min_quorum_size() / system.universe_size - 1e-9
