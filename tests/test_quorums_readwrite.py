"""Tests for read/write quorum systems."""

import pytest

from repro.exceptions import IntersectionError, ValidationError
from repro.quorums import (
    ReadWriteQuorumSystem,
    grid_rw,
    read_one_write_all,
)


class TestConstruction:
    def test_rowa_structure(self):
        rw = read_one_write_all(4)
        assert len(rw.read_quorums) == 4
        assert len(rw.write_quorums) == 1
        assert rw.universe_size == 4
        assert all(len(r) == 1 for r in rw.read_quorums)

    def test_grid_rw_structure(self):
        rw = grid_rw(3)
        assert len(rw.read_quorums) == 3
        assert len(rw.write_quorums) == 9
        # Reads are rows: pairwise disjoint.
        rows = rw.read_quorums
        assert rows[0].isdisjoint(rows[1])

    def test_rw_intersection_enforced(self):
        with pytest.raises(IntersectionError):
            ReadWriteQuorumSystem([{1}], [{2, 3}])

    def test_ww_intersection_enforced(self):
        with pytest.raises(IntersectionError):
            ReadWriteQuorumSystem([{1, 2, 3, 4}], [{1, 2}, {3, 4}])

    def test_reads_may_be_disjoint(self):
        rw = ReadWriteQuorumSystem([{1}, {2}], [{1, 2}])
        assert len(rw.read_quorums) == 2

    def test_empty_families_rejected(self):
        with pytest.raises(ValidationError):
            ReadWriteQuorumSystem([], [{1}])
        with pytest.raises(ValidationError):
            ReadWriteQuorumSystem([{1}], [])

    def test_duplicates_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            ReadWriteQuorumSystem([{1}, {1}], [{1}])


class TestDerived:
    def test_write_system_is_valid_quorum_system(self):
        rw = grid_rw(3)
        writes = rw.write_system()
        writes.verify_intersection()
        assert len(writes) == 9

    def test_combined_family_deduplicates(self):
        # ROWA(1): the read {0} equals the write {0}.
        rw = read_one_write_all(1)
        assert len(rw.combined_family()) == 1


class TestWorkloadWeights:
    def test_pure_writes(self):
        rw = grid_rw(2)
        system, strategy = rw.workload_weights(0.0)
        # All probability mass on write quorums.
        for index, quorum in enumerate(system.quorums):
            if quorum in rw.read_quorums and quorum not in rw.write_quorums:
                assert strategy.probability(index) == 0.0

    def test_pure_reads(self):
        rw = grid_rw(2)
        system, strategy = rw.workload_weights(1.0)
        read_mass = sum(
            strategy.probability(i)
            for i, quorum in enumerate(system.quorums)
            if quorum in rw.read_quorums
        )
        assert read_mass == pytest.approx(1.0)

    def test_mixture_mass_split(self):
        rw = grid_rw(3)
        rho = 0.75
        system, strategy = rw.workload_weights(rho)
        read_mass = sum(
            strategy.probability(i)
            for i, quorum in enumerate(system.quorums)
            if quorum in set(rw.read_quorums)
        )
        assert read_mass == pytest.approx(rho)

    def test_read_load_lower_than_write_load(self):
        """At high read fractions, the Grid's row/column split should
        load elements less than the write-only workload."""
        rw = grid_rw(3)
        _, read_heavy = rw.workload_weights(0.9)
        _, write_only = rw.workload_weights(0.0)
        assert read_heavy.expected_quorum_size() < write_only.expected_quorum_size()

    def test_custom_strategies_validated(self):
        rw = grid_rw(2)
        with pytest.raises(ValidationError, match="lengths"):
            rw.workload_weights(0.5, read_strategy=[1.0])

    def test_shared_quorum_weight_merged(self):
        rw = ReadWriteQuorumSystem([{1, 2}], [{1, 2}, {2, 3}])
        system, strategy = rw.workload_weights(0.5)
        index = list(system.quorums).index(frozenset({1, 2}))
        # 0.5 (the only read) + 0.5 * 0.5 (one of two writes) = 0.75.
        assert strategy.probability(index) == pytest.approx(0.75)
