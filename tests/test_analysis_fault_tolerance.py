"""Tests for placement-aware fault tolerance."""

import numpy as np
import pytest

from repro.analysis import (
    placement_availability,
    placement_availability_monte_carlo,
    placement_resilience,
    survivors,
)
from repro.core import Placement, single_node_placement
from repro.exceptions import ValidationError
from repro.network import path_network, random_geometric_network, uniform_capacities
from repro.quorums import AccessStrategy, majority, resilience


@pytest.fixture
def spread_and_collapsed():
    """Majority(3) placed injectively vs collapsed onto one node."""
    system = majority(3)
    network = path_network(4)
    spread = Placement(system, network, {0: 0, 1: 1, 2: 2})
    collapsed = single_node_placement(system, network, node=0)
    return system, network, spread, collapsed


class TestSurvivors:
    def test_no_failures_keeps_everything(self, spread_and_collapsed):
        system, _, spread, _ = spread_and_collapsed
        assert survivors(spread, set()) == list(range(len(system)))

    def test_single_failure_kills_touching_quorums(self, spread_and_collapsed):
        system, _, spread, _ = spread_and_collapsed
        alive = survivors(spread, {0})
        # Only the quorum avoiding element 0 (i.e. {1, 2}) survives.
        surviving_quorums = [system.quorums[i] for i in alive]
        assert surviving_quorums == [frozenset({1, 2})]

    def test_collapsed_placement_dies_with_its_host(self, spread_and_collapsed):
        _, _, _, collapsed = spread_and_collapsed
        assert survivors(collapsed, {0}) == []

    def test_unknown_node_rejected(self, spread_and_collapsed):
        _, _, spread, _ = spread_and_collapsed
        with pytest.raises(ValidationError):
            survivors(spread, {99})


class TestResilience:
    def test_injective_placement_preserves_logical_resilience(self, spread_and_collapsed):
        system, _, spread, _ = spread_and_collapsed
        assert placement_resilience(spread) == resilience(system)

    def test_collapsed_placement_has_zero_resilience(self, spread_and_collapsed):
        _, _, _, collapsed = spread_and_collapsed
        assert placement_resilience(collapsed) == 0

    def test_partial_colocation_reduces_resilience(self):
        system = majority(5)  # logical resilience 2
        network = path_network(3)
        placement = Placement(system, network, {0: 0, 1: 0, 2: 1, 3: 1, 4: 2})
        # Two node crashes (0 and 1) kill four elements; no quorum of 3
        # survives on the single remaining element.
        assert placement_resilience(placement) < resilience(system)

    def test_large_network_guarded(self, rng):
        system = majority(3)
        network = random_geometric_network(25, 0.4, rng=rng)
        placement = Placement(
            system, network, {u: network.nodes[u] for u in system.universe}
        )
        with pytest.raises(ValidationError, match="at most"):
            placement_resilience(placement)


class TestAvailability:
    def test_extremes(self, spread_and_collapsed):
        _, _, spread, _ = spread_and_collapsed
        assert placement_availability(spread, 0.0) == pytest.approx(1.0)
        assert placement_availability(spread, 1.0) == pytest.approx(0.0)

    def test_injective_matches_element_level_closed_form(self, spread_and_collapsed):
        """Injective placement: node failures = element failures, so the
        availability equals P(at least 2 of 3 alive)."""
        _, _, spread, _ = spread_and_collapsed
        p = 0.2
        alive = 1 - p
        expected = alive**3 + 3 * alive**2 * p
        assert placement_availability(spread, p) == pytest.approx(expected)

    def test_collapsed_availability_is_single_node_survival(self, spread_and_collapsed):
        _, _, _, collapsed = spread_and_collapsed
        p = 0.3
        assert placement_availability(collapsed, p) == pytest.approx(1 - p)

    def test_colocation_hurts_availability(self, spread_and_collapsed):
        _, _, spread, collapsed = spread_and_collapsed
        p = 0.2
        assert placement_availability(collapsed, p) < placement_availability(spread, p)

    def test_monte_carlo_matches_exact(self, spread_and_collapsed):
        _, _, spread, _ = spread_and_collapsed
        p = 0.25
        exact = placement_availability(spread, p)
        estimate = placement_availability_monte_carlo(
            spread, p, samples=20_000, rng=np.random.default_rng(3)
        )
        assert estimate == pytest.approx(exact, abs=0.02)

    def test_monte_carlo_deterministic(self, spread_and_collapsed):
        _, _, spread, _ = spread_and_collapsed
        a = placement_availability_monte_carlo(
            spread, 0.2, samples=500, rng=np.random.default_rng(5)
        )
        b = placement_availability_monte_carlo(
            spread, 0.2, samples=500, rng=np.random.default_rng(5)
        )
        assert a == b
