"""The certificate-gated process-parallelism runtime.

Covers certificate loading (dict / path / environment / malformed),
qualified-name resolution through ``functools.partial`` chains, the
:func:`parallel_map` gate in all three outcomes (certified fan-out,
refusal, serial degradation), and the fork-awareness of the default
metrics registry (a pooled child must not inherit the parent's
counters).
"""

from __future__ import annotations

import json
import multiprocessing
from functools import partial

import pytest

from repro.exceptions import ParallelSafetyError, ValidationError
from repro.obs.metrics import counter, default_registry
from repro.parallel import (
    CERTIFICATE_ENV_VAR,
    certificate_entry,
    load_certificate,
    parallel_map,
    resolve_qualified_name,
)

FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()


def double(x):
    """Module-level, hence picklable and certifiable by name."""
    return 2 * x


def scaled(x, scale):
    return x * scale


def read_fork_counter(_):
    """Pool probe: the child's view of the parent's counter."""
    return counter("parallel.fork_probe").value


def certificate_for(*functions, parallel_safe=True):
    return {
        "kind": "repro-parallel-safety-certificate",
        "version": 1,
        "policy": {"parallel_safe_effects": ["reads-global", "writes-metrics"]},
        "functions": {
            f"{fn.__module__}.{fn.__qualname__}": {
                "effects": ["reads-global"] if parallel_safe else ["writes-global"],
                "parallel_safe": parallel_safe,
            }
            for fn in functions
        },
        "globals": {"variables": []},
    }


# -- load_certificate ----------------------------------------------------------------


def test_load_certificate_accepts_mapping_and_path(tmp_path):
    document = certificate_for(double)
    assert load_certificate(document)["functions"] == document["functions"]
    path = tmp_path / "cert.json"
    path.write_text(json.dumps(document), encoding="utf-8")
    assert load_certificate(path)["kind"] == document["kind"]
    assert load_certificate(str(path))["version"] == 1


def test_load_certificate_consults_environment(tmp_path, monkeypatch):
    monkeypatch.delenv(CERTIFICATE_ENV_VAR, raising=False)
    assert load_certificate(None) is None
    path = tmp_path / "cert.json"
    path.write_text(json.dumps(certificate_for(double)), encoding="utf-8")
    monkeypatch.setenv(CERTIFICATE_ENV_VAR, str(path))
    assert load_certificate(None) is not None


def test_load_certificate_rejects_malformed(tmp_path):
    missing = tmp_path / "absent.json"
    with pytest.raises(ValidationError, match="cannot read"):
        load_certificate(missing)

    bad_json = tmp_path / "bad.json"
    bad_json.write_text("{not json", encoding="utf-8")
    with pytest.raises(ValidationError, match="not valid JSON"):
        load_certificate(bad_json)

    array = tmp_path / "array.json"
    array.write_text("[1, 2]", encoding="utf-8")
    with pytest.raises(ValidationError, match="JSON object"):
        load_certificate(array)

    with pytest.raises(ValidationError, match="kind"):
        load_certificate({"kind": "something-else", "functions": {}})

    with pytest.raises(ValidationError, match="functions"):
        load_certificate({"kind": "repro-parallel-safety-certificate"})


def test_malformed_env_certificate_is_an_error_not_absence(tmp_path, monkeypatch):
    """A broken $REPRO_PARALLEL_CERTIFICATE must not read as 'no certificate'."""
    bad = tmp_path / "bad.json"
    bad.write_text("nope", encoding="utf-8")
    monkeypatch.setenv(CERTIFICATE_ENV_VAR, str(bad))
    with pytest.raises(ValidationError):
        parallel_map(double, [1], on_uncertified="serial")


# -- name resolution -----------------------------------------------------------------


def test_resolve_qualified_name_module_level_and_partial_chain():
    expected = f"{__name__}.double"
    assert resolve_qualified_name(double) == (expected, "")
    bound = partial(partial(scaled, scale=3))
    assert resolve_qualified_name(bound) == (f"{__name__}.scaled", "")


def test_resolve_qualified_name_rejects_anonymous_callables():
    qualified, reason = resolve_qualified_name(lambda x: x)
    assert qualified is None and "lambda" in reason

    def local(x):
        return x

    qualified, reason = resolve_qualified_name(local)
    assert qualified is None and "module-level" in reason


def test_certificate_entry_lookup():
    document = certificate_for(double)
    entry = certificate_entry(document, double)
    assert entry is not None and entry["parallel_safe"] is True
    assert certificate_entry(document, partial(double)) == entry
    assert certificate_entry(document, scaled) is None
    assert certificate_entry(document, lambda x: x) is None


# -- parallel_map --------------------------------------------------------------------


def test_parallel_map_validates_its_own_arguments():
    with pytest.raises(ValidationError, match="on_uncertified"):
        parallel_map(double, [1], on_uncertified="ignore")
    with pytest.raises(ValidationError, match="max_workers"):
        parallel_map(double, [1], certificate=certificate_for(double), max_workers=0)


def test_parallel_map_refuses_without_certificate(monkeypatch):
    monkeypatch.delenv(CERTIFICATE_ENV_VAR, raising=False)
    with pytest.raises(ParallelSafetyError, match="no parallel-safety certificate"):
        parallel_map(double, [1, 2])


def test_parallel_map_refuses_uncovered_and_unsafe_functions():
    with pytest.raises(ParallelSafetyError, match="not covered"):
        parallel_map(scaled, [1], certificate=certificate_for(double))
    unsafe = certificate_for(double, parallel_safe=False)
    with pytest.raises(ParallelSafetyError, match="not parallel-safe"):
        parallel_map(double, [1], certificate=unsafe)
    with pytest.raises(ParallelSafetyError, match="lambda"):
        parallel_map(lambda x: x, [1], certificate=certificate_for(double))


def test_parallel_map_serial_fallback_warns_and_preserves_results():
    with pytest.warns(UserWarning, match="falling back to serial"):
        results = parallel_map(
            lambda x: x + 10, [1, 2, 3], on_uncertified="serial"
        )
    assert results == [11, 12, 13]


@pytest.mark.skipif(not FORK_AVAILABLE, reason="needs fork start method")
def test_parallel_map_certified_fan_out_matches_serial():
    items = list(range(8))
    results = parallel_map(
        double, items, certificate=certificate_for(double), max_workers=2
    )
    assert results == [double(x) for x in items]


@pytest.mark.skipif(not FORK_AVAILABLE, reason="needs fork start method")
def test_parallel_map_certified_partial_fan_out():
    bound = partial(scaled, scale=5)
    results = parallel_map(
        bound, [1, 2, 3], certificate=certificate_for(scaled), max_workers=2
    )
    assert results == [5, 10, 15]


def test_parallel_map_empty_iterable_short_circuits():
    assert parallel_map(double, [], certificate=certificate_for(double)) == []


# -- fork-aware default metrics registry (satellite: registry hygiene) ---------------


@pytest.mark.skipif(not FORK_AVAILABLE, reason="needs fork start method")
def test_forked_children_start_with_a_reset_default_registry():
    parent = counter("parallel.fork_probe")
    parent.inc(5.0)
    assert parent.value == 5.0
    child_views = parallel_map(
        read_fork_counter,
        [0, 1],
        certificate=certificate_for(read_fork_counter),
        max_workers=2,
    )
    # os.register_at_fork zeroes the default registry in each child, so
    # the children must not observe the parent's accumulated count...
    assert child_views == [0.0, 0.0]
    # ...and the parent's registry is untouched by the fan-out.
    assert parent.value == 5.0
    assert default_registry().counter_values()["parallel.fork_probe"] == 5.0
