"""Tests for the greedy GAP baseline."""

import numpy as np
import pytest

from repro.exceptions import InfeasibleError
from repro.gap import GAPInstance, solve_gap_exact, solve_gap_greedy


def make_instance(costs, loads, capacities):
    costs = np.asarray(costs, dtype=float)
    return GAPInstance(
        tuple(range(costs.shape[1])),
        tuple(f"m{i}" for i in range(costs.shape[0])),
        costs,
        np.asarray(loads, dtype=float),
        np.asarray(capacities, dtype=float),
    )


def test_greedy_respects_capacities(rng):
    for _ in range(10):
        inst = make_instance(
            rng.uniform(1, 10, (3, 6)),
            rng.uniform(0.1, 0.6, (3, 6)),
            rng.uniform(1.0, 2.0, 3),
        )
        try:
            result = solve_gap_greedy(inst)
        except InfeasibleError:
            continue
        for i, machine in enumerate(inst.machines):
            assert result.machine_loads[machine] <= inst.capacities[i] + 1e-9


def test_greedy_covers_all_jobs(rng):
    inst = make_instance(
        rng.uniform(1, 5, (4, 5)),
        rng.uniform(0.1, 0.4, (4, 5)),
        np.full(4, 2.0),
    )
    result = solve_gap_greedy(inst)
    assert set(result.assignment) == set(inst.jobs)
    assert result.cost == pytest.approx(inst.assignment_cost(result.assignment))


def test_greedy_never_beats_exact(rng):
    compared = 0
    for _ in range(10):
        inst = make_instance(
            rng.uniform(1, 10, (3, 4)),
            rng.uniform(0.2, 0.8, (3, 4)),
            rng.uniform(1.0, 2.0, 3),
        )
        try:
            greedy = solve_gap_greedy(inst)
            exact = solve_gap_exact(inst)
        except InfeasibleError:
            continue
        assert exact.cost <= greedy.cost + 1e-9
        compared += 1
    assert compared >= 5


def test_greedy_can_fail_on_feasible_instances():
    """The classic greedy trap: assigning the big job to its cheapest
    machine blocks the only machine that fits the remaining jobs."""
    inst = make_instance(
        # machine 0 is cheap for everyone but small.
        [[1.0, 1.0], [10.0, 10.0]],
        [[0.6, 0.6], [0.6, 0.6]],
        [0.6, 0.6],
    )
    # Feasible: one job per machine.  Greedy may or may not find it; the
    # exact solver must.
    exact = solve_gap_exact(inst)
    assert exact.cost == pytest.approx(11.0)


def test_greedy_stuck_raises():
    inst = make_instance([[1.0, 1.0]], [[0.6, 0.6]], [0.6])
    with pytest.raises(InfeasibleError, match="stuck"):
        solve_gap_greedy(inst)
