"""Tests for the workload suites and the access simulator."""

import numpy as np
import pytest

from repro.core import is_capacity_respecting, random_placement
from repro.experiments import (
    feasible_uniform_capacity,
    simulate_accesses,
    small_suite,
    standard_suite,
)
from repro.network import path_network
from repro.quorums import AccessStrategy, majority


class TestSuites:
    def test_small_suite_is_deterministic(self):
        a = small_suite(7)
        b = small_suite(7)
        assert [i.name for i in a] == [j.name for j in b]
        assert all(
            x.network.edges() == y.network.edges() for x, y in zip(a, b)
        )

    def test_small_suite_sized_for_brute_force(self):
        for instance in small_suite(0):
            states = instance.network.size ** instance.system.universe_size
            assert states <= 10**7

    def test_standard_suite_covers_families(self):
        names = {i.name for i in standard_suite(0)}
        assert any("grid(3)" in n for n in names)
        assert any("threshold" in n for n in names)
        assert any("wall" in n for n in names)
        assert any("two_cluster" in n for n in names)

    def test_instances_are_feasible_by_first_fit(self, rng):
        for instance in small_suite(2):
            placement = random_placement(
                instance.system, instance.strategy, instance.network, rng=rng
            )
            assert is_capacity_respecting(placement, instance.strategy)

    def test_feasible_uniform_capacity_fits_each_element(self):
        system = majority(5)
        strategy = AccessStrategy.uniform(system)
        network = path_network(4)
        capped = feasible_uniform_capacity(system, strategy, network, slack=1.2)
        max_load = max(strategy.load(u) for u in system.universe)
        assert all(capped.capacity(v) >= max_load for v in capped.nodes)
        assert capped.total_capacity() >= 1.2 * strategy.total_load() - 1e-9


class TestSimulation:
    def test_simulation_converges_to_analytic(self, rng, small_network, majority5):
        system, strategy = majority5
        placement = random_placement(system, strategy, small_network, rng=rng)
        result = simulate_accesses(
            placement, strategy, rng=rng, accesses_per_client=2000
        )
        assert result.max_delay_error < 0.05
        assert result.measured_total_delay == pytest.approx(
            result.analytic_total_delay, rel=0.05
        )

    def test_simulated_loads_match_strategy_loads(self, rng, small_network, majority5):
        system, strategy = majority5
        placement = random_placement(system, strategy, small_network, rng=rng)
        result = simulate_accesses(
            placement, strategy, rng=rng, accesses_per_client=2000
        )
        for node in small_network.nodes:
            assert result.measured_node_loads[node] == pytest.approx(
                result.analytic_node_loads[node], abs=0.05
            )

    def test_simulation_deterministic_given_seed(self, small_network, majority5):
        system, strategy = majority5
        placement = random_placement(
            system, strategy, small_network, rng=np.random.default_rng(1)
        )
        a = simulate_accesses(
            placement, strategy, rng=np.random.default_rng(2), accesses_per_client=100
        )
        b = simulate_accesses(
            placement, strategy, rng=np.random.default_rng(2), accesses_per_client=100
        )
        assert a.measured_max_delay == b.measured_max_delay

    def test_rates_scale_client_volumes(self, rng, small_network, majority5):
        system, strategy = majority5
        placement = random_placement(system, strategy, small_network, rng=rng)
        hot = small_network.nodes[0]
        result = simulate_accesses(
            placement,
            strategy,
            rng=rng,
            accesses_per_client=100,
            rates={hot: 1.0},  # all other clients rate 0
        )
        assert result.accesses == 100

    def test_all_zero_rates_rejected(self, rng, small_network, majority5):
        system, strategy = majority5
        placement = random_placement(system, strategy, small_network, rng=rng)
        with pytest.raises(ValueError):
            simulate_accesses(
                placement,
                strategy,
                rng=rng,
                rates={v: 0.0 for v in small_network.nodes},
            )
