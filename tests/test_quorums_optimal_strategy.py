"""Tests for the Naor-Wool load-optimal strategy LP."""

import math

import pytest

from repro.quorums import (
    AccessStrategy,
    grid,
    majority,
    optimal_strategy,
    projective_plane,
    singleton,
    star,
    system_load,
    threshold,
    wheel,
)


def test_singleton_load_is_one():
    assert system_load(singleton()) == pytest.approx(1.0)


def test_star_load_is_one():
    # Every quorum contains the hub, so no strategy beats load 1.
    assert system_load(star(6)) == pytest.approx(1.0)


def test_uniform_is_optimal_for_grid():
    system = grid(3)
    result = optimal_strategy(system)
    uniform = AccessStrategy.uniform(system)
    assert result.load == pytest.approx(uniform.max_load(), abs=1e-8)


def test_uniform_is_optimal_for_majority():
    system = majority(5)
    result = optimal_strategy(system)
    assert result.load == pytest.approx(3 / 5, abs=1e-8)


def test_threshold_load_is_t_over_n():
    n, t = 7, 5
    assert system_load(threshold(n, t)) == pytest.approx(t / n, abs=1e-8)


def test_fpp_matches_naor_wool_optimum():
    q = 3
    n = q * q + q + 1
    assert system_load(projective_plane(q)) == pytest.approx((q + 1) / n, abs=1e-8)


def test_wheel_optimal_beats_uniform():
    system = wheel(7)
    uniform = AccessStrategy.uniform(system)
    result = optimal_strategy(system)
    assert result.load < uniform.max_load() - 0.05
    # Known optimum for the wheel: balance hub load p_pairs_total against
    # spoke load; with n-1 spokes the optimum puts weight on the rim.
    assert result.strategy.max_load() == pytest.approx(result.load, abs=1e-6)


def test_optimal_strategy_is_valid_distribution():
    result = optimal_strategy(grid(2))
    probabilities = result.strategy.probabilities
    assert math.isclose(float(probabilities.sum()), 1.0, abs_tol=1e-9)
    assert (probabilities >= 0).all()


def test_system_load_lower_bound_naor_wool():
    """Naor-Wool: L(Q) >= max(1/c(Q), c(Q)/n) where c is the smallest
    quorum size.  Check on several systems."""
    for system in (grid(3), majority(5), projective_plane(2), wheel(5)):
        c = system.min_quorum_size()
        n = system.universe_size
        bound = max(1.0 / c, c / n)
        assert system_load(system) >= bound - 1e-8
