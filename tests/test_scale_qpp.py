"""The scale tier: thousand-node solves through the lazy metric layer.

Every test here carries ``@pytest.mark.scale`` and is excluded from the
tier-1 run by the ``addopts`` marker filter in pyproject.toml; ``make
test-scale`` (CI's non-blocking scale job) runs them.  The point is the
acceptance bar of the lazy tier at a size where a dense build would be
32 MB and minutes of Dijkstra: the solve must finish while the obs
registry proves no n x n matrix was ever materialized.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import solve_qpp, solve_total_delay
from repro.network import (
    metric_cache_info,
    random_geometric_network,
    uniform_capacities,
)
from repro.obs.metrics import gauge
from repro.quorums import AccessStrategy, majority

NODES = 2_000


@pytest.fixture(scope="module")
def large_network():
    # The connectivity-threshold radius (~2x sqrt(ln n / pi n)) keeps the
    # instance connected with overwhelming probability at a few thousand
    # nodes without densifying the edge set.
    radius = 2.0 * math.sqrt(math.log(NODES) / (math.pi * NODES))
    network = random_geometric_network(
        NODES, radius, rng=np.random.default_rng(2025)
    )
    return uniform_capacities(network, 2.0)


@pytest.mark.scale
def test_qpp_solves_at_scale_without_a_dense_build(large_network):
    system = majority(5)
    result = solve_qpp(
        system,
        AccessStrategy.uniform(system),
        network=large_network,
        alpha=2.0,
        scale="large",
    )
    info = metric_cache_info()
    # The hard acceptance bar: zero dense metric builds, and the row
    # cache never approached full materialization.
    assert info.builds == 0
    assert info.row_misses > 0
    assert gauge("metric.cache.row_peak").value < large_network.size
    # Theorem 1.2 shape checks on the result itself.
    assert result.objective > 0.0
    assert math.isfinite(result.objective)
    assert result.load_violation_factor <= result.load_factor_bound + 1e-9
    assert result.source in large_network.nodes
    assert result.provenance.algorithm == "qpp.relay-sweep-large"
    assert result.telemetry is not None
    assert result.telemetry.metrics.get("qpp.prune.evaluated", 0.0) >= 1


@pytest.mark.scale
def test_total_delay_solves_at_scale_without_a_dense_build(large_network):
    system = majority(3)
    result = solve_total_delay(
        system,
        AccessStrategy.uniform(system),
        network=large_network,
        scale="large",
    )
    assert metric_cache_info().builds == 0
    assert result.objective > 0.0
    assert math.isfinite(result.objective)
