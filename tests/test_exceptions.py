"""The exception hierarchy contracts that callers rely on."""

import pytest

from repro.exceptions import (
    CapacityError,
    InfeasibleError,
    IntersectionError,
    ReproError,
    SolverError,
    UnboundedError,
    ValidationError,
)


def test_all_errors_derive_from_repro_error():
    for exc in (
        ValidationError,
        IntersectionError,
        InfeasibleError,
        UnboundedError,
        SolverError,
        CapacityError,
    ):
        assert issubclass(exc, ReproError)


def test_validation_error_is_value_error():
    assert issubclass(ValidationError, ValueError)
    with pytest.raises(ValueError):
        raise ValidationError("boom")


def test_intersection_error_names_the_pair():
    error = IntersectionError(frozenset({1}), frozenset({2}))
    assert "1" in str(error) and "2" in str(error)
    assert error.first == frozenset({1})
    assert error.second == frozenset({2})


def test_capacity_error_is_infeasible():
    assert issubclass(CapacityError, InfeasibleError)


def test_intersection_error_is_validation_error():
    assert issubclass(IntersectionError, ValidationError)
