"""Property-based tests (hypothesis) for quorum systems and strategies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quorums import (
    AccessStrategy,
    QuorumSystem,
    crumbling_wall,
    rectangular_grid,
    threshold,
    weighted_majority,
)

# -- generators -----------------------------------------------------------------------


@st.composite
def quorum_systems(draw):
    """Random intersecting families built around a shared 'anchor' element
    plus optional extra members — always a valid quorum system."""
    n = draw(st.integers(min_value=2, max_value=7))
    anchor = 0
    count = draw(st.integers(min_value=1, max_value=6))
    quorums = []
    seen = set()
    for _ in range(count):
        extra = draw(
            st.sets(st.integers(min_value=1, max_value=n - 1), max_size=n - 1)
        )
        quorum = frozenset({anchor} | extra)
        if quorum not in seen:
            seen.add(quorum)
            quorums.append(quorum)
    return QuorumSystem(quorums, universe=range(n), check=False)


@st.composite
def systems_with_strategies(draw):
    system = draw(quorum_systems())
    weights = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            min_size=len(system),
            max_size=len(system),
        )
    )
    return system, AccessStrategy.from_weights(system, weights)


# -- properties ------------------------------------------------------------------------


@given(quorum_systems())
@settings(max_examples=60, deadline=None)
def test_anchored_families_intersect(system):
    system.verify_intersection()


@given(systems_with_strategies())
@settings(max_examples=60, deadline=None)
def test_total_load_equals_expected_quorum_size(pair):
    system, strategy = pair
    assert strategy.total_load() == pytest.approx(strategy.expected_quorum_size())


@given(systems_with_strategies())
@settings(max_examples=60, deadline=None)
def test_loads_bounded_by_probability_mass(pair):
    """0 <= load(u) <= 1 and the max load is at least 1/|largest quorum|...
    more precisely at least expected size / n."""
    system, strategy = pair
    for u in system.universe:
        load = strategy.load(u)
        assert -1e-9 <= load <= 1.0 + 1e-9
    assert strategy.max_load() >= strategy.expected_quorum_size() / system.universe_size - 1e-9


@given(systems_with_strategies())
@settings(max_examples=40, deadline=None)
def test_naor_wool_lower_bound_property(pair):
    """Any strategy's max load is at least c(Q)/n (Naor-Wool)."""
    system, strategy = pair
    bound = system.min_quorum_size() / system.universe_size
    assert strategy.max_load() >= bound - 1e-9


@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=5),
)
@settings(max_examples=25, deadline=None)
def test_rectangular_grids_always_intersect(rows, columns):
    rectangular_grid(rows, columns).verify_intersection()


@given(st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=4))
@settings(max_examples=25, deadline=None)
def test_crumbling_walls_always_intersect(widths):
    crumbling_wall(widths).verify_intersection()


@given(st.integers(min_value=1, max_value=9))
@settings(max_examples=9, deadline=None)
def test_thresholds_always_intersect(n):
    threshold(n, n // 2 + 1).verify_intersection()


@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=7),
        st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=30, deadline=None)
def test_weighted_majorities_always_intersect_and_are_coteries(weights):
    system = weighted_majority(weights)
    system.verify_intersection()
    assert system.is_coterie()


@given(systems_with_strategies(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_sampling_stays_in_support(pair, seed):
    system, strategy = pair
    rng = np.random.default_rng(seed)
    samples = strategy.sample(rng, size=50)
    support = set(strategy.support())
    assert set(int(s) for s in samples) <= support


@given(systems_with_strategies())
@settings(max_examples=30, deadline=None)
def test_mixture_with_itself_is_identity(pair):
    _, strategy = pair
    mixed = AccessStrategy.mixture([strategy, strategy], [0.5, 0.5])
    assert mixed.allclose(strategy)


@given(quorum_systems())
@settings(max_examples=40, deadline=None)
def test_reduced_systems_are_coteries_dominating_original(system):
    from repro.quorums import is_dominated_by

    reduced = system.reduced()
    assert reduced.is_coterie()
    assert is_dominated_by(system, reduced)
