"""Tests for Section 5 / Theorems 1.4 and 5.1 (total delay via GAP)."""

import pytest

from repro.core import (
    average_total_delay,
    node_loads,
    solve_total_delay,
    solve_total_delay_exact,
)
from repro.exceptions import InfeasibleError
from repro.experiments import small_suite
from repro.network import path_network, random_geometric_network, uniform_capacities
from repro.quorums import AccessStrategy, QuorumSystem, majority


# paper: Thm 1.4, §5
class TestTheorem51:
    def test_delay_at_most_optimum_small_instances(self):
        """The headline guarantee: delay <= OPT (with 2x capacity)."""
        for instance in small_suite(21)[:6]:
            result = solve_total_delay(
                instance.system, instance.strategy, instance.network
            )
            exact = solve_total_delay_exact(
                instance.system, instance.strategy, instance.network
            )
            assert result.delay <= exact.objective + 1e-6
            assert result.lp_value <= exact.objective + 1e-6
            assert result.max_load_factor <= 2.0 + 1e-6
            assert result.within_guarantees

    def test_reported_delay_matches_placement(self, rng):
        network = uniform_capacities(random_geometric_network(9, 0.5, rng=rng), 0.9)
        system = majority(5)
        strategy = AccessStrategy.uniform(system)
        result = solve_total_delay(system, strategy, network)
        assert result.delay == pytest.approx(
            average_total_delay(result.placement, strategy)
        )

    def test_load_bound_2x(self, rng):
        network = uniform_capacities(random_geometric_network(10, 0.5, rng=rng), 0.7)
        system = majority(7)
        strategy = AccessStrategy.uniform(system)
        result = solve_total_delay(system, strategy, network)
        loads = node_loads(result.placement, strategy)
        for node, load in loads.items():
            assert load <= 2.0 * network.capacity(node) + 1e-6

    def test_infeasible_instance_raises(self):
        system = QuorumSystem([{0, 1, 2}])
        strategy = AccessStrategy.uniform(system)
        network = path_network(2).with_capacities(0.5)  # loads are 1 each
        with pytest.raises(InfeasibleError):
            solve_total_delay(system, strategy, network)

    def test_rates_shift_placement_toward_hot_clients(self):
        """All access rate at one end of a path: the placement should
        sit strictly closer to that end than the uniform solution."""
        network = path_network(7).with_capacities(10.0)  # capacity slack
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        hot = {0: 100.0, **{v: 0.001 for v in network.nodes if v != 0}}
        weighted = solve_total_delay(system, strategy, network, rates=hot)
        hosts = set(weighted.placement.as_dict().values())
        assert hosts == {0}  # capacity allows full collapse onto the hot node

    def test_uncapacitated_collapses_to_median(self):
        """With infinite capacities the per-element optimum is the
        1-median for every element."""
        network = path_network(5)  # default capacities: infinity
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        result = solve_total_delay(system, strategy, network)
        median = network.metric().median()
        assert set(result.placement.as_dict().values()) == {median}
