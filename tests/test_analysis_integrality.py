"""Tests for the Appendix A integrality-gap instances (incl. Figure 1)."""

import pytest

from repro.analysis import broom_gap_instance, general_metric_gap_instance
from repro.core import solve_ssqpp_exact


class TestGeneralMetricGap:
    def test_lp_value_closed_form(self):
        """The LP optimum on the star instance is the uniform spread:
        (sum of distances)/n = (n - 2 + M)/n... the feasible point from
        the paper; the solved LP can only be lower or equal."""
        n, M = 6, 50.0
        instance = general_metric_gap_instance(n, M)
        paper_point = (0 + (n - 2) * 1 + M) / n
        assert instance.lp_value <= paper_point + 1e-6
        assert instance.lp_value > 0

    def test_gap_grows_with_m(self):
        gaps = [
            general_metric_gap_instance(6, M).gap for M in (10.0, 100.0, 1000.0)
        ]
        assert gaps[0] < gaps[1] < gaps[2]
        # As M -> infinity the gap approaches n = 6.
        assert gaps[2] > 5.5

    def test_integral_optimum_is_exact(self):
        """Cross-check the claimed integral optimum by brute force."""
        instance = general_metric_gap_instance(5, 20.0)
        exact = solve_ssqpp_exact(
            instance.system, instance.strategy, instance.network, instance.source
        )
        assert exact.objective == pytest.approx(instance.integral_optimum)


# paper: Claim A.1, App. A
class TestBroomGap:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_integral_optimum_verified_by_brute_force(self, k):
        if k > 3:
            pytest.skip("brute force too large beyond k=3")
        instance = broom_gap_instance(k)
        exact = solve_ssqpp_exact(
            instance.system, instance.strategy, instance.network, instance.source
        )
        assert exact.objective == pytest.approx(float(k))

    def test_lp_value_near_three_halves(self):
        """The paper's fractional point costs ~3/2; the LP optimum must
        not exceed it and stays bounded below by 1 (all but one node are
        at distance >= 1 and n-1 of n elements must leave the source)."""
        for k in (3, 4, 5):
            instance = broom_gap_instance(k)
            n = k * k
            paper_point = ((n - k) * 1 + sum(range(2, k + 1))) / n
            assert instance.lp_value <= paper_point + 1e-6

    def test_gap_scales_like_sqrt_n(self):
        gaps = {k: broom_gap_instance(k).gap for k in (2, 3, 4, 5)}
        # Monotone growth roughly linear in k = sqrt(n).
        assert gaps[2] < gaps[3] < gaps[4] < gaps[5]
        assert gaps[5] > 0.5 * 5  # at least k/2, i.e. Omega(sqrt(n))


def test_instances_expose_consistent_metadata():
    instance = broom_gap_instance(3)
    assert instance.network.size == 9
    assert instance.system.universe_size == 9
    assert len(instance.system) == 1
    assert instance.gap == pytest.approx(
        instance.integral_optimum / instance.lp_value
    )
