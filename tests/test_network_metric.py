"""Tests for the shortest-path metric, cross-checked against networkx."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.network import (
    Metric,
    Network,
    dijkstra,
    grid_network,
    path_network,
    random_geometric_network,
)


class TestDijkstra:
    def test_simple_path(self):
        adjacency = {0: {1: 2.0}, 1: {0: 2.0, 2: 3.0}, 2: {1: 3.0}}
        distances = dijkstra(adjacency, 0)
        assert distances == {0: 0.0, 1: 2.0, 2: 5.0}

    def test_unreachable_nodes_absent(self):
        adjacency = {0: {1: 1.0}, 1: {0: 1.0}, 2: {}}
        distances = dijkstra(adjacency, 0)
        assert 2 not in distances

    def test_unknown_source_rejected(self):
        with pytest.raises(ValidationError):
            dijkstra({0: {}}, 5)

    def test_shortcut_preferred(self):
        adjacency = {
            0: {1: 10.0, 2: 1.0},
            1: {0: 10.0, 2: 1.0},
            2: {0: 1.0, 1: 1.0},
        }
        assert dijkstra(adjacency, 0)[1] == pytest.approx(2.0)

    def test_heterogeneous_node_labels(self):
        adjacency = {"a": {(1, 2): 1.0}, (1, 2): {"a": 1.0}}
        distances = dijkstra(adjacency, "a")
        assert distances[(1, 2)] == 1.0


class TestMetric:
    def test_matches_networkx_all_pairs(self, rng):
        import networkx as nx

        network = random_geometric_network(15, 0.45, rng=rng)
        metric = network.metric()
        graph = network.to_networkx()
        expected = dict(nx.all_pairs_dijkstra_path_length(graph, weight="length"))
        for u in network.nodes:
            for v in network.nodes:
                assert metric.distance(u, v) == pytest.approx(expected[u][v])

    def test_disconnected_network_rejected(self):
        net = Network([1, 2, 3], [(1, 2)])
        with pytest.raises(ValidationError, match="disconnected"):
            net.metric()

    def test_matrix_is_read_only(self):
        metric = path_network(4).metric()
        with pytest.raises(ValueError):
            metric.matrix[0, 0] = 5.0

    def test_invalid_matrices_rejected(self):
        with pytest.raises(ValidationError, match="symmetric"):
            Metric([0, 1], np.array([[0.0, 1.0], [2.0, 0.0]]))
        with pytest.raises(ValidationError, match="zero"):
            Metric([0, 1], np.array([[1.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ValidationError, match="non-negative"):
            Metric([0, 1], np.array([[0.0, -1.0], [-1.0, 0.0]]))
        with pytest.raises(ValidationError, match="finite"):
            Metric([0, 1], np.array([[0.0, np.inf], [np.inf, 0.0]]))
        with pytest.raises(ValidationError, match="2x2"):
            Metric([0, 1], np.zeros((3, 3)))

    def test_triangle_inequality_passes_for_shortest_paths(self, rng):
        metric = random_geometric_network(12, 0.5, rng=rng).metric()
        metric.verify_triangle_inequality()

    def test_triangle_inequality_violation_detected(self):
        bad = Metric(
            [0, 1, 2],
            np.array([[0.0, 1.0, 5.0], [1.0, 0.0, 1.0], [5.0, 1.0, 0.0]]),
        )
        with pytest.raises(ValidationError, match="triangle"):
            bad.verify_triangle_inequality()

    def test_eccentricity_and_diameter(self):
        metric = path_network(5).metric()
        assert metric.eccentricity(0) == pytest.approx(4.0)
        assert metric.eccentricity(2) == pytest.approx(2.0)
        assert metric.diameter() == pytest.approx(4.0)

    def test_median_of_path_is_center(self):
        metric = path_network(5).metric()
        assert metric.median() == 2

    def test_nodes_by_distance_sorted_with_deterministic_ties(self):
        metric = grid_network(3, 3).metric()
        ordered = metric.nodes_by_distance((0, 0))
        distances = [metric.distance((0, 0), v) for v in ordered]
        assert distances == sorted(distances)
        assert ordered[0] == (0, 0)
        # ties broken by node index: (0,1) precedes (1,0)
        assert ordered.index((0, 1)) < ordered.index((1, 0))

    def test_average_distance_to(self):
        metric = path_network(3).metric()
        assert metric.average_distance_to(1) == pytest.approx((1 + 0 + 1) / 3)

    def test_metric_cached_on_network(self):
        network = path_network(4)
        assert network.metric() is network.metric()
