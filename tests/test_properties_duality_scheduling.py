"""Property-based tests: duality laws and the hardness reduction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quorums import QuorumSystem, minimal_transversals
from repro.scheduling import random_woeginger_instance, solve_scheduling_exact


@st.composite
def anchored_systems(draw):
    """Small random intersecting families sharing element 0."""
    n = draw(st.integers(min_value=2, max_value=6))
    count = draw(st.integers(min_value=1, max_value=4))
    quorums = []
    seen = set()
    for _ in range(count):
        extra = draw(
            st.sets(st.integers(min_value=1, max_value=n - 1), max_size=n - 1)
        )
        quorum = frozenset({0} | extra)
        if quorum not in seen:
            seen.add(quorum)
            quorums.append(quorum)
    return QuorumSystem(quorums, universe=range(n), check=False)


@given(anchored_systems())
@settings(max_examples=50, deadline=None)
def test_transversals_hit_everything_and_are_minimal(system):
    transversals = minimal_transversals(system)
    assert transversals, "every quorum system has a transversal"
    for t in transversals:
        assert all(not t.isdisjoint(q) for q in system.quorums)
        # Minimality: removing any element leaves some quorum unhit.
        for element in t:
            smaller = t - {element}
            assert any(smaller.isdisjoint(q) for q in system.quorums)


@given(anchored_systems())
@settings(max_examples=40, deadline=None)
def test_double_transversal_is_reduction(system):
    """T(T(Q)) == reduced(Q) for every (anchored) quorum system."""
    reduced = system.reduced()
    first = minimal_transversals(reduced)
    wrapper = QuorumSystem(first, universe=reduced.universe, check=False)
    double = set(minimal_transversals(wrapper))
    assert double == set(reduced.quorums)


@given(anchored_systems())
@settings(max_examples=40, deadline=None)
def test_transversal_count_at_least_one_quorum_bound(system):
    """Each transversal has size <= number of quorums (pick one element
    per quorum), and there are at least as many transversals as the
    largest antichain lower bound of 1."""
    transversals = minimal_transversals(system)
    assert all(len(t) <= len(system) for t in transversals)


@given(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=20, deadline=None)
def test_hardness_reduction_equivalence_property(unit_time, unit_weight, seed):
    """The Theorem 3.6 affine correspondence holds on random
    Woeginger instances: optimal schedule cost maps to the delay of the
    corresponding placement, and the round trip preserves cost."""
    from repro.core import reduce_scheduling_to_ssqpp

    rng = np.random.default_rng(seed)
    instance = random_woeginger_instance(
        unit_time, unit_weight, rng=rng, edge_probability=0.5
    )
    reduction = reduce_scheduling_to_ssqpp(instance)
    best = solve_scheduling_exact(instance)
    placement = reduction.schedule_to_placement(best.order)
    delay = reduction.placement_delay(placement)
    assert delay == pytest.approx(reduction.delay_of_schedule_cost(best.cost))
    recovered = reduction.placement_to_schedule(placement)
    assert instance.cost(recovered) == pytest.approx(best.cost)
