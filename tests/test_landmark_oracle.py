"""Certification tests for the landmark distance oracle and the pruned
large-scale QPP sweep.

Two guarantees are on trial.  First, the triangle-inequality sandwich:
for every pair ``(u, v)`` the oracle's bounds satisfy
``lower <= d(u, v) <= upper``, with equality whenever ``u`` or ``v`` is
a landmark.  Second, *result preservation*: because ``solve_qpp`` prunes
only candidates whose certified lower bound already exceeds the best
realized delay, the pruned sweep must return bitwise the same placement,
objective, and winning source as the unpruned one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import solve_qpp
from repro.exceptions import ValidationError
from repro.network import (
    LandmarkOracle,
    LazyMetric,
    Network,
    farthest_point_landmarks,
    random_geometric_network,
    uniform_capacities,
)
from repro.obs import counter
from repro.quorums import AccessStrategy, majority

SEEDS = [3, 11, 27]


def _instance(seed, *, n=24, radius=0.45):
    rng = np.random.default_rng(seed)
    network = uniform_capacities(
        random_geometric_network(n, radius, rng=rng), 2.0
    )
    system = majority(5)
    return network, system, AccessStrategy.uniform(system)


# -- the sandwich ---------------------------------------------------------------------


class TestOracleBounds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_lower_true_upper_on_every_pair(self, seed):
        network, _, _ = _instance(seed)
        dense = network.metric()
        oracle = LandmarkOracle.build(network.lazy_metric(), 6)
        lower, upper = oracle.bounds_columns(np.arange(network.size))
        assert np.all(lower <= dense.matrix + 1e-12)
        assert np.all(dense.matrix <= upper + 1e-12)
        assert np.all(lower >= 0.0)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_exact_at_landmarks(self, seed):
        network, _, _ = _instance(seed)
        dense = network.metric()
        oracle = LandmarkOracle.build(network.lazy_metric(), 4)
        for landmark in oracle.landmarks:
            for other in network.nodes:
                low, high = oracle.bounds(landmark, other)
                true = dense.distance(landmark, other)
                assert low == pytest.approx(true, abs=1e-12)
                assert high == pytest.approx(true, abs=1e-12)

    def test_certify_reports_a_clean_certificate(self):
        network, _, _ = _instance(7)
        oracle = LandmarkOracle.build(network.lazy_metric(), 5)
        certificate = oracle.certify(sample=16)
        assert certificate.ok
        assert certificate.violations == 0
        assert certificate.pairs_checked > 0
        assert certificate.max_violation <= certificate.tolerance
        assert 0.0 <= certificate.mean_gap <= certificate.max_gap
        assert certificate.landmarks == len(oracle.landmarks)

    def test_farthest_point_landmarks_are_deterministic_and_spread(self):
        network, _, _ = _instance(13)
        view = network.lazy_metric()
        picked = farthest_point_landmarks(view, 5)
        again = farthest_point_landmarks(view, 5)
        assert picked == again
        assert len(set(picked)) == len(picked)
        # Requesting more landmarks than nodes clamps to the node count.
        assert len(farthest_point_landmarks(view, network.size + 10)) == network.size

    def test_disconnected_network_rejected(self):
        network = Network(range(4), [(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(ValidationError, match="non-finite"):
            LandmarkOracle.build(LazyMetric(network), 2)


# -- result-preserving pruning --------------------------------------------------------


def _solve_large(network, system, strategy, **kwargs):
    return solve_qpp(
        system,
        strategy,
        network=network,
        alpha=2.0,
        scale="large",
        **kwargs,
    )


class TestPrunedSweep:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_pruning_never_changes_the_result(self, seed):
        """The acceptance bar of the lazy tier: prune=True is an
        optimization, not an approximation."""
        network, system, strategy = _instance(seed)
        candidates = list(network.nodes)
        pruned = _solve_large(
            network,
            system,
            strategy,
            candidate_sources=candidates,
            horizon=None,
            prune=True,
        )
        skipped = counter("qpp.prune.skipped").value
        evaluated = counter("qpp.prune.evaluated").value
        unpruned = _solve_large(
            network,
            system,
            strategy,
            candidate_sources=candidates,
            horizon=None,
            prune=False,
        )
        assert pruned.source == unpruned.source
        assert pruned.objective == unpruned.objective
        assert pruned.placement.as_dict() == unpruned.placement.as_dict()
        assert pruned.load_violation_factor == unpruned.load_violation_factor
        # The sweep actually skipped work on at least one seed-stable
        # instance — otherwise this test proves nothing.
        assert skipped > 0
        assert evaluated >= 1

    def test_large_path_matches_dense_path(self):
        """Full-domain (horizon=None) large solve agrees with the dense
        solver up to metric-symmetry rounding (last-ulp; the realized
        evaluation transposes d(v, f(u)) into d(f(u), v))."""
        network, system, strategy = _instance(5, n=20)
        candidates = list(network.nodes)
        dense = solve_qpp(
            system,
            strategy,
            network=network,
            alpha=2.0,
            candidate_sources=candidates,
        )
        large = _solve_large(
            network,
            system,
            strategy,
            candidate_sources=candidates,
            horizon=None,
        )
        assert large.source == dense.source
        assert large.objective == pytest.approx(dense.objective, rel=1e-12)
        assert large.placement.as_dict() == dense.placement.as_dict()
        # Unrestricted sweep keeps the Theorem 3.3 certified lower bound.
        assert large.optimum_lower_bound == pytest.approx(
            dense.optimum_lower_bound, rel=1e-12
        )

    def test_horizon_restriction_voids_the_lower_bound(self):
        """A restricted placement domain makes the Theorem 3.3 bound
        unsound (restricted LP optimum >= Z*), so the solver must report
        0.0 rather than an invalid certificate."""
        network, system, strategy = _instance(9)
        restricted = _solve_large(network, system, strategy, horizon="auto")
        assert restricted.optimum_lower_bound == 0.0
        assert restricted.provenance.algorithm == "qpp.relay-sweep-large"

    def test_scale_argument_validated(self):
        network, system, strategy = _instance(3, n=10)
        with pytest.raises(ValidationError):
            solve_qpp(system, strategy, network=network, scale="huge")
        with pytest.raises(ValidationError):
            solve_qpp(
                system,
                strategy,
                network=network,
                scale="large",
                parallel="fork",
            )
