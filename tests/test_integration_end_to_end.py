"""Integration tests: whole-paper pipelines across modules.

Each test exercises a full story from the paper — system construction,
strategy optimization, placement, and bound verification — across several
modules at once.
"""

import numpy as np
import pytest

import repro
from repro.core import (
    average_max_delay,
    average_total_delay,
    capacity_violation_factor,
    greedy_placement,
    is_capacity_respecting,
    optimal_grid_placement,
    optimal_majority_placement,
    relay_analysis,
    single_node_placement,
    solve_qpp,
    solve_ssqpp,
    solve_total_delay,
)
from repro.experiments import simulate_accesses, standard_suite
from repro.network import (
    random_geometric_network,
    two_cluster_network,
    uniform_capacities,
)
from repro.quorums import (
    AccessStrategy,
    grid,
    majority,
    optimal_strategy,
    projective_plane,
)


def test_public_api_importable():
    assert repro.__version__ == "1.0.0"
    assert callable(repro.solve_qpp)
    assert callable(repro.solve_total_delay)


def test_full_pipeline_fpp_on_wan(rng):
    """Maekawa system + load-optimal strategy + LP placement + simulation,
    end to end with every guarantee checked."""
    system = projective_plane(2)  # 7 elements, quorums of size 3
    strategy_result = optimal_strategy(system)
    strategy = strategy_result.strategy
    network = uniform_capacities(
        random_geometric_network(10, 0.5, rng=rng, scale=100.0), 0.6
    )

    result = solve_ssqpp(system, strategy, network, network.nodes[0], alpha=2.0)
    assert result.within_guarantees

    simulation = simulate_accesses(
        result.placement, strategy, rng=rng, accesses_per_client=500
    )
    assert simulation.max_delay_error < 0.1


def test_qpp_beats_or_matches_greedy_baseline_on_suite():
    """Across the standard suite, the Theorem 1.2 solver (which may use
    (alpha+1)x capacity) should never lose badly to feasible greedy."""
    wins = 0
    total = 0
    for instance in standard_suite(5)[:4]:
        result = solve_qpp(
            instance.system,
            instance.strategy,
            instance.network,
            alpha=2.0,
            candidate_sources=list(instance.network.nodes)[:4],
        )
        try:
            baseline = greedy_placement(
                instance.system, instance.strategy, instance.network
            )
        except repro.CapacityError:
            continue
        baseline_delay = average_max_delay(baseline, instance.strategy)
        total += 1
        if result.average_delay <= baseline_delay + 1e-9:
            wins += 1
    assert total >= 2
    assert wins >= total // 2  # the LP solver should usually win


def test_two_cluster_story(rng):
    """The wide-area motivation: on two clusters joined by a slow bridge,
    a good placement keeps quorums inside clusters; the single-node
    baseline violates capacity massively."""
    network = uniform_capacities(two_cluster_network(5, bridge_length=20.0), 1.0)
    system = majority(5)
    strategy = AccessStrategy.uniform(system)

    result = solve_qpp(
        system, strategy, network, alpha=2.0,
        candidate_sources=[("a", 0), ("b", 0)],
    )
    assert result.average_delay < 25.0  # not paying the bridge every time

    collapsed = single_node_placement(system, network)
    assert capacity_violation_factor(collapsed, strategy) == pytest.approx(3.0)
    assert capacity_violation_factor(result.placement, strategy) <= 3.0 + 1e-9


def test_grid_and_majority_theorem_1_3_pipeline(rng):
    """Theorem 1.3's two layouts both respect capacities exactly and have
    sensible relay behavior."""
    network = uniform_capacities(random_geometric_network(12, 0.5, rng=rng), 1.0)
    source = network.nodes[0]

    grid_result = optimal_grid_placement(network, source, 3)
    assert is_capacity_respecting(grid_result.placement, grid_result.strategy)
    relay = relay_analysis(grid_result.placement, grid_result.strategy)
    assert relay.within_bound

    majority_result = optimal_majority_placement(network, source, 7)
    assert is_capacity_respecting(majority_result.placement, majority_result.strategy)
    assert majority_result.delay == pytest.approx(majority_result.formula_delay)


def test_total_delay_vs_max_delay_objectives(rng):
    """Optimizing Gamma vs Delta produces different placements in general;
    each wins on its own objective."""
    network = uniform_capacities(random_geometric_network(9, 0.5, rng=rng), 0.9)
    system = majority(5)
    strategy = AccessStrategy.uniform(system)

    total_result = solve_total_delay(system, strategy, network)
    qpp_result = solve_qpp(
        system, strategy, network, candidate_sources=list(network.nodes)[:3]
    )
    # Each solution is at least as good on its own metric.
    assert average_total_delay(
        total_result.placement, strategy
    ) <= average_total_delay(qpp_result.placement, strategy) + 1e-6


def test_grid_uniform_strategy_is_load_optimal_end_to_end():
    """§4.1 assumes uniform is optimal for the Grid; verify via the LP
    and then use it for a placement."""
    system = grid(3)
    uniform = AccessStrategy.uniform(system)
    optimal = optimal_strategy(system)
    assert optimal.load == pytest.approx(uniform.max_load(), abs=1e-8)
