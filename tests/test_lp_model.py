"""Unit tests for the LP modeling layer (expressions, constraints, model)."""

import math

import pytest

from repro.exceptions import ValidationError
from repro.lp import Constraint, LinExpr, Model, Variable


class TestLinExpr:
    def test_variable_arithmetic_builds_expressions(self):
        m = Model()
        x, y = m.variable("x"), m.variable("y")
        expr = 2 * x + 3 * y - 1
        assert expr.coefficients == {x.index: 2.0, y.index: 3.0}
        assert expr.constant == -1.0

    def test_addition_merges_coefficients(self):
        m = Model()
        x = m.variable("x")
        expr = x + x + x
        assert expr.coefficients == {x.index: 3.0}

    def test_subtraction_and_negation(self):
        m = Model()
        x, y = m.variable("x"), m.variable("y")
        expr = -(x - y)
        assert expr.coefficients == {x.index: -1.0, y.index: 1.0}

    def test_rsub_scalar(self):
        m = Model()
        x = m.variable("x")
        expr = 5 - x
        assert expr.coefficients == {x.index: -1.0}
        assert expr.constant == 5.0

    def test_scalar_division(self):
        m = Model()
        x = m.variable("x")
        expr = (4 * x) / 2
        assert expr.coefficients == {x.index: 2.0}

    def test_division_by_zero_raises(self):
        m = Model()
        x = m.variable("x")
        with pytest.raises(ZeroDivisionError):
            (x + 1) / 0

    def test_from_terms_accumulates_duplicates(self):
        m = Model()
        x = m.variable("x")
        expr = LinExpr.from_terms([(x, 1.0), (x, 2.0)], constant=7.0)
        assert expr.coefficients == {x.index: 3.0}
        assert expr.constant == 7.0


class TestConstraints:
    def test_comparison_operators_build_constraints(self):
        m = Model()
        x = m.variable("x")
        le = x <= 3
        ge = x >= 1
        eq = x + 0 == 2
        assert isinstance(le, Constraint) and le.sense == "<="
        assert isinstance(ge, Constraint) and ge.sense == ">="
        assert isinstance(eq, Constraint) and eq.sense == "=="

    def test_invalid_sense_rejected(self):
        with pytest.raises(ValidationError):
            Constraint(LinExpr({0: 1.0}), "<")

    def test_add_constraint_rejects_non_constraint(self):
        m = Model()
        x = m.variable("x")
        with pytest.raises(ValidationError, match="comparison"):
            m.add_constraint(x + 1)  # an expression, not a constraint

    def test_cross_model_variables_detected(self):
        m1, m2 = Model(name="a"), Model(name="b")
        m1.variable("x")
        # m2 has no variables, so an expression over m1's x is out of range.
        x1 = Variable(0, "x")
        with pytest.raises(ValidationError, match="different model"):
            m2.add_constraint(x1 <= 1)


class TestModel:
    def test_variable_bounds_validated(self):
        m = Model()
        with pytest.raises(ValidationError, match="bound"):
            m.variable("x", lb=2.0, ub=1.0)

    def test_variables_bulk_creation(self):
        m = Model()
        xs = m.variables(5, prefix="p")
        assert [x.name for x in xs] == ["p0", "p1", "p2", "p3", "p4"]
        assert m.num_variables == 5

    def test_counts_and_names(self):
        m = Model()
        x = m.variable("cost")
        m.add_constraint(x <= 10, name="limit")
        assert m.num_constraints == 1
        assert m.variable_name(x.index) == "cost"

    def test_objective_requires_linear_expression(self):
        m = Model()
        m.variable("x")
        with pytest.raises(ValidationError):
            m.minimize("not an expression")


class TestSolving:
    def test_simple_minimization(self):
        m = Model()
        x = m.variable("x", lb=0)
        y = m.variable("y", lb=0)
        m.add_constraint(x + 2 * y >= 4)
        m.minimize(3 * x + y)
        solution = m.solve()
        assert solution.objective == pytest.approx(2.0)
        assert solution.value(y) == pytest.approx(2.0)
        assert solution.value(x) == pytest.approx(0.0)

    def test_maximization_reports_true_objective(self):
        m = Model()
        x = m.variable("x", lb=0, ub=5)
        m.maximize(2 * x + 1)
        solution = m.solve()
        assert solution.objective == pytest.approx(11.0)

    def test_equality_constraints(self):
        m = Model()
        x = m.variable("x", lb=0)
        y = m.variable("y", lb=0)
        m.add_constraint(x + y == 10)
        m.minimize(x - y)
        solution = m.solve()
        assert solution.value(y) == pytest.approx(10.0)
        assert solution.objective == pytest.approx(-10.0)

    def test_expression_value_at_optimum(self):
        m = Model()
        x = m.variable("x", lb=1, ub=1)
        m.minimize(x + 0)
        solution = m.solve()
        assert solution.expression_value(5 * x + 2) == pytest.approx(7.0)

    def test_objective_constant_carried_through(self):
        m = Model()
        x = m.variable("x", lb=3, ub=3)
        m.minimize(x + 100)
        assert m.solve().objective == pytest.approx(103.0)

    def test_bounds_respected(self):
        m = Model()
        x = m.variable("x", lb=-2, ub=7)
        m.maximize(x + 0)
        assert m.solve().value(x) == pytest.approx(7.0)
        m2 = Model()
        y = m2.variable("y", lb=-2, ub=7)
        m2.minimize(y + 0)
        assert m2.solve().value(y) == pytest.approx(-2.0)

    def test_unbounded_variable_upper_is_infinite(self):
        m = Model()
        x = m.variable("x")
        assert m.bounds() == [(0.0, math.inf)]


class TestCheckpointRollback:
    def test_rollback_restores_counts_and_objective(self):
        from repro.lp import ModelCheckpoint

        m = Model()
        x, y = m.variable("x", lb=0.0), m.variable("y", lb=0.0)
        m.add_constraint(x + y >= 1, name="base")
        m.minimize(x + 2 * y)
        mark = m.checkpoint()
        assert isinstance(mark, ModelCheckpoint)

        z = m.variable("z", lb=0.0)
        m.add_constraint(z + x >= 3, name="extra")
        m.minimize(z + x)
        m.rollback(mark)

        base_solution = m.solve()
        assert base_solution.objective == pytest.approx(1.0)

    def test_rollback_then_rebuild_is_repeatable(self):
        m = Model()
        x = m.variable("x", lb=0.0, ub=4.0)
        mark = m.checkpoint()
        values = []
        for bound in (1.0, 2.0, 3.0):
            y = m.variable("y", lb=0.0)
            m.add_constraint(y - x >= bound, name="gap")
            m.minimize(y)
            values.append(m.solve().objective)
            m.rollback(mark)
        assert values == pytest.approx([1.0, 2.0, 3.0])

    def test_rollback_rejects_foreign_or_future_marks(self):
        m = Model()
        m.variable("x")
        mark = m.checkpoint()
        with pytest.raises(ValidationError):
            m.rollback("not a checkpoint")
        other = Model()
        other.variable("a")
        other.variable("b")
        future = other.checkpoint()
        with pytest.raises(ValidationError):
            m.rollback(future)

    def test_checkpoint_with_no_objective(self):
        m = Model()
        x = m.variable("x", lb=0.0, ub=2.0)
        mark = m.checkpoint()
        m.maximize(x)
        m.rollback(mark)
        m.maximize(x)
        assert m.solve().objective == pytest.approx(2.0)
