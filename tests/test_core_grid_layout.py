"""Tests for the §4.1 / Appendix B optimal Grid layout."""

from itertools import permutations

import numpy as np
import pytest

from repro.core import (
    concentric_matrix,
    concentric_positions,
    expected_max_delay,
    grid_matrix_delay,
    is_capacity_respecting,
    nearest_slots,
    optimal_grid_placement,
)
from repro.exceptions import CapacityError
from repro.network import (
    path_network,
    random_geometric_network,
    star_network,
    uniform_capacities,
)


# paper: Thm 1.3, Thm B.1
class TestConcentricPositions:
    def test_k2_order(self):
        assert concentric_positions(2) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_k3_order(self):
        assert concentric_positions(3) == [
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1),
            (0, 2),
            (1, 2),
            (2, 0),
            (2, 1),
            (2, 2),
        ]

    def test_positions_cover_matrix(self):
        for k in (1, 2, 3, 4, 5):
            positions = concentric_positions(k)
            assert len(positions) == k * k
            assert len(set(positions)) == k * k

    def test_prefix_is_square(self):
        """After l^2 placements the filled cells form the top-left l x l
        square — the invariant of the Appendix B induction."""
        positions = concentric_positions(4)
        for l in (1, 2, 3, 4):
            filled = set(positions[: l * l])
            assert filled == {(i, j) for i in range(l) for j in range(l)}


class TestConcentricMatrix:
    def test_largest_value_at_origin(self):
        matrix = concentric_matrix([1.0, 5.0, 3.0, 2.0])
        assert matrix[0, 0] == 5.0
        assert matrix[1, 1] == 1.0

    def test_values_descend_along_fill_order(self):
        values = [float(v) for v in range(9)]
        matrix = concentric_matrix(values)
        ordered = [matrix[p] for p in concentric_positions(3)]
        assert ordered == sorted(values, reverse=True)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            concentric_matrix([1.0, 2.0, 3.0])


class TestMatrixDelay:
    def test_delay_by_hand_k2(self):
        # M = [[d, c], [b, a]] with d >= c >= b >= a.
        matrix = np.array([[4.0, 3.0], [2.0, 1.0]])
        # Quorums (i,j): max(row i, col j):
        # (0,0): 4; (0,1): 4; (1,0): 4; (1,1): 3 (row1 max 2, col1 max 3).
        assert grid_matrix_delay(matrix) == pytest.approx((4 + 4 + 4 + 3) / 4)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            grid_matrix_delay(np.zeros((2, 3)))

    def test_matches_placement_evaluator(self, rng):
        """grid_matrix_delay(layout matrix) == Delta_f(v0) of the
        produced placement."""
        network = uniform_capacities(random_geometric_network(12, 0.5, rng=rng), 1.0)
        result = optimal_grid_placement(network, network.nodes[0], 2)
        assert grid_matrix_delay(result.matrix) == pytest.approx(result.delay)


class TestTheoremB1:
    def test_concentric_beats_all_permutations_k2(self, rng):
        """Exhaustive optimality for k=2 on random distance multisets."""
        for _ in range(20):
            values = sorted(rng.uniform(0, 10, 4))
            best = min(
                grid_matrix_delay(np.array(p).reshape(2, 2))
                for p in permutations(values)
            )
            ours = grid_matrix_delay(concentric_matrix(list(values)))
            assert ours == pytest.approx(best)

    def test_concentric_never_beaten_by_samples_k3(self, rng):
        """Randomized optimality check for k=3 (exhaustive 9! is a bench)."""
        values = list(rng.uniform(0, 10, 9))
        ours = grid_matrix_delay(concentric_matrix(values))
        array = np.array(values)
        for _ in range(3000):
            rng.shuffle(array)
            assert ours <= grid_matrix_delay(array.reshape(3, 3)) + 1e-9

    def test_row_major_is_no_better(self, rng):
        values = sorted(rng.uniform(0, 10, 16), reverse=True)
        ours = grid_matrix_delay(concentric_matrix(list(values)))
        row_major = grid_matrix_delay(np.array(values).reshape(4, 4))
        assert ours <= row_major + 1e-12


class TestSlots:
    def test_capacity_two_gives_two_slots(self):
        network = path_network(3).with_capacities(2.0)
        slots = nearest_slots(network, 0, element_load=1.0, count=4)
        assert slots == [0, 0, 1, 1]

    def test_small_capacity_nodes_suppressed(self):
        network = path_network(3).with_capacities({0: 0.4, 1: 1.0, 2: 1.0})
        # Node 0 holds zero copies of load 0.5; node 1 supplies two slots.
        slots = nearest_slots(network, 0, element_load=0.5, count=3)
        assert slots == [1, 1, 2]

    def test_insufficient_slots_raise(self):
        network = path_network(2).with_capacities(1.0)
        with pytest.raises(CapacityError, match="slots"):
            nearest_slots(network, 0, element_load=1.0, count=3)


class TestOptimalGridPlacement:
    def test_respects_capacities_theorem_1_3(self, rng):
        network = uniform_capacities(random_geometric_network(11, 0.5, rng=rng), 1.0)
        result = optimal_grid_placement(network, network.nodes[0], 3)
        assert is_capacity_respecting(result.placement, result.strategy)

    def test_delay_matches_reported(self, rng):
        network = uniform_capacities(random_geometric_network(10, 0.5, rng=rng), 1.0)
        result = optimal_grid_placement(network, network.nodes[2], 2)
        assert expected_max_delay(
            result.placement, result.strategy, network.nodes[2]
        ) == pytest.approx(result.delay)

    def test_star_network_layout_uses_center_first(self):
        """On a star with the hub as source, one element lands on the hub
        (its slot is at distance 0) and the layout puts the *closest* slot
        at the matrix corner (k,k)."""
        network = star_network(9).with_capacities(1.0)
        result = optimal_grid_placement(network, 0, 2)
        assert result.matrix[1, 1] == pytest.approx(0.0)
        assert result.placement[(1, 1)] == 0
