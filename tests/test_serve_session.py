"""The JSONL serving loop and ``repro serve`` end to end.

Locks in the session-level contracts: deterministic byte-identical
replay of a seeded session, error handling that keeps the loop alive,
and the acceptance scenario — a 500-node geometric network serving
1000+ queries with drift-triggered re-solves, with the obs registry
accounting for every read.
"""

import io
import json

import numpy as np
import pytest

from repro.cli import main
from repro.network.generators import grid_network
from repro.obs.metrics import default_registry
from repro.quorums import AccessStrategy, majority
from repro.serve import (
    PlacementService,
    SessionSummary,
    serve_request,
    serve_session,
    validate_serve_response,
)


def _fresh_service(**kwargs):
    network = grid_network(3, 3).with_capacities(2.0)
    system = majority(5)
    return PlacementService(
        system, AccessStrategy.uniform(system), network, **kwargs
    )


def _session_lines():
    lines = []
    for index in range(10):
        lines.append(
            json.dumps(serve_request("query", id=index, client="(1, 1)"))
        )
    lines.append(
        json.dumps(serve_request("update", id="u0", client="(2, 2)", rate=30.0))
    )
    lines.append(json.dumps(serve_request("query", id="q-stale", client="(2, 2)")))
    lines.append(json.dumps(serve_request("resolve", id="force")))
    lines.append(json.dumps(serve_request("stats", id="s0")))
    lines.append("not valid json {")
    lines.append(json.dumps({"kind": "wrong-kind", "id": 1, "op": "stats"}))
    lines.append("")  # blank lines are skipped, not answered
    lines.append(json.dumps(serve_request("query", id="last", client="(0, 2)")))
    return lines


class TestServeSession:
    def test_session_answers_every_request_in_order(self):
        service = _fresh_service(max_batch=4, drift_threshold=float("inf"))
        out = io.StringIO()
        summary = serve_session(service, _session_lines(), out)
        assert isinstance(summary, SessionSummary)
        payload = out.getvalue().splitlines()
        # One response per non-blank line, in input order.
        assert summary.requests == 17
        assert summary.responses == 17
        assert len(payload) == 17
        assert summary.errors == 2
        assert summary.final_version == 2
        responses = [json.loads(line) for line in payload]
        for response in responses:
            validate_serve_response(response)
        ids = [response["id"] for response in responses]
        assert ids[:10] == list(range(10))
        assert ids[-1] == "last"

    def test_versions_are_monotonic_through_a_session(self):
        service = _fresh_service(max_batch=4, drift_threshold=float("inf"))
        out = io.StringIO()
        serve_session(service, _session_lines(), out)
        versions = [
            json.loads(line)["version"] for line in out.getvalue().splitlines()
        ]
        assert all(a <= b for a, b in zip(versions, versions[1:]))

    def test_invalid_json_line_does_not_kill_the_session(self):
        service = _fresh_service()
        out = io.StringIO()
        summary = serve_session(
            service,
            ["{broken", json.dumps(serve_request("stats", id=1))],
            out,
        )
        assert summary.errors == 1
        first, second = (json.loads(line) for line in out.getvalue().splitlines())
        assert first["ok"] is False
        assert "invalid JSON" in first["error"]
        assert second["ok"] is True

    def test_replay_is_byte_identical(self):
        lines = _session_lines()
        outputs = []
        for _ in range(2):
            default_registry().reset()
            service = _fresh_service(max_batch=4, drift_threshold=float("inf"))
            out = io.StringIO()
            serve_session(service, lines, out)
            outputs.append(out.getvalue())
        assert outputs[0] == outputs[1]
        assert outputs[0]  # non-empty: the property is not vacuous


def _acceptance_lines(rng):
    """1000+ queries with four waves of concentrated demand shift.

    Each wave pushes a large rate delta onto a fresh hot node, driving
    the relative drift of the serving snapshot past the 5% threshold so
    the engine re-solves at least once per wave — no forced ``resolve``
    ops anywhere.
    """
    lines = []
    request_id = 0
    queries = 0
    for wave, hot in enumerate((13, 211, 404, 77)):
        for _ in range(260):
            client = int(rng.integers(0, 500))
            lines.append(
                json.dumps(serve_request("query", id=request_id, client=client))
            )
            request_id += 1
            queries += 1
        lines.append(
            json.dumps(
                serve_request(
                    "update", id=f"wave-{wave}", client=hot, rate=2000.0
                )
            )
        )
        request_id += 1
    for _ in range(260):
        client = int(rng.integers(0, 500))
        lines.append(
            json.dumps(serve_request("query", id=request_id, client=client))
        )
        request_id += 1
        queries += 1
    lines.append(json.dumps(serve_request("stats", id="final")))
    return lines, queries


class TestServeAcceptance:
    def test_500_node_session_through_repro_serve(self, tmp_path, capsys):
        """ISSUE 10 acceptance: >=1000 queries, >=3 drift re-solves on a
        500-node geometric network through ``repro serve``; monotonic
        versions; stale + exact reads account for every query in the
        obs registry."""
        rng = np.random.default_rng(2026)
        lines, queries = _acceptance_lines(rng)
        assert queries >= 1000
        input_path = tmp_path / "session.jsonl"
        input_path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        out_path = tmp_path / "responses.jsonl"

        code = main(
            [
                "serve",
                "majority:5",
                "geometric:500:0.12",
                "--seed",
                "42",
                "--capacity",
                "2.0",
                "--scale",
                "large",
                "--landmarks",
                "6",
                "--warm-limit",
                "2",
                "--drift-threshold",
                "0.05",
                "--max-batch",
                "128",
                "--input",
                str(input_path),
                "--out",
                str(out_path),
            ]
        )
        assert code == 0

        responses = [
            json.loads(line)
            for line in out_path.read_text(encoding="utf-8").splitlines()
        ]
        assert len(responses) == len(lines)
        for response in responses:
            validate_serve_response(response)
            assert response["ok"] is True

        versions = [response["version"] for response in responses]
        assert all(a <= b for a, b in zip(versions, versions[1:]))
        assert versions[0] == 1

        stats = responses[-1]
        assert stats["op"] == "stats"
        assert stats["queries"] == queries
        assert stats["resolves"] >= 3
        assert versions[-1] == 1 + stats["resolves"]
        assert stats["stale_reads"] + stats["exact_reads"] == queries
        assert stats["stale_reads"] > 0
        assert stats["exact_reads"] > 0

        registry = default_registry()
        stale = registry.counter("serve.stale.reads").value
        exact = registry.counter("serve.exact.reads").value
        assert stale + exact == pytest.approx(float(queries))
        assert registry.counter("serve.resolve.count").value >= 3.0
        assert registry.counter("serve.request.count").value == len(lines)
        assert registry.gauge("serve.snapshot.version").value == versions[-1]
        batch = registry.histogram("serve.batch.size")
        assert batch.count > 0
        assert batch.maximum <= 128.0
        assert registry.histogram("serve.tick.seconds").quantile(0.99) >= 0.0

        summary_stderr = capsys.readouterr().err
        assert "re-solve(s)" in summary_stderr
