"""Tests for Lemma 3.1 (relay-via-v0)."""

import numpy as np
import pytest

from repro.core import (
    RELAY_FACTOR_BOUND,
    Placement,
    average_max_delay,
    best_relay_node,
    expected_max_delay,
    random_placement,
    relay_analysis,
    relay_delay,
)
from repro.network import (
    path_network,
    random_geometric_network,
    two_cluster_network,
    uniform_capacities,
)
from repro.quorums import AccessStrategy, grid, majority, wheel


def test_best_relay_node_minimizes_delta():
    system = majority(3)
    strategy = AccessStrategy.uniform(system)
    network = path_network(5)
    placement = Placement(system, network, {0: 0, 1: 1, 2: 2})
    v0 = best_relay_node(placement, strategy)
    delta_v0 = expected_max_delay(placement, strategy, v0)
    for node in network.nodes:
        assert delta_v0 <= expected_max_delay(placement, strategy, node) + 1e-12


def test_relay_delay_equation_8():
    """relay_delay must equal Avg_v d(v, v0) + Delta_f(v0) exactly."""
    system = majority(3)
    strategy = AccessStrategy.uniform(system)
    network = path_network(4)
    placement = Placement(system, network, {0: 0, 1: 1, 2: 3})
    v0 = 1
    metric = network.metric()
    expected = float(np.mean([metric.distance(v, v0) for v in network.nodes]))
    expected += expected_max_delay(placement, strategy, v0)
    assert relay_delay(placement, strategy, v0) == pytest.approx(expected)


# paper: Lemma 3.1
def test_lemma_3_1_bound_on_many_random_placements(rng):
    """The measured relay factor never exceeds 5 (Lemma 3.1)."""
    for trial in range(20):
        network = uniform_capacities(
            random_geometric_network(10, 0.5, rng=rng), 2.0
        )
        system = [majority(5), grid(2), wheel(4)][trial % 3]
        strategy = AccessStrategy.uniform(system)
        placement = random_placement(system, strategy, network, rng=rng)
        analysis = relay_analysis(placement, strategy)
        assert analysis.within_bound
        assert analysis.factor <= RELAY_FACTOR_BOUND + 1e-9
        assert analysis.relayed_delay >= analysis.direct_delay - 1e-9


def test_relay_factor_adversarial_two_clusters(rng):
    """Straddling a long bridge stresses the lemma; the bound still holds."""
    network = uniform_capacities(two_cluster_network(4, bridge_length=50.0), 2.0)
    system = majority(5)
    strategy = AccessStrategy.uniform(system)
    # Adversarial placement: elements split across clusters.
    nodes = list(network.nodes)
    mapping = {u: nodes[i % len(nodes)] for i, u in enumerate(system.universe)}
    placement = Placement(system, network, mapping)
    analysis = relay_analysis(placement, strategy)
    assert analysis.within_bound


def test_degenerate_zero_delay_placement():
    """All elements and all clients on one node: factor defined as 1."""
    system = majority(3)
    strategy = AccessStrategy.uniform(system)
    network = path_network(1)
    placement = Placement(system, network, {u: 0 for u in system.universe})
    analysis = relay_analysis(placement, strategy)
    assert analysis.direct_delay == 0.0
    assert analysis.factor == 1.0
    assert analysis.within_bound


def test_relay_with_rates_still_bounded(rng):
    """§6: the lemma survives non-uniform access rates."""
    network = uniform_capacities(random_geometric_network(8, 0.5, rng=rng), 2.0)
    system = majority(5)
    strategy = AccessStrategy.uniform(system)
    placement = random_placement(system, strategy, network, rng=rng)
    rates = {v: float(rng.uniform(0.1, 5.0)) for v in network.nodes}
    # The v0 of the lemma minimizes Delta_f, independent of rates; the
    # averaged inequality holds for any client weighting by the same
    # triangle-inequality argument.
    analysis = relay_analysis(placement, strategy, rates=rates)
    assert analysis.factor <= RELAY_FACTOR_BOUND + 1e-9
