"""Tests for the Gilbert-Malewicz partial quorum deployment problem."""

import numpy as np
import pytest

from repro.core import (
    solve_partial_deployment,
    solve_partial_deployment_exact,
)
from repro.exceptions import ValidationError
from repro.network import cycle_network, path_network, random_geometric_network
from repro.quorums import QuorumSystem, grid, wheel


@pytest.fixture
def wheel5_instance(rng):
    """wheel(5): exactly 5 quorums over 5 elements, matching 5 nodes."""
    return wheel(5), random_geometric_network(5, 0.7, rng=rng)


class TestShapeValidation:
    def test_mismatched_sizes_rejected(self, rng):
        system = wheel(5)  # 5 elements / 5 quorums
        network = random_geometric_network(6, 0.7, rng=rng)
        with pytest.raises(ValidationError, match=r"\|Q\| = \|V\| = \|U\|"):
            solve_partial_deployment(system, network)

    def test_grid_shape_works(self, rng):
        """grid(k) has k^2 quorums over k^2 elements — a natural fit."""
        system = grid(2)
        network = random_geometric_network(4, 0.8, rng=rng)
        result = solve_partial_deployment(system, network)
        assert result.average_delay >= 0

    def test_exact_size_guard(self, rng):
        system = grid(3)  # 9 = 9 = 9 but exceeds the exact-solver guard
        network = random_geometric_network(9, 0.6, rng=rng)
        with pytest.raises(ValidationError, match="n <= 5"):
            solve_partial_deployment_exact(system, network)


class TestBijectivity:
    def test_both_maps_are_bijections(self, wheel5_instance):
        system, network = wheel5_instance
        result = solve_partial_deployment(system, network)
        hosts = list(result.placement.as_dict().values())
        assert len(set(hosts)) == network.size
        quorums = list(result.quorum_of_client.values())
        assert sorted(quorums) == list(range(len(system)))

    def test_exact_maps_are_bijections(self, wheel5_instance):
        system, network = wheel5_instance
        result = solve_partial_deployment_exact(system, network)
        assert len(set(result.placement.as_dict().values())) == network.size
        assert sorted(result.quorum_of_client.values()) == list(range(5))


class TestOptimality:
    def test_alternation_never_beats_exact(self, rng):
        for seed in range(5):
            system = wheel(5)
            network = random_geometric_network(
                5, 0.7, rng=np.random.default_rng(seed)
            )
            alternating = solve_partial_deployment(system, network)
            exact = solve_partial_deployment_exact(system, network)
            assert exact.average_delay <= alternating.average_delay + 1e-9

    def test_alternation_usually_finds_optimum_on_wheel(self, rng):
        hits = 0
        for seed in range(6):
            system = wheel(5)
            network = random_geometric_network(
                5, 0.7, rng=np.random.default_rng(100 + seed)
            )
            alternating = solve_partial_deployment(system, network)
            exact = solve_partial_deployment_exact(system, network)
            if alternating.average_delay <= exact.average_delay + 1e-9:
                hits += 1
        assert hits >= 4  # the two-step local optimum is usually global

    def test_reported_delay_matches_definition(self, wheel5_instance):
        from repro.core.placement import total_delay_cost

        system, network = wheel5_instance
        result = solve_partial_deployment(system, network)
        direct = np.mean(
            [
                total_delay_cost(
                    result.placement, client, result.quorum_of_client[client]
                )
                for client in network.nodes
            ]
        )
        assert result.average_delay == pytest.approx(float(direct))

    def test_symmetric_cycle_instance(self):
        """On a symmetric instance (cycle + cyclic quorums of pairs of
        adjacent... singleton-ish) the optimum assigns each client a
        nearby quorum."""
        # 4 quorums over 4 elements, each {i, i+1 mod 4}: pairwise
        # intersecting fails -- use a star-anchored family instead.
        system = QuorumSystem(
            [{0, 1}, {0, 2}, {0, 3}, {0, 1, 2}], universe=range(4), check=False
        )
        network = cycle_network(4)
        exact = solve_partial_deployment_exact(system, network)
        alternating = solve_partial_deployment(system, network)
        assert exact.average_delay <= alternating.average_delay + 1e-9
        assert exact.average_delay > 0

    def test_path_collapse_favours_center(self):
        """Elements should gravitate to central path nodes for the heavy
        (rim) quorum."""
        system = wheel(5)
        network = path_network(5)
        exact = solve_partial_deployment_exact(system, network)
        # The hub element 0 appears in 4 of 5 quorums; its host should
        # not be a path endpoint under the optimal deployment.
        hub_host = exact.placement[0]
        assert hub_host in (1, 2, 3)
