"""Tests for JSON serialization round-trips."""

import math

import pytest

from repro import io
from repro.core import Placement, average_max_delay
from repro.exceptions import ValidationError
from repro.network import Network, path_network, two_cluster_network
from repro.quorums import AccessStrategy, QuorumSystem, grid, majority


class TestLabels:
    def test_scalars_pass_through(self):
        for label in ("a", 3, 2.5, True):
            assert io.decode_label(io.encode_label(label)) == label

    def test_tuples_roundtrip(self):
        label = ("a", (1, 2), 3)
        assert io.decode_label(io.encode_label(label)) == label

    def test_unsupported_label_rejected(self):
        with pytest.raises(ValidationError, match="not serializable"):
            io.encode_label(frozenset({1}))

    def test_malformed_encoded_label_rejected(self):
        with pytest.raises(ValidationError):
            io.decode_label({"x": 1})
        with pytest.raises(ValidationError):
            io.decode_label([1, 2])


class TestNetworkRoundtrip:
    def test_simple_roundtrip(self):
        original = path_network(5).with_capacities(2.0)
        restored = io.network_from_dict(io.network_to_dict(original))
        assert restored.nodes == original.nodes
        assert restored.edges() == original.edges()
        assert restored.capacities() == original.capacities()
        assert restored.name == original.name

    def test_infinite_capacity_encoded_as_null(self):
        original = path_network(3)  # default: infinite capacities
        data = io.network_to_dict(original)
        assert data["capacities"] == [None, None, None]
        restored = io.network_from_dict(data)
        assert restored.capacity(0) == math.inf

    def test_tuple_node_labels(self):
        original = two_cluster_network(3)
        restored = io.network_from_dict(io.network_to_dict(original))
        assert restored.nodes == original.nodes
        assert restored.distance(("a", 0), ("b", 0)) == original.distance(
            ("a", 0), ("b", 0)
        )

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValidationError):
            io.network_from_dict({"kind": "placement"})

    def test_capacity_length_mismatch_rejected(self):
        data = io.network_to_dict(path_network(3))
        data["capacities"] = [1.0]
        with pytest.raises(ValidationError):
            io.network_from_dict(data)


class TestSystemRoundtrip:
    def test_grid_roundtrip(self):
        original = grid(3)
        restored = io.system_from_dict(io.system_to_dict(original))
        assert restored == original
        assert restored.name == original.name

    def test_roundtrip_reverifies_intersection(self):
        data = io.system_to_dict(majority(3))
        data["quorums"] = [[0], [1]]  # break the intersection property
        with pytest.raises(Exception):
            io.system_from_dict(data)


class TestStrategyRoundtrip:
    def test_weights_preserved(self):
        system = majority(3)
        original = AccessStrategy.from_weights(system, [1, 2, 3])
        restored = io.strategy_from_dict(io.strategy_to_dict(original))
        assert restored.allclose(original)


class TestPlacementRoundtrip:
    def test_full_roundtrip_preserves_delays(self):
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        network = path_network(4).with_capacities(1.0)
        original = Placement(system, network, {0: 0, 1: 2, 2: 3})
        restored = io.placement_from_dict(io.placement_to_dict(original))
        assert restored.as_dict() == original.as_dict()
        assert average_max_delay(restored, strategy) == pytest.approx(
            average_max_delay(original, strategy)
        )


class TestFiles:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "network.json"
        original = path_network(4).with_capacities(1.5)
        io.save_json(io.network_to_dict(original), path)
        restored = io.network_from_dict(io.load_json(path))
        assert restored.edges() == original.edges()

    def test_saved_json_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        network = two_cluster_network(3)
        io.save_json(io.network_to_dict(network), a)
        io.save_json(io.network_to_dict(network), b)
        assert a.read_text() == b.read_text()
