"""Property-based equivalence tier for the sparse/lazy metric layer.

The contract under test: :class:`repro.network.lazymetric.LazyMetric`
is *byte-identical* to the dense :class:`repro.network.metric.Metric`
on every surface they share — rows, pairwise lookups, row blocks,
submatrices, and the §3.3 distance ordering — because both funnel
through the same batched scipy Dijkstra and scipy treats sources
independently.  Hypothesis drives seeded random geometric and random
tree instances; disconnected graphs (which the dense type rejects) are
checked against the raw batched Dijkstra matrix instead.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.network import (
    LazyMetric,
    Metric,
    MetricView,
    Network,
    dijkstra_batched,
    random_geometric_network,
)

# -- instance generators --------------------------------------------------------------


@st.composite
def geometric_networks(draw):
    """Seeded random geometric networks (the paper's experimental substrate)."""
    seed = draw(st.integers(min_value=0, max_value=2**16))
    n = draw(st.integers(min_value=2, max_value=24))
    radius = draw(st.sampled_from([0.3, 0.5, 0.8]))
    return random_geometric_network(n, radius, rng=np.random.default_rng(seed))


@st.composite
def tree_networks(draw):
    """Random trees: connected by construction, no generator patching."""
    n = draw(st.integers(min_value=2, max_value=16))
    edges = []
    for node in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        length = draw(st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
        edges.append((parent, node, length))
    return Network(range(n), edges)


@st.composite
def disconnected_networks(draw):
    """Two disjoint random trees — dense ``Metric`` rejects these."""
    sizes = draw(st.tuples(st.integers(2, 6), st.integers(2, 6)))
    edges = []
    offset = 0
    for size in sizes:
        for node in range(1, size):
            parent = draw(st.integers(min_value=0, max_value=node - 1))
            edges.append((offset + parent, offset + node, 1.0))
        offset += size
    return Network(range(offset), edges)


def _adjacency(network: Network) -> dict:
    return {
        u: {v: network.edge_length(u, v) for v in network.neighbors(u)}
        for u in network.nodes
    }


def _assert_bytes_equal(lazy_array, dense_array):
    lazy_array = np.ascontiguousarray(lazy_array)
    dense_array = np.ascontiguousarray(dense_array)
    assert lazy_array.shape == dense_array.shape
    assert lazy_array.dtype == dense_array.dtype
    assert lazy_array.tobytes() == dense_array.tobytes()


# -- dense equivalence ----------------------------------------------------------------


class TestDenseEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(network=st.one_of(geometric_networks(), tree_networks()))
    def test_rows_pairs_and_ordering_match_dense(self, network):
        dense = Metric.from_network(network)
        lazy = LazyMetric(network)
        for source in network.nodes:
            _assert_bytes_equal(
                lazy.distances_from(source), dense.distances_from(source)
            )
            assert lazy.nodes_by_distance(source) == dense.nodes_by_distance(source)
        u, v = network.nodes[0], network.nodes[-1]
        assert lazy.distance(u, v) == dense.distance(u, v)
        assert lazy.distance(u, u) == 0.0

    @settings(max_examples=20, deadline=None)
    @given(
        network=st.one_of(geometric_networks(), tree_networks()),
        data=st.data(),
    )
    def test_row_blocks_and_submatrices_match_dense(self, network, data):
        dense = Metric.from_network(network)
        lazy = LazyMetric(network)
        n = network.size
        start = data.draw(st.integers(min_value=0, max_value=n - 1))
        stop = data.draw(st.integers(min_value=start, max_value=n))
        _assert_bytes_equal(lazy.row_block(start, stop), dense.row_block(start, stop))
        sources = data.draw(
            st.lists(st.sampled_from(list(network.nodes)), min_size=1, max_size=4)
        )
        targets = data.draw(
            st.one_of(
                st.none(),
                st.lists(
                    st.sampled_from(list(network.nodes)), min_size=1, max_size=4
                ),
            )
        )
        _assert_bytes_equal(
            lazy.submatrix(sources, targets), dense.submatrix(sources, targets)
        )

    @settings(max_examples=15, deadline=None)
    @given(network=geometric_networks())
    def test_tiny_lru_still_byte_identical(self, network):
        """Evicting aggressively (capacity 1) must never change values."""
        dense = Metric.from_network(network)
        lazy = LazyMetric(network, max_cached_rows=1)
        for source in network.nodes:
            _assert_bytes_equal(
                lazy.distances_from(source), dense.distances_from(source)
            )
        # Revisit the first row after it was evicted: recomputed, not stale.
        first = network.nodes[0]
        _assert_bytes_equal(lazy.distances_from(first), dense.distances_from(first))
        info = lazy.cache_info()
        assert info.cached_rows == 1
        assert info.evictions >= network.size - 1

    def test_batch_larger_than_capacity_survives_mid_batch_eviction(self):
        """Regression: storing a batch's misses can evict rows of the
        same request (hits refreshed earlier, or misses stored earlier
        in an over-capacity batch) — assembly must not re-read them
        from the cache."""
        network = random_geometric_network(12, 0.8, rng=np.random.default_rng(0))
        dense = Metric.from_network(network)
        lazy = LazyMetric(network, max_cached_rows=3)
        # Seed a few rows as cache hits sitting in old LRU positions...
        for source in network.nodes[:3]:
            lazy.distances_from(source)
        # ...then request everything: 3 hits + 9 misses through a
        # 3-row cache forces eviction while the batch is in flight.
        _assert_bytes_equal(lazy.row_block(0, network.size), dense.matrix)
        _assert_bytes_equal(
            lazy.submatrix(network.nodes), dense.submatrix(network.nodes)
        )


# -- disconnected and degenerate instances --------------------------------------------


class TestEdgeCases:
    @settings(max_examples=20, deadline=None)
    @given(network=disconnected_networks())
    def test_disconnected_rows_match_batched_dijkstra(self, network):
        """Dense ``Metric`` raises on disconnection; the lazy view reports
        ``inf`` exactly as the batched Dijkstra does."""
        with pytest.raises(ValidationError):
            Metric.from_network(network)
        full = dijkstra_batched(_adjacency(network))
        lazy = LazyMetric(network)
        for i, source in enumerate(network.nodes):
            _assert_bytes_equal(lazy.distances_from(source), full[i])
        assert not np.all(np.isfinite(lazy.row_block(0, network.size)))

    def test_disconnected_ordering_puts_unreachable_last(self):
        network = Network(range(4), [(0, 1, 1.0), (2, 3, 1.0)])
        lazy = LazyMetric(network)
        assert lazy.nodes_by_distance(0) == [0, 1, 2, 3]
        assert lazy.nodes_by_distance(2) == [2, 3, 0, 1]

    def test_single_node_network(self):
        network = Network(range(1), [])
        lazy = LazyMetric(network)
        assert lazy.size == 1
        _assert_bytes_equal(lazy.distances_from(0), np.zeros(1))
        assert lazy.distance(0, 0) == 0.0
        assert lazy.nodes_by_distance(0) == [0]
        _assert_bytes_equal(lazy.row_block(0, 1), np.zeros((1, 1)))
        assert lazy.row_block(0, 0).shape == (0, 1)

    def test_unknown_node_and_bad_block_rejected(self, small_network):
        lazy = LazyMetric(small_network)
        with pytest.raises(ValidationError):
            lazy.distances_from("nope")
        with pytest.raises(ValidationError):
            lazy.node_index("nope")
        with pytest.raises(ValidationError):
            lazy.row_block(0, small_network.size + 1)
        with pytest.raises(ValidationError):
            lazy.row_block(-1, 2)

    def test_rows_are_read_only(self, small_network):
        lazy = LazyMetric(small_network)
        row = lazy.distances_from(small_network.nodes[0])
        with pytest.raises(ValueError):
            row[0] = 1.0


# -- protocol conformance -------------------------------------------------------------


class TestMetricViewProtocol:
    def test_both_implementations_satisfy_the_protocol(self, small_network):
        assert isinstance(Metric.from_network(small_network), MetricView)
        assert isinstance(LazyMetric(small_network), MetricView)

    def test_lazy_metric_never_exposes_a_matrix(self, small_network):
        """The deliberate omission that keeps lazy call sites honest."""
        assert not hasattr(LazyMetric(small_network), "matrix")
