"""Tests for the suite runner (algorithm comparison harness)."""

import math

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.experiments import (
    AlgorithmScore,
    compare_algorithms,
    small_suite,
    standard_suite,
)


@pytest.fixture
def comparison(rng):
    return compare_algorithms(small_suite(0)[0], rng=rng)


class TestComparison:
    def test_all_algorithms_present(self, comparison):
        names = {score.name for score in comparison.scores}
        assert names == {"qpp", "total_delay", "greedy", "random"}

    def test_exact_attached_for_small_instances(self, comparison):
        assert comparison.optimal_max_delay is not None
        assert comparison.optimal_max_delay > 0

    def test_feasible_baselines_respect_capacity(self, comparison):
        for name in ("greedy", "random"):
            score = comparison.score(name)
            if not score.failed:
                assert score.load_factor <= 1.0 + 1e-9

    def test_exact_lower_bounds_feasible_algorithms(self, comparison):
        optimal = comparison.optimal_max_delay
        for name in ("greedy", "random"):
            score = comparison.score(name)
            if not score.failed:
                assert score.max_delay >= optimal - 1e-9

    def test_qpp_within_approximation_factor(self, comparison):
        ratio = comparison.ratio_to_optimal("qpp")
        assert ratio <= 10.0 + 1e-6  # 5 * alpha/(alpha-1) at alpha = 2

    def test_total_delay_solver_wins_on_its_objective(self, comparison):
        total_score = comparison.score("total_delay").total_delay
        for name in ("greedy", "random"):
            score = comparison.score(name)
            if not score.failed:
                assert total_score <= score.total_delay + 1e-6

    def test_unknown_name_raises(self, comparison):
        with pytest.raises(ValidationError):
            comparison.score("simulated-annealing")

    def test_failure_scores_are_nan(self):
        failure = AlgorithmScore.failure("greedy")
        assert failure.failed
        assert math.isnan(failure.max_delay)

    def test_ratio_without_optimum_is_nan(self, rng):
        result = compare_algorithms(
            small_suite(0)[0], rng=rng, include_exact=False
        )
        assert math.isnan(result.ratio_to_optimal("qpp"))


class TestSuiteBreadth:
    def test_standard_suite_includes_new_families(self):
        names = {instance.name for instance in standard_suite(0)}
        assert any("fpp(2)" in n for n in names)
        assert any("paths(2)" in n for n in names)
        assert any("ba(" in n for n in names)
        assert any("fat_tree" in n for n in names)

    def test_extended_suite_instances_are_solvable(self, rng):
        """The newly added (system, topology) combos run end to end."""
        extended = [
            instance
            for instance in standard_suite(3)
            if "fpp" in instance.name or "paths" in instance.name
        ]
        assert extended
        result = compare_algorithms(
            extended[0], rng=rng, include_exact=False, candidate_sources=2
        )
        assert not result.score("qpp").failed
