"""Unit tests for the internal validation helpers."""

import math

import pytest

from repro._validation import (
    check_finite,
    check_integer_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
    check_probability_vector,
    require,
    unique_items,
)
from repro.exceptions import ValidationError


def test_require_passes_and_fails():
    require(True, "never raised")
    with pytest.raises(ValidationError, match="broken"):
        require(False, "broken")


@pytest.mark.parametrize("bad", [float("inf"), float("nan"), "x", None])
def test_check_finite_rejects(bad):
    with pytest.raises(ValidationError):
        check_finite(bad, "value")


def test_check_finite_accepts_ints_and_floats():
    assert check_finite(3, "v") == 3.0
    assert check_finite(2.5, "v") == 2.5


@pytest.mark.parametrize("bad", [0, -1, -0.5])
def test_check_positive_rejects_nonpositive(bad):
    with pytest.raises(ValidationError):
        check_positive(bad, "value")


def test_check_nonnegative_accepts_zero():
    assert check_nonnegative(0, "v") == 0.0
    with pytest.raises(ValidationError):
        check_nonnegative(-0.001, "v")


def test_check_probability_clamps_tolerance_noise():
    assert check_probability(1.0 + 1e-12, "p") == 1.0
    assert check_probability(-1e-12, "p") == 0.0
    with pytest.raises(ValidationError):
        check_probability(1.1, "p")


def test_probability_vector_normalizes_exactly():
    values = check_probability_vector([0.5, 0.5000000001], "p")
    assert math.isclose(sum(values), 1.0, rel_tol=0, abs_tol=1e-15)


def test_probability_vector_rejects_bad_total():
    with pytest.raises(ValidationError, match="sum to 1"):
        check_probability_vector([0.2, 0.2], "p")


def test_check_integer_in_range():
    assert check_integer_in_range(5, "n", low=1, high=5) == 5
    with pytest.raises(ValidationError):
        check_integer_in_range(0, "n", low=1)
    with pytest.raises(ValidationError):
        check_integer_in_range(6, "n", high=5)
    with pytest.raises(ValidationError):
        check_integer_in_range(2.0, "n")
    with pytest.raises(ValidationError):
        check_integer_in_range(True, "n")


def test_unique_items():
    assert unique_items([1, 2, 3], "xs") == [1, 2, 3]
    with pytest.raises(ValidationError, match="duplicate"):
        unique_items([1, 1], "xs")
