"""Property-based tests: layouts, the Majority formula, and serialization."""

from itertools import combinations
from math import comb

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import io
from repro.core import (
    concentric_matrix,
    grid_matrix_delay,
    majority_delay_formula,
)
from repro.network import Network

# -- Theorem B.1 as a property -------------------------------------------------------


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=4,
        max_size=4,
    )
)
@settings(max_examples=80, deadline=None)
def test_concentric_k2_beats_every_arrangement(values):
    from itertools import permutations

    ours = grid_matrix_delay(concentric_matrix(list(values)))
    for p in permutations(values):
        assert ours <= grid_matrix_delay(np.array(p).reshape(2, 2)) + 1e-9


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=9,
        max_size=9,
    ),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_concentric_k3_never_beaten_by_random_samples(values, seed):
    rng = np.random.default_rng(seed)
    ours = grid_matrix_delay(concentric_matrix(list(values)))
    array = np.array(values)
    for _ in range(50):
        rng.shuffle(array)
        assert ours <= grid_matrix_delay(array.reshape(3, 3)) + 1e-9


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=16,
        max_size=16,
    )
)
@settings(max_examples=40, deadline=None)
def test_matrix_delay_bounds(values):
    """The average max per quorum sits between the max entry's row/col
    reach and the global max."""
    matrix = concentric_matrix(list(values))
    delay = grid_matrix_delay(matrix)
    assert delay <= max(values) + 1e-9
    assert delay >= min(values) - 1e-9


# -- Equation (19) as a property --------------------------------------------------------


@given(
    st.integers(min_value=3, max_value=7),
    st.data(),
)
@settings(max_examples=40, deadline=None)
def test_majority_formula_matches_brute_force(n, data):
    t = data.draw(st.integers(min_value=n // 2 + 1, max_value=n))
    distances = data.draw(
        st.lists(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    taus = sorted(distances, reverse=True)
    expected = sum(
        max(taus[i] for i in quorum) for quorum in combinations(range(n), t)
    ) / comb(n, t)
    assert majority_delay_formula(n, t, distances) == pytest.approx(
        expected, abs=1e-9
    )


# -- serialization round-trips as properties -----------------------------------------------


label_strategy = st.recursive(
    st.one_of(
        st.integers(min_value=-1000, max_value=1000),
        st.text(max_size=8),
        st.booleans(),
    ),
    lambda children: st.tuples(children, children),
    max_leaves=4,
)


@given(label_strategy)
@settings(max_examples=100, deadline=None)
def test_label_roundtrip(label):
    assert io.decode_label(io.encode_label(label)) == label


@st.composite
def tree_networks(draw):
    n = draw(st.integers(min_value=2, max_value=7))
    edges = []
    for node in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        length = draw(st.floats(min_value=0.1, max_value=9.0, allow_nan=False))
        edges.append((parent, node, length))
    capacities = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    return Network(
        range(n), edges, capacities={i: c for i, c in enumerate(capacities)}
    )


@given(tree_networks())
@settings(max_examples=50, deadline=None)
def test_network_roundtrip_property(network):
    restored = io.network_from_dict(io.network_to_dict(network))
    assert restored.nodes == network.nodes
    assert restored.edges() == network.edges()
    assert restored.capacities() == network.capacities()
