"""Tests for read/write placement and the LP formulation options."""

import numpy as np
import pytest

from repro.core import (
    average_max_delay,
    capacity_violation_factor,
    node_loads,
    solve_rw_placement,
    solve_rw_ssqpp,
    solve_ssqpp,
)
from repro.core.ssqpp import build_ssqpp_lp
from repro.exceptions import ValidationError
from repro.experiments import small_suite
from repro.network import random_geometric_network, uniform_capacities
from repro.quorums import AccessStrategy, grid_rw, majority, read_one_write_all


@pytest.fixture
def network(rng):
    return uniform_capacities(random_geometric_network(9, 0.5, rng=rng), 1.0)


class TestRWPlacement:
    def test_single_source_guarantees_hold(self, network):
        rw = grid_rw(3)
        result = solve_rw_ssqpp(network=network, rw_system=rw, source=0, read_fraction=0.8)
        assert result.within_guarantees

    def test_read_heavy_workload_gets_lower_delay(self, network):
        """Rows are smaller than row+column writes, so a read-heavy mix
        should place to a lower average delay than write-only."""
        rw = grid_rw(3)
        read_heavy = solve_rw_placement(
            rw, network, read_fraction=0.95, candidate_sources=[0, 1]
        )
        write_only = solve_rw_placement(
            rw, network, read_fraction=0.0, candidate_sources=[0, 1]
        )
        assert read_heavy.average_delay <= write_only.average_delay + 1e-6

    def test_load_bound_respected(self, network):
        rw = grid_rw(3)
        result = solve_rw_placement(
            rw, network, read_fraction=0.5, alpha=2.0, candidate_sources=[0]
        )
        violation = capacity_violation_factor(result.placement, result.strategy)
        assert violation <= result.load_factor_bound + 1e-6

    def test_rowa_collapses_reads(self, network):
        """ROWA with an all-read workload: every singleton read can sit
        anywhere; delays should be near zero for the chosen source."""
        rw = read_one_write_all(3)
        result = solve_rw_ssqpp(rw, network, 0, read_fraction=1.0)
        # All elements fit near/at the source (capacity permitting).
        assert result.delay <= result.delay_bound + 1e-9

    def test_reported_delay_matches_placement(self, network):
        rw = grid_rw(2)
        result = solve_rw_placement(
            rw, network, read_fraction=0.6, candidate_sources=[0, 3]
        )
        assert result.average_delay == pytest.approx(
            average_max_delay(result.placement, result.strategy)
        )


class TestFormulations:
    def test_formulations_agree_on_suite(self):
        for instance in small_suite(31)[:4]:
            source = instance.network.nodes[0]
            values = {}
            for formulation in ("prefix", "cumulative"):
                model, *_ = build_ssqpp_lp(
                    instance.system,
                    instance.strategy,
                    instance.network,
                    source,
                    formulation=formulation,
                )
                values[formulation] = model.solve().objective
            assert values["prefix"] == pytest.approx(
                values["cumulative"], abs=1e-7
            )

    def test_cumulative_solve_keeps_guarantees(self, network):
        system = majority(5)
        strategy = AccessStrategy.uniform(system)
        result = solve_ssqpp(
            system, strategy, network, 0, formulation="cumulative"
        )
        assert result.within_guarantees

    def test_unknown_formulation_rejected(self, network):
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        with pytest.raises(ValidationError, match="formulation"):
            build_ssqpp_lp(system, strategy, network, 0, formulation="magic")

    def test_cumulative_has_fewer_nonzeros_per_constraint(self, network):
        """The point of the cumulative form: constraint rows stay O(1)."""
        system = majority(7)
        strategy = AccessStrategy.uniform(system)
        prefix_model, *_ = build_ssqpp_lp(
            system, strategy, network, 0, formulation="prefix"
        )
        cumulative_model, *_ = build_ssqpp_lp(
            system, strategy, network, 0, formulation="cumulative"
        )

        def max_prefix_row_terms(model):
            return max(
                len(c.expr.coefficients)
                for c in model._constraints
                if c.name.startswith("prefix[")
            )

        assert max_prefix_row_terms(cumulative_model) == 2
        assert max_prefix_row_terms(prefix_model) > 3
