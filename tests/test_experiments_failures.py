"""Tests for the failure-injection simulator."""

import numpy as np
import pytest

from repro.core import Placement, single_node_placement
from repro.experiments import simulate_with_failures
from repro.network import path_network, random_geometric_network, uniform_capacities
from repro.quorums import AccessStrategy, majority


@pytest.fixture
def spread(rng):
    system = majority(3)
    strategy = AccessStrategy.uniform(system)
    network = path_network(3).with_capacities(1.0)
    placement = Placement(system, network, {0: 0, 1: 1, 2: 2})
    return system, strategy, network, placement


class TestNoFailures:
    def test_zero_failure_rate_matches_baseline(self, rng, spread):
        _, strategy, _, placement = spread
        result = simulate_with_failures(
            placement,
            strategy,
            failure_probability=0.0,
            rng=rng,
            epochs=5,
            accesses_per_client=200,
        )
        assert result.success_rate == 1.0
        assert result.failover_rate == 0.0
        assert result.effective_delay == pytest.approx(
            result.baseline_delay, rel=0.05
        )
        assert result.delay_inflation == pytest.approx(1.0, rel=0.05)


class TestTotalFailure:
    def test_all_nodes_down_means_no_success(self, rng, spread):
        _, strategy, _, placement = spread
        result = simulate_with_failures(
            placement,
            strategy,
            failure_probability=1.0,
            rng=rng,
            epochs=3,
            accesses_per_client=10,
        )
        assert result.success_rate == 0.0
        assert result.effective_delay != result.effective_delay  # NaN


class TestPartialFailures:
    def test_success_rate_tracks_availability(self, rng, spread):
        """The empirical success rate should approximate the exact
        placement availability."""
        from repro.analysis import placement_availability

        _, strategy, _, placement = spread
        p_fail = 0.3
        expected = placement_availability(placement, p_fail)
        result = simulate_with_failures(
            placement,
            strategy,
            failure_probability=p_fail,
            rng=np.random.default_rng(0),
            epochs=400,
            accesses_per_client=5,
        )
        assert result.success_rate == pytest.approx(expected, abs=0.05)

    def test_failures_inflate_delay(self, rng):
        """On a path with the best quorum near one end, failovers push
        clients to farther quorums: effective delay >= baseline."""
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        network = path_network(5).with_capacities(1.0)
        placement = Placement(system, network, {0: 0, 1: 2, 2: 4})
        result = simulate_with_failures(
            placement,
            strategy,
            failure_probability=0.25,
            rng=np.random.default_rng(1),
            epochs=200,
            accesses_per_client=5,
        )
        assert result.failover_rate > 0.1
        # Greedy failover picks the *best alive* quorum, so inflation can
        # even dip below 1; it must stay in a sane band.
        assert 0.5 <= result.delay_inflation <= 3.0

    def test_collapsed_placement_binary_outcome(self, rng):
        """Single-node placement: every epoch either all accesses work
        (host alive) or all fail — success rate ~ 1 - p."""
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        network = path_network(4).with_capacities(10.0)
        placement = single_node_placement(system, network, node=1)
        p_fail = 0.4
        result = simulate_with_failures(
            placement,
            strategy,
            failure_probability=p_fail,
            rng=np.random.default_rng(2),
            epochs=500,
            accesses_per_client=2,
        )
        assert result.success_rate == pytest.approx(1 - p_fail, abs=0.06)
        assert result.failover_rate == 0.0  # nothing to fail over to

    def test_deterministic_given_rng(self, spread):
        _, strategy, _, placement = spread
        a = simulate_with_failures(
            placement, strategy, failure_probability=0.2,
            rng=np.random.default_rng(9), epochs=20, accesses_per_client=5,
        )
        b = simulate_with_failures(
            placement, strategy, failure_probability=0.2,
            rng=np.random.default_rng(9), epochs=20, accesses_per_client=5,
        )
        assert a == b
