"""Tests for baseline placements and the exhaustive optimal solvers."""

import pytest

from repro.core import (
    average_max_delay,
    average_total_delay,
    capacity_violation_factor,
    expected_max_delay,
    greedy_placement,
    is_capacity_respecting,
    random_placement,
    single_node_placement,
    solve_qpp_exact,
    solve_ssqpp_exact,
    solve_total_delay_exact,
)
from repro.exceptions import CapacityError, InfeasibleError, ValidationError
from repro.network import path_network, random_geometric_network, uniform_capacities
from repro.quorums import AccessStrategy, QuorumSystem, majority


class TestSingleNode:
    def test_collapses_everything_onto_median(self):
        system = majority(3)
        network = path_network(5)
        placement = single_node_placement(system, network)
        assert set(placement.as_dict().values()) == {2}

    def test_explicit_node(self):
        system = majority(3)
        network = path_network(5)
        placement = single_node_placement(system, network, node=4)
        assert set(placement.as_dict().values()) == {4}

    def test_single_node_has_delay_zero_from_host_but_high_load(self):
        system = majority(5)
        strategy = AccessStrategy.uniform(system)
        network = path_network(4).with_capacities(1.0)
        placement = single_node_placement(system, network, node=0)
        assert expected_max_delay(placement, strategy, 0) == 0.0
        # The host carries the whole expected quorum size worth of load.
        assert capacity_violation_factor(placement, strategy) == pytest.approx(3.0)


class TestRandomPlacement:
    def test_feasible_and_deterministic(self, rng, small_network, majority5):
        system, strategy = majority5
        placement = random_placement(system, strategy, small_network, rng=rng)
        assert is_capacity_respecting(placement, strategy)

    def test_impossible_instance_raises(self, rng):
        system = QuorumSystem([{0, 1, 2}])
        strategy = AccessStrategy.uniform(system)
        network = path_network(2).with_capacities(1.0)  # 3 unit loads, cap 2
        with pytest.raises(CapacityError):
            random_placement(system, strategy, network, rng=rng, attempts=5)


class TestGreedyPlacement:
    def test_greedy_feasible(self, rng, small_network, majority5):
        system, strategy = majority5
        placement = greedy_placement(system, strategy, small_network)
        assert is_capacity_respecting(placement, strategy)

    def test_greedy_packs_near_center(self):
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        network = path_network(9).with_capacities(10.0)
        placement = greedy_placement(system, strategy, network)
        # Everything fits on the 1-median (node 4).
        assert set(placement.as_dict().values()) == {4}

    def test_greedy_custom_center(self):
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        network = path_network(9).with_capacities(10.0)
        placement = greedy_placement(system, strategy, network, center=0)
        assert set(placement.as_dict().values()) == {0}

    def test_greedy_failure_raises(self):
        system = QuorumSystem([{0, 1}])
        strategy = AccessStrategy.uniform(system)
        network = path_network(1).with_capacities(1.0)
        with pytest.raises(CapacityError):
            greedy_placement(system, strategy, network)


class TestExactSolvers:
    def test_exact_solutions_respect_capacity(self, rng):
        network = uniform_capacities(random_geometric_network(6, 0.6, rng=rng), 1.0)
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        for solver in (
            lambda: solve_ssqpp_exact(system, strategy, network, network.nodes[0]),
            lambda: solve_qpp_exact(system, strategy, network),
            lambda: solve_total_delay_exact(system, strategy, network),
        ):
            result = solver()
            assert is_capacity_respecting(result.placement, strategy)

    def test_exact_qpp_objective_matches_placement(self, rng):
        network = uniform_capacities(random_geometric_network(5, 0.6, rng=rng), 1.0)
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        result = solve_qpp_exact(system, strategy, network)
        assert result.objective == pytest.approx(
            average_max_delay(result.placement, strategy)
        )

    def test_exact_total_delay_objective_matches(self, rng):
        network = uniform_capacities(random_geometric_network(5, 0.6, rng=rng), 1.0)
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        result = solve_total_delay_exact(system, strategy, network)
        assert result.objective == pytest.approx(
            average_total_delay(result.placement, strategy)
        )

    def test_exact_beats_baselines(self, rng, small_network, majority5):
        system, strategy = majority5
        exact = solve_qpp_exact(system, strategy, small_network)
        for _ in range(5):
            baseline = random_placement(system, strategy, small_network, rng=rng)
            assert exact.objective <= average_max_delay(baseline, strategy) + 1e-9

    def test_infeasible_detected(self):
        system = QuorumSystem([{0, 1, 2}])
        strategy = AccessStrategy.uniform(system)
        network = path_network(2).with_capacities(1.0)
        with pytest.raises(InfeasibleError):
            solve_qpp_exact(system, strategy, network)

    def test_oversized_search_guard(self):
        system = majority(9)
        strategy = AccessStrategy.uniform(system)
        network = path_network(12).with_capacities(10.0)
        with pytest.raises(ValidationError, match="refused"):
            solve_qpp_exact(system, strategy, network)

    def test_exact_ssqpp_with_rates_ignored_smoke(self, rng):
        """solve_qpp_exact accepts rates and optimizes the weighted avg."""
        network = uniform_capacities(random_geometric_network(5, 0.6, rng=rng), 2.0)
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        rates = {network.nodes[0]: 10.0}
        result = solve_qpp_exact(system, strategy, network, rates=rates)
        assert result.objective == pytest.approx(
            average_max_delay(result.placement, strategy, rates=rates)
        )
