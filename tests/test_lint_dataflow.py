"""Dataflow and contract analysis: CFG, abstract facts, rules R200-R204.

Each dataflow rule is exercised positively (it fires on the matching
fixture package under ``tests/fixtures/lint_dataflow/``) and negatively
(the corrected twin package stays silent), plus unit coverage for the
CFG lowering, the fact lattice and abstract evaluator, the contract
extractor (decorator and docstring forms), the traceability matrix and
its renderers, the runtime ``@contract`` enforcement, and the new
``--dataflow`` / ``trace`` CLI surfaces.
"""

from __future__ import annotations

import ast
import json
import shutil
import textwrap
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro._validation import CONTRACTS_ENV, contract, enforce_contract
from repro.exceptions import ValidationError
from repro.lint import (
    DataflowRule,
    Finding,
    LintConfig,
    ParseCache,
    build_dataflow_context,
    build_matrix,
    extract_module_contracts,
    lint_paths,
    registered_rules,
    render_matrix_json,
    render_matrix_markdown,
    render_matrix_text,
)
from repro.lint.cfg import Block, build_cfg, iter_reachable
from repro.lint.contracts import fact_from_spec
from repro.lint.dataflow import TOP, Fact, analyze_function, evaluate_expression
from repro.lint.dataflow_rules import (
    ContractCallRule,
    OraclePairRule,
    PaperTraceRule,
    SimplexInvariantRule,
    UnboundLocalRule,
)
from repro.lint.interproc import build_program_context
from repro.lint.trace import (
    AnchorSite,
    TheoremEntry,
    normalize_reference,
    parse_theorem_table,
    scan_anchor_comments,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint_dataflow"
SRC = REPO_ROOT / "src"


def run_dataflow_rule(
    case: str, package: str, rule_id: str, **overrides: object
) -> list[Finding]:
    """Run one dataflow rule over a fixture package."""
    config = replace(
        LintConfig(), select=frozenset({rule_id}), validated_packages=(), **overrides
    )
    return lint_paths([FIXTURES / case / package], config, dataflow=True)


def _case_config(case: str, package: str) -> dict[str, object]:
    """Overrides anchoring usage roots and design doc in a fixture case."""
    return {
        "library_packages": (package,),
        "project_root": str(FIXTURES / case),
        "usage_roots": ("usage",),
        "design_doc": "DESIGN.md",
    }


# -- R200: contract call sites ----------------------------------------------------


class TestContractCallRule:
    def test_violations_are_reported(self):
        findings = run_dataflow_rule("r200_bad", "shapepkg", "R200")
        messages = [f.message for f in findings]
        assert len(findings) == 3, "\n".join(messages)
        assert any("rank 2" in m and "'weights'" in m for m in messages)
        assert any("shape symbol 'n'" in m for m in messages)
        assert any("dtype kind 'float'" in m and "'int'" in m for m in messages)

    def test_clean_package_is_silent(self):
        findings = run_dataflow_rule("r200_ok", "shapeokpkg", "R200")
        assert not findings, [f.message for f in findings]

    def test_rule_is_registered(self):
        rule = registered_rules()["R200"]
        assert isinstance(rule, ContractCallRule)
        assert isinstance(rule, DataflowRule)


# -- R201: possibly-unbound locals ------------------------------------------------


class TestUnboundLocalRule:
    def test_three_unbound_patterns_fire(self):
        findings = run_dataflow_rule("r201_bad", "bindpkg", "R201")
        names = sorted(f.message.split("'")[1] for f in findings)
        assert names == ["result", "total", "value"], [f.message for f in findings]

    def test_all_paths_bound_is_silent(self):
        findings = run_dataflow_rule("r201_ok", "bindokpkg", "R201")
        assert not findings, [f.message for f in findings]

    def test_exemption_silences_one_function(self):
        findings = run_dataflow_rule(
            "r201_bad",
            "bindpkg",
            "R201",
            exempt=frozenset({"R201:bindpkg.mod.conditional_branch"}),
        )
        assert sorted(f.message.split("'")[1] for f in findings) == [
            "result",
            "total",
        ]

    def test_inline_suppression_silences_the_line(self, tmp_path):
        package = tmp_path / "sup"
        package.mkdir()
        (package / "__init__.py").write_text('"""p."""\n')
        (package / "mod.py").write_text(
            textwrap.dedent(
                '''
                """m."""


                def conditional(flag):
                    """Suppressed use."""
                    if flag:
                        value = 1.0
                    return value  # repro-lint: disable=R201
                '''
            )
        )
        config = replace(LintConfig(), select=frozenset({"R201"}))
        assert not lint_paths([package], config, dataflow=True)

    def test_rule_is_registered(self):
        assert isinstance(registered_rules()["R201"], UnboundLocalRule)


# -- R202: simplex invariants -----------------------------------------------------


class TestSimplexInvariantRule:
    def test_unproven_distributions_fire(self):
        findings = run_dataflow_rule("r202_bad", "simplexpkg", "R202")
        assert len(findings) == 2, [f.message for f in findings]
        assert all("probability simplex" in f.message for f in findings)

    def test_proven_distributions_are_silent(self):
        findings = run_dataflow_rule("r202_ok", "simplexokpkg", "R202")
        assert not findings, [f.message for f in findings]

    def test_rule_is_registered(self):
        assert isinstance(registered_rules()["R202"], SimplexInvariantRule)


# -- R203: oracle pairing ---------------------------------------------------------


class TestOraclePairRule:
    def test_broken_pairings_fire(self):
        findings = run_dataflow_rule(
            "r203_bad", "oraclepkg", "R203", **_case_config("r203_bad", "oraclepkg")
        )
        messages = [f.message for f in findings]
        assert len(findings) == 4, messages
        assert any("no vectorized twin 'area'" in m for m in messages)
        assert any("disagree on signature" in m for m in messages)
        assert sum("no usage-root module references both" in m for m in messages) == 2

    def test_paired_and_tested_is_silent(self):
        findings = run_dataflow_rule(
            "r203_ok", "oracleokpkg", "R203", **_case_config("r203_ok", "oracleokpkg")
        )
        assert not findings, [f.message for f in findings]

    def test_rule_is_registered(self):
        assert isinstance(registered_rules()["R203"], OraclePairRule)


# -- R204: paper traceability -----------------------------------------------------


class TestPaperTraceRule:
    def test_uncovered_rows_and_stale_anchors_fire(self):
        findings = run_dataflow_rule(
            "r204_bad", "tracepkg", "R204", **_case_config("r204_bad", "tracepkg")
        )
        messages = [f.message for f in findings]
        assert len(findings) == 3, messages
        assert any("no implementation anchor" in m for m in messages)
        assert any("no test anchor" in m for m in messages)
        assert any("'Thm 8.8'" in m and "matches no theorem row" in m for m in messages)

    def test_fully_anchored_table_is_silent(self):
        findings = run_dataflow_rule(
            "r204_ok", "traceokpkg", "R204", **_case_config("r204_ok", "traceokpkg")
        )
        assert not findings, [f.message for f in findings]

    def test_missing_design_doc_is_one_finding(self, tmp_path):
        package = tmp_path / "nodesign"
        package.mkdir()
        (package / "__init__.py").write_text('"""p."""\n')
        config = replace(
            LintConfig(),
            select=frozenset({"R204"}),
            project_root=str(tmp_path),
            design_doc="MISSING.md",
        )
        findings = lint_paths([package], config, dataflow=True)
        assert len(findings) == 1
        assert "design document not found" in findings[0].message

    def test_rule_is_registered(self):
        assert isinstance(registered_rules()["R204"], PaperTraceRule)


# -- CFG lowering -----------------------------------------------------------------


def _graph_of(source: str):
    func = ast.parse(textwrap.dedent(source)).body[0]
    assert isinstance(func, ast.FunctionDef)
    return build_cfg(func)


class TestControlFlowGraph:
    def test_blocks_and_locals(self):
        graph = _graph_of(
            """
            def f(flag):
                if flag:
                    value = 1.0
                else:
                    value = 2.0
                return value
            """
        )
        assert all(isinstance(block, Block) for block in graph.blocks)
        assert graph.params == ("flag",)
        assert graph.local_names() == frozenset({"flag", "value"})

    def test_reachability_covers_entry_and_exit(self):
        graph = _graph_of(
            """
            def f(items):
                total = 0.0
                for item in items:
                    total = total + item
                return total
            """
        )
        reachable = {block.index for block in iter_reachable(graph)}
        assert graph.entry in reachable
        assert graph.exit in reachable

    def test_global_declarations_are_not_locals(self):
        graph = _graph_of(
            """
            def f():
                global counter
                counter = 1
                return counter
            """
        )
        assert "counter" not in graph.local_names()


# -- Fact lattice and abstract evaluation -----------------------------------------


class TestFacts:
    def test_join_widens_disagreements(self):
        a = Fact(rank=1, dims=(4,), dtype="float", low=0.0, high=1.0)
        b = Fact(rank=1, dims=(5,), dtype="float", low=0.0, high=2.0)
        joined = a.join(b)
        assert joined.rank == 1
        assert joined.dims == (None,)
        assert joined.dtype == "float"
        assert joined.high is None and joined.low == 0.0

    def test_join_with_top_is_top(self):
        assert Fact(rank=2).join(TOP).is_top()

    def test_constructor_and_normalization_facts(self):
        env: dict[str, Fact] = {}
        zeros = evaluate_expression(ast.parse("np.zeros((3, 4))", mode="eval").body, env)
        assert zeros.rank == 2 and zeros.dims == (3, 4) and zeros.dtype == "float"
        normalized = evaluate_expression(
            ast.parse("x / x.sum()", mode="eval").body,
            {"x": Fact(rank=1, nonnegative=True)},
        )
        assert normalized.simplex and normalized.nonnegative

    def test_analyze_function_reports_unbound_and_snapshots_calls(self):
        graph = _graph_of(
            """
            def f(flag):
                if flag:
                    value = 1.0
                sink(value)
                return value
            """
        )
        result = analyze_function(graph)
        assert {name for name, _ in result.unbound_uses} == {"value"}
        assert result.call_environments, "expected a call-site snapshot"


# -- Contract extraction ----------------------------------------------------------


class TestContractExtraction:
    def test_decorator_and_docstring_forms(self):
        tree = ast.parse(
            textwrap.dedent(
                '''
                @contract(shapes={"x": ("n",)}, simplex=("x",))
                def f(x):
                    """Decorated."""


                def g(raw):
                    """Docstring form.

                    contract: raw: shape (n, n), dtype float
                    contract: return: shape (n,), simplex
                    """
                '''
            )
        )
        contracts, problems = extract_module_contracts("m", tree)
        assert not problems
        assert contracts["m.f"].params["x"]["simplex"] is True
        assert contracts["m.g"].params["raw"]["shape"] == ("n", "n")
        assert contracts["m.g"].returns["simplex"] is True

    def test_unknown_parameter_is_a_problem(self):
        tree = ast.parse(
            textwrap.dedent(
                '''
                @contract(shapes={"missing": ("n",)})
                def f(x):
                    """Bad."""
                '''
            )
        )
        _, problems = extract_module_contracts("m", tree)
        assert problems and "missing" in problems[0][1]

    def test_fact_from_spec_simplex_implies_nonnegative(self):
        fact = fact_from_spec({"shape": ("s",), "dtype": "float", "simplex": True})
        assert fact.rank == 1 and fact.simplex and fact.nonnegative


# -- Traceability matrix ----------------------------------------------------------


class TestTraceMatrix:
    def test_reference_normalization_forms(self):
        assert normalize_reference("Thm 1.2") == "T1.2"
        assert normalize_reference("Theorem 3.12") == "T3.12"
        assert normalize_reference("Lemma 3.1") == "L3.1"
        assert normalize_reference("Claim A.1") == "CA.1"
        assert normalize_reference("eq. (19)") == "Eq19"
        assert normalize_reference("section 4") is None

    def test_table_and_anchor_parsing(self):
        design = textwrap.dedent(
            """
            | ID | Statement | Ref | Modules |
            |----|-----------|-----|---------|
            | T1.2 | main | Thm 1.2 | `pkg.mod` (rates) |
            | E4 | experiment row | §6 | `pkg.other` |
            """
        )
        entries = parse_theorem_table(design)
        assert [entry.ident for entry in entries] == ["T1.2"]
        assert isinstance(entries[0], TheoremEntry)
        assert entries[0].modules == ("pkg.mod",)
        sites = scan_anchor_comments("# paper: Thm 1.2, §3\nx = 1\n", "mod.py")
        assert sites == (
            AnchorSite(path="mod.py", line=1, reference="Thm 1.2", ident="T1.2"),
        )

    def test_renderers_agree_on_coverage(self):
        design = "| ID | S | R | M |\n|--|--|--|--|\n| T1.2 | s | Thm 1.2 | `m` |\n"
        matrix = build_matrix(
            design, "D.md", {"m.py": "# paper: T1.2\n"}, {"t.py": "# paper: T1.2\n"}
        )
        assert matrix.covered("T1.2")
        payload = json.loads(render_matrix_json(matrix))
        assert payload["coverage"] == {"covered": 1, "total": 1}
        assert "✓" in render_matrix_markdown(matrix)
        assert "covered: 1/1" in render_matrix_text(matrix)


# -- DataflowContext plumbing -----------------------------------------------------


class TestDataflowContext:
    def test_analyses_are_cached_and_contracts_extracted(self):
        config = replace(LintConfig(), **_case_config("r202_ok", "simplexokpkg"))
        cache = ParseCache()
        files = [
            cache.parsed(path)
            for path in sorted((FIXTURES / "r202_ok" / "simplexokpkg").rglob("*.py"))
        ]
        program = build_program_context(files, config, cache=cache)
        context = build_dataflow_context(program, cache=cache)
        assert "simplexokpkg.mod.expect" in context.contracts
        first = context.analysis("simplexokpkg.mod.normalized_inline")
        assert context.analysis("simplexokpkg.mod.normalized_inline") is first

    def test_dataflow_run_parses_each_fixture_file_once(self):
        cache = ParseCache()
        config = replace(LintConfig(), **_case_config("r204_ok", "traceokpkg"))
        lint_paths(
            [FIXTURES / "r204_ok" / "traceokpkg"],
            config,
            whole_program=True,
            dataflow=True,
            cache=cache,
        )
        over_parsed = {
            str(path): count
            for path, count in cache.parse_counts.items()
            if count != 1
        }
        assert not over_parsed, f"files parsed more than once: {over_parsed}"


# -- Runtime contract enforcement -------------------------------------------------


class TestRuntimeContracts:
    def _spec(self):
        @contract(
            shapes={"matrix": ("n", "n"), "weights": ("n",)},
            dtypes={"weights": "float"},
            simplex=("weights",),
            returns={"shape": ("n",)},
        )
        def weigh(matrix, weights):
            return matrix @ weights

        return weigh

    def test_valid_call_passes(self):
        weigh = self._spec()
        matrix = np.zeros((3, 3))
        weights = np.full(3, 1.0 / 3.0)
        enforce_contract(weigh, weigh.__contract__, (matrix, weights), {})
        enforce_contract(
            weigh,
            weigh.__contract__,
            (matrix, weights),
            {},
            result=matrix @ weights,
            check_result=True,
        )

    def test_shape_symbol_mismatch_raises(self):
        weigh = self._spec()
        with pytest.raises(ValidationError, match="axis 0"):
            enforce_contract(
                weigh, weigh.__contract__, (np.zeros((3, 3)), np.ones(4) / 4.0), {}
            )

    def test_simplex_violation_raises(self):
        weigh = self._spec()
        with pytest.raises(ValidationError, match="sum to 1"):
            enforce_contract(
                weigh, weigh.__contract__, (np.zeros((3, 3)), np.ones(3)), {}
            )

    def test_decorator_is_inert_without_env(self, monkeypatch):
        weigh = self._spec()
        monkeypatch.delenv(CONTRACTS_ENV, raising=False)
        # Violating call passes silently: checks are opt-in.
        assert weigh(np.zeros((2, 2)), np.ones(2)).shape == (2,)
        monkeypatch.setenv(CONTRACTS_ENV, "1")
        with pytest.raises(ValidationError):
            weigh(np.zeros((2, 2)), np.ones(2))

    def test_kernels_export_contracts(self):
        from repro.core import _kernels

        spec = _kernels.expected_max_delays.__contract__
        assert spec["params"]["probabilities"]["simplex"] is True
        assert spec["params"]["members"]["shape"] == ("s", "L")


# -- CLI surfaces -----------------------------------------------------------------


class TestCommandLine:
    def test_lint_dataflow_flag_gates_exit(self, capsys, tmp_path):
        # Copied out of the repo so the CLI's upward config search finds
        # defaults instead of pyproject (which excludes fixture dirs).
        from repro.lint.cli import main

        package = tmp_path / "bindpkg"
        shutil.copytree(FIXTURES / "r201_bad" / "bindpkg", package)
        code = main([str(package), "--dataflow", "--select", "R201"])
        output = capsys.readouterr().out
        assert code == 1
        assert "R201" in output

    def test_trace_json_reports_full_coverage(self, capsys):
        from repro.cli import main

        assert main(["trace", str(SRC), "--json", "--check"]) == 0
        payload = json.loads(capsys.readouterr().out)
        covered = {t["id"]: t["covered"] for t in payload["theorems"]}
        assert covered["T1.2"] and covered["T1.3"] and covered["T1.4"]
        assert payload["coverage"]["covered"] == payload["coverage"]["total"]

    def test_trace_markdown_renders_table(self, capsys):
        from repro.cli import main

        assert main(["trace", str(SRC), "--markdown"]) == 0
        output = capsys.readouterr().out
        assert output.startswith("| Theorem |")
        assert "T1.4" in output
