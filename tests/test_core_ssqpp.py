"""Tests for the single-source LP-rounding algorithm (Theorems 3.7/3.12)."""

import numpy as np
import pytest

from repro.core import solve_ssqpp, solve_ssqpp_exact
from repro.core.ssqpp import _filter_fractions, build_ssqpp_lp
from repro.exceptions import InfeasibleError, ValidationError
from repro.experiments import small_suite
from repro.network import path_network, random_geometric_network, uniform_capacities
from repro.quorums import AccessStrategy, QuorumSystem, majority, wheel


class TestLPRelaxation:
    def test_lp_lower_bounds_exact_optimum(self, rng):
        for instance in small_suite(3)[:6]:
            source = instance.network.nodes[0]
            model, *_ = build_ssqpp_lp(
                instance.system, instance.strategy, instance.network, source
            )
            lp_value = model.solve().objective
            exact = solve_ssqpp_exact(
                instance.system, instance.strategy, instance.network, source
            )
            assert lp_value <= exact.objective + 1e-6

    def test_lp_zero_when_everything_fits_at_source(self):
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        network = path_network(3).with_capacities({0: 10.0, 1: 1.0, 2: 1.0})
        model, *_ = build_ssqpp_lp(system, strategy, network, 0)
        assert model.solve().objective == pytest.approx(0.0, abs=1e-9)

    def test_infeasible_when_element_fits_nowhere(self):
        system = QuorumSystem([{0}])
        strategy = AccessStrategy.uniform(system)
        network = path_network(2).with_capacities(0.5)  # load(0) = 1 > 0.5
        with pytest.raises(InfeasibleError, match="exceeding every node"):
            build_ssqpp_lp(system, strategy, network, 0)

    def test_strategy_mismatch_rejected(self):
        system = majority(3)
        other = AccessStrategy.uniform(majority(5))
        with pytest.raises(ValidationError):
            build_ssqpp_lp(system, other, path_network(3), 0)


class TestFiltering:
    def test_filtering_moves_mass_toward_source(self):
        raw = np.array([[0.25], [0.25], [0.25], [0.25]])
        filtered = _filter_fractions(raw, 2.0)
        assert filtered[:, 0] == pytest.approx([0.5, 0.5, 0.0, 0.0])

    def test_filtering_splits_at_threshold(self):
        raw = np.array([[0.4], [0.4], [0.2]])
        filtered = _filter_fractions(raw, 2.0)
        assert filtered[:, 0] == pytest.approx([0.8, 0.2, 0.0])

    def test_filtering_alpha_three(self):
        raw = np.array([[0.2], [0.2], [0.2], [0.2], [0.2]])
        filtered = _filter_fractions(raw, 3.0)
        assert filtered[:, 0] == pytest.approx([0.6, 0.4, 0.0, 0.0, 0.0])

    def test_filtering_preserves_unit_mass(self, rng):
        raw = rng.dirichlet(np.ones(6), size=4).T  # columns sum to 1
        for alpha in (1.5, 2.0, 4.0):
            filtered = _filter_fractions(raw, alpha)
            assert filtered.sum(axis=0) == pytest.approx(np.ones(4))
            assert (filtered <= alpha * raw + 1e-9).all()

    def test_filtering_rejects_deficient_columns(self):
        raw = np.array([[0.1], [0.1]])
        with pytest.raises(ValidationError, match="unit mass"):
            _filter_fractions(raw, 2.0)


# paper: Thm 3.7, Thm 3.12
class TestTheorem37:
    @pytest.mark.parametrize("alpha", [1.5, 2.0, 3.0, 5.0])
    def test_guarantees_hold_across_alpha(self, alpha, rng):
        network = uniform_capacities(random_geometric_network(9, 0.5, rng=rng), 0.8)
        system = majority(5)
        strategy = AccessStrategy.uniform(system)
        result = solve_ssqpp(system, strategy, network, 0, alpha=alpha)
        assert result.within_guarantees
        assert result.delay <= (alpha / (alpha - 1)) * result.lp_value + 1e-6
        assert result.max_load_factor <= alpha + 1 + 1e-6

    def test_lp_value_lower_bounds_exact(self, rng):
        suite = small_suite(5)
        for instance in suite[:4]:
            source = instance.network.nodes[0]
            result = solve_ssqpp(
                instance.system, instance.strategy, instance.network, source
            )
            exact = solve_ssqpp_exact(
                instance.system, instance.strategy, instance.network, source
            )
            assert result.lp_value <= exact.objective + 1e-6
            # Theorem 3.12 (alpha = 2): delay within 2x the true optimum.
            assert result.delay <= 2.0 * exact.objective + 1e-6

    def test_alpha_must_exceed_one(self):
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        network = path_network(3).with_capacities(1.0)
        with pytest.raises(ValidationError):
            solve_ssqpp(system, strategy, network, 0, alpha=1.0)

    def test_unknown_source_rejected(self):
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        network = path_network(3).with_capacities(1.0)
        with pytest.raises(ValidationError):
            solve_ssqpp(system, strategy, network, 99)

    def test_wheel_nonuniform_loads(self, rng):
        """The wheel's skewed loads exercise constraint (13) omission."""
        from repro.quorums import optimal_strategy

        system = wheel(5)
        strategy = optimal_strategy(system).strategy
        network = uniform_capacities(random_geometric_network(8, 0.6, rng=rng), 0.6)
        result = solve_ssqpp(system, strategy, network, 0, alpha=2.0)
        assert result.within_guarantees

    def test_result_reports_source(self, rng):
        network = uniform_capacities(random_geometric_network(6, 0.6, rng=rng), 1.0)
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        result = solve_ssqpp(system, strategy, network, 2)
        assert result.source == 2
        assert result.alpha == 2.0


class TestLargerAlphaTradeoff:
    def test_larger_alpha_weakly_improves_delay_bound(self, rng):
        """alpha/(alpha-1) shrinks with alpha: the *bound* tightens even
        if realized delays fluctuate."""
        network = uniform_capacities(random_geometric_network(8, 0.5, rng=rng), 0.9)
        system = majority(5)
        strategy = AccessStrategy.uniform(system)
        results = {
            alpha: solve_ssqpp(system, strategy, network, 0, alpha=alpha)
            for alpha in (1.5, 2.0, 4.0)
        }
        assert (
            results[1.5].delay_bound
            >= results[2.0].delay_bound
            >= results[4.0].delay_bound
        )
        # All share the same LP value (the LP does not depend on alpha).
        values = [r.lp_value for r in results.values()]
        assert max(values) - min(values) < 1e-6


class TestSharedLPFactory:
    """The incremental candidate-sweep machinery (SSQPPLPFactory)."""

    def _instance(self, rng):
        network = uniform_capacities(random_geometric_network(7, 0.6, rng=rng), 1.0)
        system = majority(3)
        return system, AccessStrategy.uniform(system), network

    def test_shared_factory_matches_fresh_solves(self, rng):
        from repro.core import SSQPPLPFactory

        system, strategy, network = self._instance(rng)
        factory = SSQPPLPFactory(system, strategy, network)
        for source in network.nodes:
            shared = solve_ssqpp(system, strategy, network, source, factory=factory)
            fresh = solve_ssqpp(system, strategy, network, source)
            assert shared.lp_value == pytest.approx(fresh.lp_value, abs=1e-9)
            assert shared.delay == pytest.approx(fresh.delay, abs=1e-9)
            assert shared.placement.as_dict() == fresh.placement.as_dict()

    def test_factory_released_after_each_solve(self, rng):
        from repro.core import SSQPPLPFactory

        system, strategy, network = self._instance(rng)
        factory = SSQPPLPFactory(system, strategy, network)
        base_vars = factory.model.num_variables
        solve_ssqpp(system, strategy, network, network.nodes[0], factory=factory)
        assert factory.model.num_variables == base_vars

    def test_factory_released_even_on_solver_failure(self, rng):
        from repro.core import SSQPPLPFactory

        system, strategy, network = self._instance(rng)
        factory = SSQPPLPFactory(system, strategy, network)
        base_vars = factory.model.num_variables
        from repro.exceptions import SolverError

        with pytest.raises(SolverError):
            solve_ssqpp(
                system, strategy, network, network.nodes[0],
                factory=factory, lp_method="no-such-method",
            )
        assert factory.model.num_variables == base_vars
        result = solve_ssqpp(
            system, strategy, network, network.nodes[0], factory=factory
        )
        assert result.lp_value >= 0.0

    def test_attach_twice_without_release_rejected(self, rng):
        from repro.core import SSQPPLPFactory

        system, strategy, network = self._instance(rng)
        factory = SSQPPLPFactory(system, strategy, network)
        factory.attach(network.nodes[0])
        with pytest.raises(ValidationError, match="release"):
            factory.attach(network.nodes[1])
        factory.release()
        factory.attach(network.nodes[1])

    def test_mismatched_factory_rejected(self, rng):
        from repro.core import SSQPPLPFactory

        system, strategy, network = self._instance(rng)
        other_network = path_network(4)
        factory = SSQPPLPFactory(system, strategy, other_network)
        with pytest.raises(ValidationError, match="different inputs"):
            solve_ssqpp(
                system, strategy, network, network.nodes[0], factory=factory
            )

    def test_cumulative_formulation_through_factory(self, rng):
        from repro.core import SSQPPLPFactory

        system, strategy, network = self._instance(rng)
        factory = SSQPPLPFactory(system, strategy, network, formulation="cumulative")
        source = network.nodes[0]
        shared = solve_ssqpp(
            system, strategy, network, source,
            formulation="cumulative", factory=factory,
        )
        fresh = solve_ssqpp(system, strategy, network, source)
        assert shared.lp_value == pytest.approx(fresh.lp_value, abs=1e-6)
