"""Contract-gated retries, deadlines and seeded fault injection.

The acceptance bar mirrors the parallel layer's: the retry wrapper must
recover *byte-identically* from a transient ``SolverError`` injected
mid-sweep into :func:`solve_qpp` — same objective, winning source,
lower bound and placement as the undisturbed run — and the contract
gate must fail closed: no certificate, an uncovered callable, or an
exception the contract never declared all refuse rather than guess.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.exceptions import (
    DeadlineExceededError,
    ErrorContractError,
    InfeasibleError,
    SolverError,
    ValidationError,
)
from repro.lint import build_error_contract_for_paths
from repro.network import random_geometric_network, uniform_capacities
from repro.obs.metrics import counter
from repro.quorums import AccessStrategy, majority
from repro.resilience import (
    CONTRACT_ENV_VAR,
    Deadline,
    contract_entry,
    deadline,
    fault_point,
    inject_faults,
    load_certificate,
    retrying,
    seeded_faults,
)

SRC = Path(__file__).resolve().parent.parent / "src"

pytestmark = pytest.mark.skipif(
    not SRC.is_dir(), reason="source tree not present"
)


@pytest.fixture(scope="module")
def contract():
    """The real error contract over ``src`` — what CI ships as an artifact."""
    return build_error_contract_for_paths([SRC])


@pytest.fixture(scope="module")
def qpp_instance():
    rng = np.random.default_rng(11)
    network = uniform_capacities(
        random_geometric_network(20, 0.4, rng=rng), 1.0
    )
    system = majority(3)
    strategy = AccessStrategy.uniform(system)
    candidates = list(network.nodes)[:4]
    return system, strategy, network, candidates


# -- load_certificate -------------------------------------------------------------


class TestLoadCertificate:
    def test_none_without_env_is_no_contract(self, monkeypatch):
        monkeypatch.delenv(CONTRACT_ENV_VAR, raising=False)
        assert load_certificate(None) is None

    def test_env_var_is_consulted(self, monkeypatch, tmp_path, contract):
        path = tmp_path / "contract.json"
        path.write_text(json.dumps(contract), encoding="utf-8")
        monkeypatch.setenv(CONTRACT_ENV_VAR, str(path))
        document = load_certificate(None)
        assert document is not None
        assert document["kind"] == "repro-error-contract"

    def test_mapping_passes_through(self, contract):
        assert load_certificate(contract)["functions"]

    def test_missing_file_is_an_error_not_absence(self, tmp_path):
        with pytest.raises(ValidationError, match="cannot read"):
            load_certificate(tmp_path / "nope.json")

    def test_bad_json_is_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{", encoding="utf-8")
        with pytest.raises(ValidationError, match="not valid JSON"):
            load_certificate(path)

    def test_wrong_kind_is_rejected(self):
        with pytest.raises(ValidationError, match="kind"):
            load_certificate({"kind": "something-else", "functions": {}})

    def test_missing_functions_is_rejected(self):
        with pytest.raises(ValidationError, match="functions"):
            load_certificate({"kind": "repro-error-contract"})


# -- the contract over src --------------------------------------------------------


class TestContractContents:
    def test_every_entry_point_is_covered_and_declared(self, contract):
        entries = [
            entry
            for entry in contract["functions"].values()
            if entry["entry_point"]
        ]
        assert len(entries) >= 21
        assert all(entry["declared"] is not None for entry in entries)

    def test_solve_qpp_declares_transient_solver_error(self, contract):
        entry = contract["functions"]["repro.core.qpp.solve_qpp"]
        assert "SolverError" in entry["transient"]
        assert "ValidationError" in entry["raises"]

    def test_contract_entry_resolves_callables(self, contract):
        from repro.core import solve_qpp

        entry = contract_entry(contract, solve_qpp)
        assert entry is not None
        assert entry["entry_point"] is True

        assert contract_entry(contract, lambda x: x) is None


# -- retrying ---------------------------------------------------------------------


def _named(fn, qualified="repro.core.qpp.solve_qpp"):
    """Give a test stub the qualified name of a covered entry point."""
    module, _, name = qualified.rpartition(".")
    fn.__module__ = module
    fn.__qualname__ = name
    return fn


class TestRetrying:
    def test_requires_a_contract(self, monkeypatch):
        monkeypatch.delenv(CONTRACT_ENV_VAR, raising=False)
        with pytest.raises(ErrorContractError, match="no error contract"):
            retrying(_named(lambda: None))

    def test_requires_coverage(self, contract):
        def orphan():
            return None

        with pytest.raises(ErrorContractError, match="not covered"):
            retrying(
                _named(orphan, "repro.core.qpp.not_in_the_contract"),
                certificate=contract,
            )

    def test_rejects_unnameable_callables(self, contract):
        with pytest.raises(ErrorContractError, match="lambda"):
            retrying(lambda: None, certificate=contract)

    def test_validates_attempts_and_backoff(self, contract):
        fn = _named(lambda: None)
        with pytest.raises(ValidationError, match="attempts"):
            retrying(fn, certificate=contract, attempts=0)
        with pytest.raises(ValidationError, match="backoff"):
            retrying(fn, certificate=contract, backoff=-1.0)

    def test_transient_failures_are_retried(self, contract):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise SolverError("transient")
            return "ok"

        before = counter("resilience.retry.count").value
        wrapped = retrying(_named(flaky), certificate=contract, attempts=3)
        assert wrapped() == "ok"
        assert calls["n"] == 3
        assert counter("resilience.retry.count").value == before + 2

    def test_exhausted_attempts_give_up(self, contract):
        def always():
            raise SolverError("never recovers")

        before = counter("resilience.giveup.count").value
        wrapped = retrying(_named(always), certificate=contract, attempts=2)
        with pytest.raises(SolverError):
            wrapped()
        assert counter("resilience.giveup.count").value == before + 1

    def test_declared_nontransient_is_not_retried(self, contract):
        calls = {"n": 0}

        def infeasible():
            calls["n"] += 1
            raise InfeasibleError("no placement fits")

        wrapped = retrying(
            _named(infeasible, "repro.gap.solver.solve_gap"),
            certificate=contract,
            attempts=5,
        )
        with pytest.raises(InfeasibleError):
            wrapped()
        assert calls["n"] == 1

    def test_undeclared_exception_raises_contract_error(self, contract):
        def surprising():
            raise KeyError("nobody declared this")

        wrapped = retrying(_named(surprising), certificate=contract)
        with pytest.raises(ErrorContractError, match="does not\n?.*declare"):
            wrapped()

    def test_programming_errors_propagate_verbatim(self, contract):
        def broken():
            raise TypeError("a real bug")

        wrapped = retrying(_named(broken), certificate=contract)
        with pytest.raises(TypeError):
            wrapped()

    def test_subclass_of_declared_is_covered_at_runtime(self, contract):
        # solve_gap declares ValidationError; IntersectionError descends
        # from it, so the MRO walk must classify it as declared.
        from repro.exceptions import IntersectionError

        def raises_subclass():
            raise IntersectionError(frozenset({1}), frozenset({2}))

        wrapped = retrying(
            _named(raises_subclass, "repro.gap.solver.solve_gap"),
            certificate=contract,
        )
        with pytest.raises(IntersectionError):
            wrapped()

    def test_backoff_schedule_is_exponential(self, contract):
        sleeps: list[float] = []

        def always():
            raise SolverError("flaky")

        wrapped = retrying(
            _named(always),
            certificate=contract,
            attempts=4,
            backoff=0.1,
            sleep=sleeps.append,
        )
        with pytest.raises(SolverError):
            wrapped()
        assert sleeps == pytest.approx([0.1, 0.2, 0.4])


# -- deadline ---------------------------------------------------------------------


class TestDeadline:
    def test_cooperative_check_between_attempts(self, contract):
        ticks = iter([0.0, 0.0, 10.0, 10.0, 10.0])

        def always():
            raise SolverError("flaky")

        budget = deadline(1.0, clock=lambda: next(ticks))
        wrapped = retrying(
            _named(always), certificate=contract, attempts=5, deadline=budget
        )
        with pytest.raises(DeadlineExceededError, match="deadline of 1s"):
            wrapped()

    def test_never_interrupts_a_successful_call(self, contract):
        ticks = iter([0.0, 0.0, 100.0])
        budget = deadline(1.0, clock=lambda: next(ticks))
        wrapped = retrying(
            _named(lambda: "done"), certificate=contract, deadline=budget
        )
        # First (and only) attempt starts inside the budget; the slow
        # result is still returned — the deadline never preempts.
        assert wrapped() == "done"

    def test_remaining_and_expired(self):
        ticks = iter([0.0, 0.3, 2.0, 2.0, 2.0, 2.0])
        budget = Deadline(1.0, clock=lambda: next(ticks))
        assert budget.remaining() == pytest.approx(0.7)
        assert budget.expired()
        with pytest.raises(DeadlineExceededError):
            budget.check("test")

    def test_validates_seconds(self):
        with pytest.raises(ValidationError, match="seconds"):
            Deadline(0.0)


# -- fault injection --------------------------------------------------------------


class TestFaultInjection:
    def test_fault_point_is_a_noop_when_unarmed(self):
        fault_point("qpp.candidate")  # must not raise

    def test_explicit_schedule_fires_once(self):
        hits = []
        with inject_faults({"p": [SolverError("one")]}):
            with pytest.raises(SolverError):
                fault_point("p")
            fault_point("p")  # queue drained: passes through
            hits.append(True)
        assert hits == [True]
        fault_point("p")  # disarmed outside the context

    def test_schedule_validates_instances(self):
        with pytest.raises(ValidationError, match="exception instance"):
            with inject_faults({"p": [SolverError]}):  # class, not instance
                pass

    def test_seeded_schedule_is_deterministic(self):
        def trace():
            outcomes = []
            with seeded_faults(seed=3, rate=0.5, points=("p",)):
                for _ in range(12):
                    try:
                        fault_point("p")
                        outcomes.append(0)
                    except SolverError:
                        outcomes.append(1)
            return outcomes

        first, second = trace(), trace()
        assert first == second
        assert 0 < sum(first) < 12

    def test_seeded_rate_is_validated(self):
        with pytest.raises(ValidationError, match="rate"):
            with seeded_faults(seed=0, rate=1.5):
                pass


# -- the headline: byte-identical mid-sweep recovery ------------------------------


class TestMidSweepRecovery:
    def test_retrying_recovers_byte_identically(self, contract, qpp_instance):
        from repro.core import solve_qpp

        system, strategy, network, candidates = qpp_instance
        baseline = solve_qpp(
            system, strategy, network=network, candidate_sources=candidates
        )
        wrapped = retrying(solve_qpp, certificate=contract, attempts=2)
        with inject_faults(
            {"qpp.candidate": [SolverError("injected mid-sweep")]}
        ):
            recovered = wrapped(
                system,
                strategy,
                network=network,
                candidate_sources=candidates,
            )
        assert recovered.objective == baseline.objective
        assert recovered.source == baseline.source
        assert recovered.optimum_lower_bound == baseline.optimum_lower_bound
        assert {
            u: recovered.placement[u] for u in system.universe
        } == {u: baseline.placement[u] for u in system.universe}

    def test_without_retrying_the_fault_escapes(self, qpp_instance):
        from repro.core import solve_qpp

        system, strategy, network, candidates = qpp_instance
        with inject_faults(
            {"qpp.candidate": [SolverError("injected mid-sweep")]}
        ):
            with pytest.raises(SolverError, match="injected"):
                solve_qpp(
                    system,
                    strategy,
                    network=network,
                    candidate_sources=candidates,
                )
