"""The unified SolveResult contract and its backward-compat shims."""

import dataclasses

import numpy as np
import pytest

from repro.core import (
    Provenance,
    QPPResult,
    SolveResult,
    TotalDelayResult,
    optimal_grid_placement,
    optimal_majority_placement,
    solve_qpp,
    solve_ssqpp,
    solve_total_delay,
)
from repro.core.results import SolveResult as ReexportedSolveResult
from repro.gap import GAPInstance, GAPSolution, solve_gap
from repro.network.generators import grid_network, uniform_capacities
from repro.quorums import AccessStrategy, majority


@pytest.fixture
def instance():
    network = grid_network(2, 2).with_capacities(2.0)
    system = majority(3)
    return system, AccessStrategy.uniform(system), network


def _gap_instance() -> GAPInstance:
    costs = np.array([[1.0, 2.0], [2.0, 1.0]])
    loads = np.array([[1.0, 1.0], [1.0, 1.0]])
    return GAPInstance(("j0", "j1"), ("m0", "m1"), costs, loads, np.array([2.0, 2.0]))


class TestProvenance:
    def test_of_sorts_parameters_and_stays_hashable(self):
        record = Provenance.of("qpp.relay-sweep", "Thm 1.2", beta=1, alpha=2.0)
        assert record.parameters == (("alpha", 2.0), ("beta", 1))
        hash(record)
        assert record.as_dict()["parameters"] == {"alpha": 2.0, "beta": 1}


class TestMigratedEntryPoints:
    """All five migrated solvers return SolveResult subclasses."""

    def test_solve_qpp(self, instance):
        system, strategy, network = instance
        result = solve_qpp(system, strategy, network=network)
        assert isinstance(result, SolveResult)
        assert isinstance(result, QPPResult)
        assert result.provenance.theorem == "Thm 1.2"
        assert result.telemetry is not None
        assert result.telemetry.metrics["lp.solve.count"] > 0

    def test_solve_total_delay(self, instance):
        system, strategy, network = instance
        result = solve_total_delay(system, strategy, network=network)
        assert isinstance(result, SolveResult)
        assert isinstance(result, TotalDelayResult)
        assert result.provenance.theorem == "Thm 1.4"
        assert result.telemetry is not None

    def test_optimal_grid_placement(self):
        network = grid_network(3, 3).with_capacities(2.0)
        result = optimal_grid_placement(network, network.nodes[0], k=2)
        assert isinstance(result, SolveResult)
        assert result.provenance.algorithm == "grid.concentric"

    def test_optimal_majority_placement(self):
        network = grid_network(3, 3).with_capacities(2.0)
        result = optimal_majority_placement(network, network.nodes[0], n=3)
        assert isinstance(result, SolveResult)
        assert result.provenance.parameters == (("n", 3), ("t", 2))

    def test_solve_gap(self):
        result = solve_gap(_gap_instance())
        assert isinstance(result, SolveResult)
        assert isinstance(result, GAPSolution)
        assert result.objective == pytest.approx(2.0)
        assert result.load_violation_factor <= 1.0 + 1e-9

    def test_reexport_is_the_same_class(self):
        assert ReexportedSolveResult is SolveResult


class TestLegacyAttributeShims:
    def test_qpp_average_delay_warns_and_forwards(self, instance):
        system, strategy, network = instance
        result = solve_qpp(system, strategy, network=network)
        with pytest.deprecated_call(match="average_delay"):
            assert result.average_delay == result.objective

    def test_total_delay_legacy_names_warn(self, instance):
        system, strategy, network = instance
        result = solve_total_delay(system, strategy, network=network)
        with pytest.deprecated_call(match="delay"):
            assert result.delay == result.objective
        with pytest.deprecated_call(match="max_load_factor"):
            assert result.max_load_factor == result.load_violation_factor

    def test_gap_legacy_names_warn(self):
        result = solve_gap(_gap_instance())
        with pytest.deprecated_call(match="assignment"):
            assert result.assignment == result.placement
        with pytest.deprecated_call(match="cost"):
            assert result.cost == result.objective
        with pytest.deprecated_call(match="lp_cost"):
            assert result.lp_cost == result.lp_value

    def test_unknown_attribute_raises_without_warning(self, instance):
        system, strategy, network = instance
        result = solve_qpp(system, strategy, network=network)
        with pytest.raises(AttributeError, match="nonsense"):
            result.nonsense
        with pytest.raises(AttributeError):
            result._private_probe

    def test_tuple_unpacking_warns(self):
        result = solve_gap(_gap_instance())
        with pytest.deprecated_call(match="tuple unpacking"):
            placement, objective, factor = result
        assert placement == result.placement
        assert objective == result.objective
        assert factor == result.load_violation_factor

    def test_result_is_frozen(self):
        result = solve_gap(_gap_instance())
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.objective = 0.0


class TestKeywordOnlySignatures:
    def test_legacy_positional_network_warns(self, instance):
        system, strategy, network = instance
        with pytest.deprecated_call(match="positionally is deprecated"):
            result = solve_qpp(system, strategy, network)
        assert isinstance(result, QPPResult)

    def test_legacy_positional_ssqpp_source_warns(self, instance):
        system, strategy, network = instance
        source = network.nodes[0]
        with pytest.deprecated_call(match="positionally is deprecated"):
            legacy = solve_ssqpp(system, strategy, network, source)
        canonical = solve_ssqpp(system, strategy, network=network, source=source)
        assert legacy.delay == pytest.approx(canonical.delay)

    def test_double_supply_raises_type_error(self, instance):
        system, strategy, network = instance
        with pytest.deprecated_call():
            with pytest.raises(TypeError, match="multiple values"):
                solve_qpp(system, strategy, network, network=network)

    def test_method_alias_warns_on_solve_gap(self):
        with pytest.deprecated_call(match="'method'.*deprecated"):
            result = solve_gap(_gap_instance(), method="highs-ds")
        assert result.objective == pytest.approx(2.0)

    def test_value_alias_warns_on_uniform_capacities(self):
        with pytest.deprecated_call(match="'value'.*deprecated"):
            network = uniform_capacities(grid_network(2, 2), value=1.5)
        assert network.capacity(network.nodes[0]) == pytest.approx(1.5)

    def test_alias_and_canonical_together_raise(self):
        with pytest.raises(TypeError, match="both"):
            solve_gap(_gap_instance(), method="highs-ds", lp_method="highs-ds")

    def test_canonical_signature_is_visible_to_inspect(self):
        import inspect

        parameters = inspect.signature(solve_qpp).parameters
        assert list(parameters)[:3] == ["system", "strategy", "network"]
        assert parameters["network"].kind is inspect.Parameter.KEYWORD_ONLY
