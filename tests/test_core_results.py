"""The unified SolveResult contract and its backward-compat shims."""

import dataclasses
import warnings

import numpy as np
import pytest

from repro.core import (
    Provenance,
    QPPResult,
    SolveResult,
    TotalDelayResult,
    optimal_grid_placement,
    optimal_majority_placement,
    solve_qpp,
    solve_ssqpp,
    solve_total_delay,
)
from repro.core.results import SolveResult as ReexportedSolveResult
from repro.gap import GAPInstance, GAPSolution, solve_gap
from repro.network.generators import grid_network, uniform_capacities
from repro.quorums import AccessStrategy, majority


@pytest.fixture
def instance():
    network = grid_network(2, 2).with_capacities(2.0)
    system = majority(3)
    return system, AccessStrategy.uniform(system), network


def _gap_instance() -> GAPInstance:
    costs = np.array([[1.0, 2.0], [2.0, 1.0]])
    loads = np.array([[1.0, 1.0], [1.0, 1.0]])
    return GAPInstance(("j0", "j1"), ("m0", "m1"), costs, loads, np.array([2.0, 2.0]))


class TestProvenance:
    def test_of_sorts_parameters_and_stays_hashable(self):
        record = Provenance.of("qpp.relay-sweep", "Thm 1.2", beta=1, alpha=2.0)
        assert record.parameters == (("alpha", 2.0), ("beta", 1))
        hash(record)
        assert record.as_dict()["parameters"] == {"alpha": 2.0, "beta": 1}


class TestMigratedEntryPoints:
    """All five migrated solvers return SolveResult subclasses."""

    def test_solve_qpp(self, instance):
        system, strategy, network = instance
        result = solve_qpp(system, strategy, network=network)
        assert isinstance(result, SolveResult)
        assert isinstance(result, QPPResult)
        assert result.provenance.theorem == "Thm 1.2"
        assert result.telemetry is not None
        assert result.telemetry.metrics["lp.solve.count"] > 0

    def test_solve_total_delay(self, instance):
        system, strategy, network = instance
        result = solve_total_delay(system, strategy, network=network)
        assert isinstance(result, SolveResult)
        assert isinstance(result, TotalDelayResult)
        assert result.provenance.theorem == "Thm 1.4"
        assert result.telemetry is not None

    def test_optimal_grid_placement(self):
        network = grid_network(3, 3).with_capacities(2.0)
        result = optimal_grid_placement(network, network.nodes[0], k=2)
        assert isinstance(result, SolveResult)
        assert result.provenance.algorithm == "grid.concentric"

    def test_optimal_majority_placement(self):
        network = grid_network(3, 3).with_capacities(2.0)
        result = optimal_majority_placement(network, network.nodes[0], n=3)
        assert isinstance(result, SolveResult)
        assert result.provenance.parameters == (("n", 3), ("t", 2))

    def test_solve_gap(self):
        result = solve_gap(_gap_instance())
        assert isinstance(result, SolveResult)
        assert isinstance(result, GAPSolution)
        assert result.objective == pytest.approx(2.0)
        assert result.load_violation_factor <= 1.0 + 1e-9

    def test_reexport_is_the_same_class(self):
        assert ReexportedSolveResult is SolveResult


class TestLegacyAttributeShims:
    def test_qpp_average_delay_warns_and_forwards(self, instance):
        system, strategy, network = instance
        result = solve_qpp(system, strategy, network=network)
        with pytest.warns(FutureWarning, match="average_delay"):
            assert result.average_delay == result.objective

    def test_total_delay_legacy_names_warn(self, instance):
        system, strategy, network = instance
        result = solve_total_delay(system, strategy, network=network)
        with pytest.warns(FutureWarning, match="delay"):
            assert result.delay == result.objective
        with pytest.warns(FutureWarning, match="max_load_factor"):
            assert result.max_load_factor == result.load_violation_factor

    def test_gap_legacy_names_warn(self):
        result = solve_gap(_gap_instance())
        with pytest.warns(FutureWarning, match="assignment"):
            assert result.assignment == result.placement
        with pytest.warns(FutureWarning, match="cost"):
            assert result.cost == result.objective
        with pytest.warns(FutureWarning, match="lp_cost"):
            assert result.lp_cost == result.lp_value

    def test_unknown_attribute_raises_without_warning(self, instance):
        system, strategy, network = instance
        result = solve_qpp(system, strategy, network=network)
        with pytest.raises(AttributeError, match="nonsense"):
            result.nonsense
        with pytest.raises(AttributeError):
            result._private_probe

    def test_tuple_unpacking_warns(self):
        result = solve_gap(_gap_instance())
        with pytest.warns(FutureWarning, match="tuple unpacking"):
            placement, objective, factor = result
        assert placement == result.placement
        assert objective == result.objective
        assert factor == result.load_violation_factor

    def test_result_is_frozen(self):
        result = solve_gap(_gap_instance())
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.objective = 0.0


class TestKeywordOnlySignatures:
    def test_legacy_positional_network_warns(self, instance):
        system, strategy, network = instance
        with pytest.warns(FutureWarning, match="positionally is deprecated"):
            result = solve_qpp(system, strategy, network)
        assert isinstance(result, QPPResult)

    def test_legacy_positional_ssqpp_source_warns(self, instance):
        system, strategy, network = instance
        source = network.nodes[0]
        with pytest.warns(FutureWarning, match="positionally is deprecated"):
            legacy = solve_ssqpp(system, strategy, network, source)
        canonical = solve_ssqpp(system, strategy, network=network, source=source)
        assert legacy.delay == pytest.approx(canonical.delay)

    def test_double_supply_raises_type_error(self, instance):
        system, strategy, network = instance
        with pytest.warns(FutureWarning):
            with pytest.raises(TypeError, match="multiple values"):
                solve_qpp(system, strategy, network, network=network)

    def test_method_alias_warns_on_solve_gap(self):
        with pytest.warns(FutureWarning, match="'method'.*deprecated"):
            result = solve_gap(_gap_instance(), method="highs-ds")
        assert result.objective == pytest.approx(2.0)

    def test_value_alias_warns_on_uniform_capacities(self):
        with pytest.warns(FutureWarning, match="'value'.*deprecated"):
            network = uniform_capacities(grid_network(2, 2), value=1.5)
        assert network.capacity(network.nodes[0]) == pytest.approx(1.5)

    def test_alias_and_canonical_together_raise(self):
        with pytest.raises(TypeError, match="both"):
            solve_gap(_gap_instance(), method="highs-ds", lp_method="highs-ds")

    def test_canonical_signature_is_visible_to_inspect(self):
        import inspect

        parameters = inspect.signature(solve_qpp).parameters
        assert list(parameters)[:3] == ["system", "strategy", "network"]
        assert parameters["network"].kind is inspect.Parameter.KEYWORD_ONLY


class TestFutureWarningGraduation:
    """PR 5's deprecations graduated to FutureWarning with removal notes.

    Every legacy path emits exactly ONE FutureWarning (never a
    DeprecationWarning, never a duplicate) whose message names the
    canonical replacement and announces removal.
    """

    @staticmethod
    def _sole_future_warning(caught):
        assert len(caught) == 1, [str(w.message) for w in caught]
        warning = caught[0]
        assert warning.category is FutureWarning
        message = str(warning.message)
        assert "next major release" in message
        return message

    def test_positional_network_single_warning_names_keyword(self, instance):
        system, strategy, network = instance
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            solve_qpp(system, strategy, network)
        message = self._sole_future_warning(caught)
        assert "network=..." in message

    def test_kwarg_alias_single_warning_names_canonical(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            solve_gap(_gap_instance(), method="highs-ds")
        message = self._sole_future_warning(caught)
        assert "'lp_method'" in message

    def test_attribute_alias_single_warning_names_canonical(self):
        result = solve_gap(_gap_instance())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result.cost
        message = self._sole_future_warning(caught)
        assert "GAPSolution.objective" in message

    def test_tuple_unpacking_single_warning_names_fields(self):
        result = solve_gap(_gap_instance())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _placement, _objective, _factor = result
        message = self._sole_future_warning(caught)
        assert "placement, objective, load_violation_factor" in message

    def test_no_legacy_path_emits_deprecation_warning(self, instance):
        system, strategy, network = instance
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            solve_qpp(system, strategy, network).average_delay
        assert all(w.category is not DeprecationWarning for w in caught)
        assert any(w.category is FutureWarning for w in caught)
