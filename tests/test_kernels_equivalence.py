"""Equivalence layer: vectorized kernels vs the scalar paper oracles.

Every public evaluator in :mod:`repro.core.placement` dispatches to the
array kernels in :mod:`repro.core._kernels`; the scalar paper-literal
loops survive as ``*_reference``.  These property tests pin the two
implementations together to 1e-12 across random networks, quorum
systems, strategies and client rates, including zero-rate clients and
(for the raw kernels, which accept arbitrary matrices) ``inf``
disconnected-pair distances.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    average_max_delay,
    average_max_delay_reference,
    average_total_delay,
    average_total_delay_reference,
    capacity_violation_factor,
    capacity_violation_factor_reference,
    expected_max_delay,
    expected_max_delay_reference,
    expected_total_delay,
    expected_total_delay_reference,
    node_loads,
    node_loads_reference,
)
from repro.core._kernels import (
    capacity_factors,
    expected_max_delays,
    expected_total_delays,
    node_load_vector,
    quorum_member_matrix,
)
from repro.network import Network
from repro.quorums import AccessStrategy, QuorumSystem

from repro.core import Placement

RTOL = 1e-12


def _close(a: float, b: float) -> bool:
    if math.isinf(a) or math.isinf(b):
        return a == b
    return abs(a - b) <= RTOL * max(1.0, abs(b))


# -- generators -----------------------------------------------------------------------


@st.composite
def networks(draw):
    """Connected random networks: a random tree plus extra random edges."""
    n = draw(st.integers(min_value=2, max_value=8))
    edges = []
    for node in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        length = draw(st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
        edges.append((parent, node, length))
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            length = draw(st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
            edges.append((u, v, length))
    capacities = draw(
        st.one_of(
            st.none(),
            st.floats(min_value=0.5, max_value=5.0, allow_nan=False),
        )
    )
    network = Network(range(n), edges)
    return network if capacities is None else network.with_capacities(capacities)


@st.composite
def instances(draw):
    """(network, system, strategy, placement, rates) tuples.

    Quorums share an anchor element so the system is intersecting;
    strategy weights may zero out some quorums (support subset); rates
    may zero out some clients.
    """
    network = draw(networks())
    n_elements = draw(st.integers(min_value=2, max_value=5))
    anchor = 0
    quorums = []
    seen = set()
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        extra = draw(
            st.sets(
                st.integers(min_value=1, max_value=n_elements - 1),
                max_size=n_elements - 1,
            )
        )
        quorum = frozenset({anchor} | extra)
        if quorum not in seen:
            seen.add(quorum)
            quorums.append(quorum)
    system = QuorumSystem(quorums, universe=range(n_elements), check=False)
    weights = [
        draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
        for _ in quorums
    ]
    if sum(weights) <= 0:
        weights[draw(st.integers(min_value=0, max_value=len(quorums) - 1))] = 1.0
    strategy = AccessStrategy.from_weights(system, weights)
    mapping = {
        u: network.nodes[
            draw(st.integers(min_value=0, max_value=network.size - 1))
        ]
        for u in system.universe
    }
    placement = Placement(system, network, mapping)
    rates = None
    if draw(st.booleans()):
        rates = {
            v: draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
            for v in network.nodes
        }
        if sum(rates.values()) <= 0:
            rates[network.nodes[0]] = 1.0
    return network, system, strategy, placement, rates


# -- evaluator equivalence ------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(instances())
def test_expected_max_delay_matches_reference(case):
    network, _, strategy, placement, _ = case
    for client in network.nodes:
        vec = expected_max_delay(placement, strategy, client)
        ref = expected_max_delay_reference(placement, strategy, client)
        assert _close(vec, ref), (client, vec, ref)


@settings(max_examples=200, deadline=None)
@given(instances())
def test_average_max_delay_matches_reference(case):
    _, _, strategy, placement, rates = case
    vec = average_max_delay(placement, strategy, rates=rates)
    ref = average_max_delay_reference(placement, strategy, rates=rates)
    assert _close(vec, ref), (vec, ref)


@settings(max_examples=200, deadline=None)
@given(instances())
def test_expected_total_delay_matches_reference(case):
    network, _, strategy, placement, _ = case
    for client in network.nodes:
        vec = expected_total_delay(placement, strategy, client)
        ref = expected_total_delay_reference(placement, strategy, client)
        assert _close(vec, ref), (client, vec, ref)


@settings(max_examples=200, deadline=None)
@given(instances())
def test_average_total_delay_matches_reference(case):
    _, _, strategy, placement, rates = case
    vec = average_total_delay(placement, strategy, rates=rates)
    ref = average_total_delay_reference(placement, strategy, rates=rates)
    assert _close(vec, ref), (vec, ref)


@settings(max_examples=200, deadline=None)
@given(instances())
def test_node_loads_match_reference(case):
    network, _, strategy, placement, _ = case
    vec = node_loads(placement, strategy)
    ref = node_loads_reference(placement, strategy)
    assert set(vec) == set(network.nodes)
    for node in network.nodes:
        assert _close(vec[node], ref.get(node, 0.0)), node


@settings(max_examples=200, deadline=None)
@given(instances())
def test_capacity_violation_factor_matches_reference(case):
    _, _, strategy, placement, _ = case
    vec = capacity_violation_factor(placement, strategy)
    ref = capacity_violation_factor_reference(placement, strategy)
    assert _close(vec, ref), (vec, ref)


# -- raw-kernel edge cases: inf distances, zero loads ---------------------------------


@st.composite
def raw_max_delay_cases(draw):
    """Raw (matrix, image, members, probabilities) with optional inf."""
    clients = draw(st.integers(min_value=1, max_value=5))
    n = draw(st.integers(min_value=2, max_value=6))
    matrix = np.array(
        [
            [
                draw(
                    st.one_of(
                        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                        st.just(float("inf")),
                    )
                )
                for _ in range(n)
            ]
            for _ in range(clients)
        ]
    )
    universe = draw(st.integers(min_value=1, max_value=4))
    image = np.array(
        [draw(st.integers(min_value=0, max_value=n - 1)) for _ in range(universe)],
        dtype=np.intp,
    )
    s = draw(st.integers(min_value=1, max_value=3))
    width = draw(st.integers(min_value=1, max_value=universe))
    members = np.array(
        [
            [
                draw(st.integers(min_value=0, max_value=universe - 1))
                for _ in range(width)
            ]
            for _ in range(s)
        ],
        dtype=np.intp,
    )
    probabilities = np.array(
        [draw(st.floats(min_value=0.01, max_value=1.0, allow_nan=False)) for _ in range(s)]
    )
    return matrix, image, members, probabilities


@settings(max_examples=200, deadline=None)
@given(raw_max_delay_cases())
def test_expected_max_delays_kernel_vs_loop_with_inf(case):
    matrix, image, members, probabilities = case
    result = expected_max_delays(matrix, image, members, probabilities)
    for v in range(matrix.shape[0]):
        expected = 0.0
        for row, p in zip(members, probabilities):
            expected += p * max(matrix[v, image[u]] for u in row)
        assert _close(float(result[v]), float(expected)), v


@settings(max_examples=200, deadline=None)
@given(raw_max_delay_cases())
def test_expected_total_delays_kernel_vs_loop_with_inf(case):
    matrix, image, _, _ = case
    universe = image.shape[0]
    # Strictly positive loads: inf * 0 is nan in both implementations, so
    # the zero-load story is covered separately on finite matrices.
    loads = np.linspace(0.5, 1.5, universe)
    result = expected_total_delays(matrix, image, loads)
    for v in range(matrix.shape[0]):
        expected = sum(loads[j] * matrix[v, image[j]] for j in range(universe))
        assert _close(float(result[v]), float(expected)), v


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
        ),
        min_size=0,
        max_size=10,
    )
)
def test_node_load_vector_kernel_vs_loop_with_zero_loads(pairs):
    size = 8
    image = np.array([i for i, _ in pairs], dtype=np.intp)
    loads = np.array([w for _, w in pairs])
    result = node_load_vector(image, loads, size)
    expected = [0.0] * size
    for i, w in pairs:
        expected[i] += w
    assert result.shape == (size,)
    for v in range(size):
        assert _close(float(result[v]), expected[v]), v


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            st.one_of(
                st.just(0.0),
                st.just(float("inf")),
                st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
            ),
        ),
        min_size=1,
        max_size=10,
    )
)
def test_capacity_factors_kernel_vs_loop(pairs):
    loads = np.array([l for l, _ in pairs])
    caps = np.array([c for _, c in pairs])
    result = capacity_factors(loads, caps)
    for v, (load, cap) in enumerate(pairs):
        if load <= 0:
            expected = 0.0
        elif cap == 0:
            expected = float("inf")
        elif math.isinf(cap):
            expected = 0.0
        else:
            expected = load / cap
        assert _close(float(result[v]), expected), v


# -- structural checks ----------------------------------------------------------------


def test_quorum_member_matrix_padding_repeats_real_member():
    system = QuorumSystem([frozenset({0, 1, 2}), frozenset({0, 3})], universe=range(4))
    members = quorum_member_matrix(system, [0, 1])
    assert members.shape == (2, 3)
    assert sorted(set(members[0])) == [0, 1, 2]
    # The short row is padded with its own first member, never a stranger.
    assert set(members[1]) == {0, 3}


def test_quorum_member_matrix_rejects_bad_index():
    system = QuorumSystem([frozenset({0, 1}), frozenset({0, 2})], universe=range(3))
    with pytest.raises(Exception):
        quorum_member_matrix(system, [5])
