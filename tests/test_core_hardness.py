"""Tests for the Theorem 3.6 NP-hardness reduction.

The reduction's whole point is the exact affine correspondence between
schedule cost and placement delay; these tests certify it bidirectionally
on exhaustively solvable instances.
"""

import numpy as np
import pytest

from repro.core import (
    reduce_scheduling_to_ssqpp,
    solve_ssqpp_exact,
)
from repro.exceptions import ValidationError
from repro.scheduling import (
    SchedulingInstance,
    random_woeginger_instance,
    solve_scheduling_exact,
)


@pytest.fixture
def reduction(rng):
    instance = random_woeginger_instance(3, 3, rng=rng, edge_probability=0.5)
    return reduce_scheduling_to_ssqpp(instance)


# paper: Thm 3.6
class TestConstruction:
    def test_rejects_general_instances(self):
        general = SchedulingInstance(
            ("a",), {"a": 2.0}, {"a": 1.0}
        )
        with pytest.raises(ValidationError, match="Woeginger"):
            reduce_scheduling_to_ssqpp(general)

    def test_universe_and_network_sizes(self, reduction):
        q = reduction.num_unit_time
        assert reduction.system.universe_size == q + 1
        assert reduction.network.size == q + 1

    def test_epsilon_satisfies_proof_requirement(self, reduction):
        q = reduction.num_unit_time
        assert reduction.epsilon < (1 - reduction.epsilon) / q

    def test_anchor_element_only_fits_on_source(self, reduction):
        """cap(v0) = 1 = load(e0); every other capacity is below 1."""
        load_anchor = reduction.strategy.load("e0")
        assert load_anchor == pytest.approx(1.0)
        for node in reduction.network.nodes[1:]:
            assert reduction.network.capacity(node) < 1.0

    def test_each_node_fits_exactly_one_element(self, reduction):
        """Capacities allow one non-anchor element but never two."""
        loads = [
            reduction.strategy.load(e)
            for e in reduction.system.universe
            if e != "e0"
        ]
        capacity = reduction.network.capacity(1)
        assert all(load <= capacity + 1e-12 for load in loads)
        assert min(loads) * 2 > capacity

    def test_strategy_is_distribution(self, reduction):
        assert float(reduction.strategy.probabilities.sum()) == pytest.approx(1.0)


class TestCostDelayEquivalence:
    def test_every_feasible_schedule_maps_exactly(self, rng):
        """cost -> delay mapping is exact for every linear extension we
        can sample."""
        instance = random_woeginger_instance(3, 2, rng=rng, edge_probability=0.5)
        reduction = reduce_scheduling_to_ssqpp(instance)
        jobs = list(instance.jobs)
        tested = 0
        for _ in range(100):
            order = tuple(jobs[i] for i in rng.permutation(len(jobs)))
            if not instance.is_feasible_order(order):
                continue
            placement = reduction.schedule_to_placement(order)
            delay = reduction.placement_delay(placement)
            # The reduction maps the *canonical* schedule of the placement
            # (unit-weight jobs as early as possible); recompute it.
            canonical = reduction.placement_to_schedule(placement)
            assert delay == pytest.approx(
                reduction.delay_of_schedule_cost(instance.cost(canonical))
            )
            tested += 1
        assert tested >= 3

    def test_optimal_schedule_gives_optimal_placement(self, rng):
        instance = random_woeginger_instance(3, 3, rng=rng, edge_probability=0.4)
        reduction = reduce_scheduling_to_ssqpp(instance)
        best_schedule = solve_scheduling_exact(instance)
        best_placement = solve_ssqpp_exact(
            reduction.system, reduction.strategy, reduction.network, 0
        )
        assert best_placement.objective == pytest.approx(
            reduction.delay_of_schedule_cost(best_schedule.cost)
        )
        assert reduction.schedule_cost_of_delay(
            best_placement.objective
        ) == pytest.approx(best_schedule.cost)

    def test_roundtrip_schedule_placement_schedule(self, rng):
        instance = random_woeginger_instance(4, 2, rng=rng, edge_probability=0.5)
        reduction = reduce_scheduling_to_ssqpp(instance)
        best = solve_scheduling_exact(instance)
        placement = reduction.schedule_to_placement(best.order)
        recovered = reduction.placement_to_schedule(placement)
        assert instance.cost(recovered) == pytest.approx(best.cost)

    def test_infeasible_order_rejected(self, reduction):
        jobs = list(reduction.scheduling.jobs)
        with pytest.raises(ValidationError):
            reduction.schedule_to_placement(tuple(jobs[:-1]))

    def test_degenerate_no_precedence(self, rng):
        """With no precedence constraints every schedule is optimal and
        all weight jobs complete at time 0."""
        instance = random_woeginger_instance(2, 2, rng=rng, edge_probability=0.0)
        reduction = reduce_scheduling_to_ssqpp(instance)
        best = solve_scheduling_exact(instance)
        assert best.cost == 0.0
        placement = reduction.schedule_to_placement(best.order)
        expected = reduction.delay_of_schedule_cost(0.0)
        assert reduction.placement_delay(placement) == pytest.approx(expected)
