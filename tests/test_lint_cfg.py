"""CFG lowering corner cases, checked from both consuming tiers.

The control-flow graph in :mod:`repro.lint.cfg` feeds the dataflow tier
(possibly-unbound locals, R201) and — through loop structure — mirrors
the shapes the cost tier walks.  The basics live in
``test_lint_dataflow.py``; this file pins down the corner cases the
R500 work leaned on: ``while``/``else``, ``for`` over ``enumerate`` and
``zip``, multi-generator comprehensions, and ``try``/``finally``.
Each shape is asserted through the binding analysis (which paths
definitely assign) so a lowering regression shows up as a concrete
wrong verdict, not a structural diff.
"""

from __future__ import annotations

import ast
import textwrap

from repro.lint.cfg import build_cfg, iter_reachable
from repro.lint.dataflow import analyze_function


def _analyze(source: str):
    func = ast.parse(textwrap.dedent(source)).body[0]
    assert isinstance(func, ast.FunctionDef)
    return analyze_function(build_cfg(func))


def _unbound_names(source: str) -> list[str]:
    return [name for name, _ in _analyze(source).unbound_uses]


class TestWhileElse:
    def test_else_branch_runs_when_the_loop_may_not(self):
        # The loop body may execute zero times, so a name bound only
        # there is NOT definitely assigned after the loop...
        assert _unbound_names(
            """
            def f(items):
                while items:
                    value = items.pop()
                return value
            """
        ) == ["value"]

    def test_else_branch_definitely_assigns(self):
        # ...but the else branch runs on every non-breaking exit, so a
        # name bound in BOTH body and else is definitely assigned.
        assert (
            _unbound_names(
                """
                def f(items):
                    while items:
                        value = items.pop()
                    else:
                        value = None
                    return value
                """
            )
            == []
        )

    def test_break_can_skip_the_else_binding(self):
        # A break jumps past the else, so an else-only binding is not
        # definite when the body can break out.
        assert _unbound_names(
            """
            def f(items):
                while items:
                    if items[0] is None:
                        break
                    items.pop()
                else:
                    value = None
                return value
            """
        ) == ["value"]

    def test_condition_sees_loop_carried_bindings(self):
        # The back edge must flow body bindings into the condition.
        assert (
            _unbound_names(
                """
                def f(n):
                    count = 0
                    while count < n:
                        count = count + 1
                    return count
                """
            )
            == []
        )


class TestForOverEnumerateAndZip:
    def test_enumerate_tuple_target_binds_both_names(self):
        assert (
            _unbound_names(
                """
                def f(items):
                    total = 0
                    for index, item in enumerate(items):
                        total = total + index
                        last = item
                    return total
                """
            )
            == []
        )

    def test_zip_targets_bind_but_only_inside_the_loop(self):
        # Loop targets are loop-scoped bindings: definite inside the
        # body, not definite after (the iterable may be empty).
        assert _unbound_names(
            """
            def f(xs, ys):
                for x, y in zip(xs, ys):
                    pair = (x, y)
                return pair
            """
        ) == ["pair"]

    def test_nested_tuple_targets_unpack_recursively(self):
        assert (
            _unbound_names(
                """
                def f(rows):
                    out = []
                    for index, (left, right) in enumerate(rows):
                        out.append((index, left, right))
                    return out
                """
            )
            == []
        )

    def test_for_else_runs_after_normal_exhaustion(self):
        assert (
            _unbound_names(
                """
                def f(items):
                    for item in items:
                        pass
                    else:
                        sentinel = True
                    return sentinel
                """
            )
            == []
        )


class TestComprehensions:
    def test_multi_generator_targets_count_as_bindings(self):
        # The lowering deliberately over-binds comprehension targets
        # (they are scoped in Python 3, but treating them as assigned
        # keeps R201 free of false positives on the common idioms).
        assert (
            _unbound_names(
                """
                def f(nodes, quorums):
                    pairs = [(a, b) for a in nodes for b in quorums]
                    return pairs, a
                """
            )
            == []
        )

    def test_multi_generator_result_binding_is_definite(self):
        assert (
            _unbound_names(
                """
                def f(nodes, quorums):
                    pairs = [
                        (a, b)
                        for a in nodes
                        for b in quorums
                        if a is not b
                    ]
                    return pairs
                """
            )
            == []
        )

    def test_dict_comprehension_value_loads_are_visited(self):
        # A maybe-unbound local loaded in the value expression is real.
        assert _unbound_names(
            """
            def f(nodes, flag):
                if flag:
                    weight = 1.0
                return {node: weight for node in nodes}
            """
        ) == ["weight"]


class TestTryFinally:
    def test_finally_bindings_are_definite_after_the_statement(self):
        assert (
            _unbound_names(
                """
                def f(path):
                    try:
                        handle = open(path)
                    finally:
                        cleaned = True
                    return cleaned
                """
            )
            == []
        )

    def test_handlerless_try_models_only_the_normal_path(self):
        # Without handlers there is no in-function resume point: an
        # exception propagates out, so the lowering keeps only the
        # normal edge and body bindings stay definite in the finally.
        assert (
            _unbound_names(
                """
                def f(path):
                    try:
                        handle = open(path)
                    finally:
                        leaked = handle
                    return leaked
                """
            )
            == []
        )

    def test_handler_sees_the_state_at_try_entry(self):
        # With a handler the exceptional edge is modeled: the handler
        # may run before the try body bound anything.
        assert _unbound_names(
            """
            def f(path):
                try:
                    handle = open(path)
                except OSError:
                    leaked = handle
                return 0
            """
        ) == ["handle"]

    def test_except_handler_joins_with_the_happy_path(self):
        # Bound in try AND in the handler: definite afterwards.
        assert (
            _unbound_names(
                """
                def f(source):
                    try:
                        value = int(source)
                    except TypeError:
                        value = 0
                    return value
                """
            )
            == []
        )

    def test_handler_only_binding_is_not_definite(self):
        assert _unbound_names(
            """
            def f(source):
                try:
                    total = int(source)
                except TypeError:
                    fallback = 0
                return fallback
            """
        ) == ["fallback"]


class TestGraphShape:
    """Structural sanity: every corner case yields a connected graph."""

    CASES = (
        """
        def f(items):
            while items:
                items.pop()
            else:
                pass
        """,
        """
        def f(xs, ys):
            for i, (x, y) in enumerate(zip(xs, ys)):
                pass
        """,
        """
        def f(nodes, quorums):
            return [(a, b) for a in nodes for b in quorums]
        """,
        """
        def f(path):
            try:
                return open(path)
            finally:
                pass
        """,
    )

    def test_exit_is_reachable_in_every_case(self):
        for source in self.CASES:
            func = ast.parse(textwrap.dedent(source)).body[0]
            assert isinstance(func, ast.FunctionDef)
            graph = build_cfg(func)
            reachable = {block.index for block in iter_reachable(graph)}
            assert graph.entry in reachable
            assert graph.exit in reachable, f"exit unreachable in:\n{source}"
