"""Structured tracing: span nesting, exception safety, sinks, round-trip."""

import pytest

from repro.exceptions import ValidationError
from repro.obs.trace import (
    JsonlSpanSink,
    Span,
    TraceCollector,
    active_collector,
    collect,
    install_collector,
    read_spans_jsonl,
    render_span_tree,
    span,
    span_to_dicts,
    uninstall_collector,
)


class TestNoOpPath:
    def test_span_without_collector_is_shared_noop(self):
        first = span("a", x=1)
        second = span("b")
        assert first is second  # one cached handle, no allocation per call

    def test_noop_span_supports_protocol(self):
        with span("anything", k=2) as sp:
            sp.set(more=3)  # silently ignored

    def test_noop_span_propagates_exceptions(self):
        with pytest.raises(RuntimeError):
            with span("failing"):
                raise RuntimeError("boom")


class TestCollector:
    def test_spans_nest_into_a_tree(self):
        with collect() as collector:
            with span("root", depth=0):
                with span("child.a"):
                    with span("leaf"):
                        pass
                with span("child.b"):
                    pass
        assert len(collector.roots) == 1
        root = collector.roots[0]
        assert root.name == "root"
        assert [c.name for c in root.children] == ["child.a", "child.b"]
        assert root.children[0].children[0].name == "leaf"
        assert root.max_depth == 3
        assert collector.span_count == 4

    def test_durations_and_attributes_are_recorded(self):
        with collect() as collector:
            with span("work", candidates=7) as sp:
                sp.set(iterations=42)
        (root,) = collector.roots
        assert root.duration is not None and root.duration >= 0
        assert root.attributes == {"candidates": 7, "iterations": 42}
        assert root.error is False

    def test_exception_marks_error_and_closes_span(self):
        with collect() as collector:
            with pytest.raises(ValueError):
                with span("outer"):
                    with span("inner"):
                        raise ValueError("solver blew up")
        (root,) = collector.roots
        assert root.error is True
        assert root.children[0].error is True
        assert root.duration is not None  # closed despite the exception
        assert collector.depth == 0

    def test_sibling_roots_accumulate(self):
        with collect() as collector:
            with span("first"):
                pass
            with span("second"):
                pass
        assert [r.name for r in collector.roots] == ["first", "second"]

    def test_collect_restores_previous_collector(self):
        outer = TraceCollector()
        install_collector(outer)
        try:
            with collect() as inner:
                with span("traced"):
                    pass
            assert active_collector() is outer
            assert inner.span_count == 1
            assert outer.span_count == 0
        finally:
            assert uninstall_collector() is outer
        assert active_collector() is None

    def test_out_of_order_close_is_rejected(self):
        with collect():
            a = span("a")
            b = span("b")
            a.__enter__()
            b.__enter__()
            with pytest.raises(ValidationError, match="out of order"):
                a.__exit__(None, None, None)
            # Clean up so the conftest guard sees no open spans.
            b.__exit__(None, None, None)
            a.__exit__(None, None, None)


class TestSerialization:
    def _tree(self) -> TraceCollector:
        with collect() as collector:
            with span("root", net="broom"):
                with span("lp.solve", iterations=3):
                    pass
                with span("round"):
                    pass
        return collector

    def test_span_to_dicts_links_parents(self):
        rows = span_to_dicts(self._tree().roots[0])
        assert [r["name"] for r in rows] == ["root", "lp.solve", "round"]
        assert rows[0]["parent"] is None
        assert rows[1]["parent"] == rows[0]["id"]
        assert rows[2]["parent"] == rows[0]["id"]

    def test_non_jsonable_attributes_are_stringified(self):
        root = Span(name="r", attributes={"node": (1, 2)})
        rows = span_to_dicts(root)
        assert rows[0]["attributes"]["node"] == "(1, 2)"

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = JsonlSpanSink(str(path))
        with collect(sink):
            with span("first", k=1):
                with span("inner"):
                    pass
            with span("second"):
                pass
        sink.close()
        roots = read_spans_jsonl(str(path))
        assert [r.name for r in roots] == ["first", "second"]
        assert roots[0].children[0].name == "inner"
        assert roots[0].attributes == {"k": 1}
        assert roots[0].duration is not None

    def test_closed_sink_refuses_emit(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with JsonlSpanSink(str(path)) as sink:
            pass
        with pytest.raises(ValidationError, match="closed"):
            sink.emit(Span(name="late"))

    def test_read_rejects_dangling_parent(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"id": 5, "parent": 99, "name": "x", "started": 0.0, '
            '"duration": 0.1, "error": false}\n'
        )
        with pytest.raises(ValidationError, match="unknown parent"):
            read_spans_jsonl(str(path))


class TestRendering:
    def test_render_span_tree_indents_and_flags_errors(self):
        with collect() as collector:
            with pytest.raises(RuntimeError):
                with span("root", net="g"):
                    with span("child"):
                        raise RuntimeError
        text = render_span_tree(collector.roots)
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert "net=g" in lines[0]
        assert lines[1].startswith("  child")
        assert "[error]" in lines[1]
