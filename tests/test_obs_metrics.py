"""Metrics registry: counters, in-place reset, telemetry scopes, and the
metric-cache counters now reading through the registry."""

import pytest

from repro.exceptions import ValidationError
from repro.network import (
    metric_cache_clear,
    metric_cache_info,
    random_geometric_network,
    uniform_capacities,
)
from repro.obs.metrics import (
    MetricsRegistry,
    TelemetrySnapshot,
    counter,
    default_registry,
    gauge,
    histogram,
    telemetry_scope,
)


class TestMetricTypes:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        c = registry.counter("lp.solve.count")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_counter_rejects_negative_increments(self):
        c = MetricsRegistry().counter("x.count")
        with pytest.raises(ValidationError, match="cannot decrease"):
            c.inc(-1)

    def test_counter_name_is_validated(self):
        with pytest.raises(ValidationError, match="metric name"):
            MetricsRegistry().counter("Not A Name")

    def test_gauge_keeps_last_value(self):
        g = MetricsRegistry().gauge("queue.depth")
        g.set(4)
        g.set(2)
        assert g.value == 2.0

    def test_histogram_summary(self):
        h = MetricsRegistry().histogram("lp.iterations")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        summary = h.summary()
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 1.0 and summary["max"] == 3.0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a.count") is registry.counter("a.count")

    def test_reset_zeroes_in_place(self):
        registry = MetricsRegistry()
        cached = registry.counter("a.count")  # module-style cached reference
        cached.inc(5)
        registry.reset()
        assert cached.value == 0.0
        assert registry.counter("a.count") is cached

    def test_snapshot_is_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc()
        registry.gauge("b.level").set(7)
        registry.histogram("b.sizes").observe(3.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"b.count": 1.0}
        assert snapshot["gauges"] == {"b.level": 7.0}
        assert snapshot["histograms"]["b.sizes"]["count"] == 1.0

    def test_module_conveniences_hit_the_default_registry(self):
        counter("convenience.count").inc()
        gauge("convenience.level").set(1)
        histogram("convenience.sizes").observe(1.0)
        values = default_registry().snapshot()
        assert values["counters"]["convenience.count"] == 1.0


class TestTelemetryScope:
    def test_scope_captures_counter_deltas_only(self):
        registry = MetricsRegistry()
        registry.counter("pre.count").inc(10)
        with telemetry_scope(registry) as telemetry:
            assert telemetry.snapshot is None  # not finished yet
            registry.counter("pre.count").inc(2)
            registry.counter("fresh.count").inc()
        snapshot = telemetry.snapshot
        assert isinstance(snapshot, TelemetrySnapshot)
        assert snapshot.metrics == {"pre.count": 2.0, "fresh.count": 1.0}
        assert snapshot.wall_seconds >= 0

    def test_scope_survives_exceptions(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with telemetry_scope(registry) as telemetry:
                registry.counter("died.count").inc()
                raise RuntimeError
        assert telemetry.snapshot is not None
        assert telemetry.snapshot.metrics == {"died.count": 1.0}

    def test_snapshot_as_dict(self):
        with telemetry_scope(MetricsRegistry()) as telemetry:
            pass
        document = telemetry.snapshot.as_dict()
        assert set(document) == {"wall_seconds", "metrics"}


class TestMetricCacheThroughRegistry:
    """The legacy ``metric_cache_info()`` aggregates are registry-backed."""

    def _network(self, rng):
        return uniform_capacities(random_geometric_network(8, 0.55, rng=rng), 1.0)

    def test_builds_and_hits_flow_into_registry_counters(self, rng):
        network = self._network(rng)
        network.metric()
        network.metric()
        info = metric_cache_info()
        assert (info.builds, info.hits) == (1, 1)
        counters = default_registry().counter_values()
        assert counters["metric.cache.builds"] == 1.0
        assert counters["metric.cache.hits"] == 1.0

    def test_registry_reset_clears_legacy_view(self, rng):
        network = self._network(rng)
        network.metric()
        default_registry().reset()
        info = metric_cache_info()
        assert (info.builds, info.hits) == (0, 0)

    def test_metric_cache_clear_clears_registry_view(self, rng):
        network = self._network(rng)
        network.metric()
        metric_cache_clear()
        assert default_registry().counter_values()["metric.cache.builds"] == 0.0

    def test_instance_counters_unaffected_by_global_reset(self, rng):
        network = self._network(rng)
        network.metric()
        network.metric()
        metric_cache_clear()
        instance_info = network.metric_cache_info()
        assert (instance_info.builds, instance_info.hits) == (1, 1)
