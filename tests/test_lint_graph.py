"""Whole-program analysis: import graph, call graph, and rules R100-R104.

Each graph rule is exercised positively (it fires on the matching
fixture package under ``tests/fixtures/lint_graph/``) and negatively
(the corrected twin package stays silent), plus unit coverage for the
graph construction itself, the parse-exactly-once contract, the
``repro deps`` renderings, and the new ``lint`` CLI flags.
"""

from __future__ import annotations

import ast
import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.lint import (
    Finding,
    ImportEdge,
    LintConfig,
    ModuleGraph,
    ParseCache,
    ProgramRule,
    build_program_context,
    config_from_table,
    lint_file,
    lint_paths,
    load_config,
    load_module_graph,
    registered_rules,
)
from repro.lint.astutils import iter_top_level_statements
from repro.lint.callgraph import CallSite, RaiseSite, build_call_graph, catches
from repro.lint.config import (
    DEFAULT_BANNED_EXCEPTIONS,
    DEFAULT_CHECKER_NAMES,
    DEFAULT_LAYERS,
    find_pyproject,
)
from repro.lint.interproc import (
    DeadExportRule,
    ExceptionEscapeRule,
    ImportCycleRule,
    LayerOrderRule,
    ValidationFlowRule,
)
from repro.lint.modgraph import build_module_graph, render_deps_json
from repro.lint.rules import (
    ExportIntegrityRule,
    FloatEqualityRule,
    MutableDefaultRule,
    NoPrintRule,
    ReproErrorOnlyRule,
    SeededRandomnessRule,
    SolverResultContractRule,
    ValidatedEntryPointRule,
)
from repro.exceptions import LintError

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint_graph"
SRC = REPO_ROOT / "src"


def run_graph_rule(
    package: str, rule_id: str, **overrides: object
) -> list[Finding]:
    """Run one graph rule over a fixture package."""
    config = replace(LintConfig(), select=frozenset({rule_id}), **overrides)
    return lint_paths([FIXTURES / package], config, whole_program=True)


# -- R101: import cycles ----------------------------------------------------------


class TestImportCycles:
    def test_eager_cycle_is_reported(self):
        findings = run_graph_rule("cycpkg", "R101")
        assert len(findings) == 1
        (finding,) = findings
        assert finding.rule_id == "R101"
        assert "cycpkg.a -> cycpkg.b -> cycpkg.a" in finding.message
        assert finding.path.endswith("a.py")

    def test_lazy_edge_breaks_the_cycle(self):
        assert run_graph_rule("cycokpkg", "R101") == []

    def test_cycle_exemption(self):
        findings = run_graph_rule(
            "cycpkg", "R101", exempt=frozenset({"R101:cycpkg.a"})
        )
        assert findings == []


# -- R100: layer order ------------------------------------------------------------

_LAYERS = (("laypkg.low", "laypkg.lowlazy"), ("laypkg.high",))


class TestLayerOrder:
    def test_upward_imports_are_reported_eager_and_lazy(self):
        findings = run_graph_rule("laypkg", "R100", layers=_LAYERS)
        assert [f.rule_id for f in findings] == ["R100", "R100"]
        offenders = {Path(f.path).name for f in findings}
        assert offenders == {"low.py", "lowlazy.py"}
        assert all("higher layer" in f.message for f in findings)

    def test_downward_imports_are_clean(self):
        layers = (("layokpkg.low",), ("layokpkg.high",))
        assert run_graph_rule("layokpkg", "R100", layers=layers) == []

    def test_edge_exemption(self):
        findings = run_graph_rule(
            "laypkg",
            "R100",
            layers=_LAYERS,
            exempt=frozenset({"R100:laypkg.low->laypkg.high"}),
        )
        assert [Path(f.path).name for f in findings] == ["lowlazy.py"]

    def test_unmapped_modules_are_not_judged(self):
        # Only `high` is mapped; edges from unmapped modules are skipped.
        findings = run_graph_rule(
            "laypkg", "R100", layers=(("laypkg.high",),)
        )
        assert findings == []


# -- R102: validation flow --------------------------------------------------------

_FLOW = {
    "validated_packages": ("flowpkg",),
    "entry_roots": ("flowpkg.cli",),
}
_FLOW_OK = {
    "validated_packages": ("flowokpkg",),
    "entry_roots": ("flowokpkg.cli",),
}


class TestValidationFlow:
    def test_unvalidated_reachable_solver_is_reported(self):
        findings = run_graph_rule("flowpkg", "R102", **_FLOW)
        assert len(findings) == 1
        (finding,) = findings
        assert "'solve'" in finding.message
        assert "'weights'" in finding.message
        assert finding.path.endswith("solver.py")

    def test_unreachable_function_is_not_reported(self):
        # `helper` never validates either, but the CLI cannot reach it.
        findings = run_graph_rule("flowpkg", "R102", **_FLOW)
        assert not any("helper" in f.message for f in findings)

    def test_checker_first_and_delegation_are_clean(self):
        assert run_graph_rule("flowokpkg", "R102", **_FLOW_OK) == []

    def test_r001_exemption_is_honored(self):
        findings = run_graph_rule(
            "flowpkg",
            "R102",
            exempt=frozenset({"R001:flowpkg.solver.solve"}),
            **_FLOW,
        )
        assert findings == []

    def test_r102_exemption_is_honored(self):
        findings = run_graph_rule(
            "flowpkg",
            "R102",
            exempt=frozenset({"R102:flowpkg.solver.solve"}),
            **_FLOW,
        )
        assert findings == []


# -- R103: exception escape -------------------------------------------------------


class TestExceptionEscape:
    def test_transitive_builtin_raise_is_reported(self):
        findings = run_graph_rule(
            "raisepkg", "R103", library_packages=("raisepkg",)
        )
        assert len(findings) == 1
        (finding,) = findings
        assert "'fetch'" in finding.message
        assert "KeyError" in finding.message
        assert "raisepkg.helper.lookup" in finding.message
        assert finding.path.endswith("api.py")

    def test_direct_raise_is_not_reported_here(self):
        # `lookup` raises KeyError itself: that is R002's finding, not R103's.
        findings = run_graph_rule(
            "raisepkg", "R103", library_packages=("raisepkg",)
        )
        assert not any(f.path.endswith("helper.py") for f in findings)

    def test_boundary_conversion_is_clean(self):
        findings = run_graph_rule(
            "raiseokpkg", "R103", library_packages=("raiseokpkg",)
        )
        assert findings == []

    def test_exemption_is_honored(self):
        findings = run_graph_rule(
            "raisepkg",
            "R103",
            library_packages=("raisepkg",),
            exempt=frozenset({"R103:raisepkg.api.fetch"}),
        )
        assert findings == []


# -- R104: dead exports -----------------------------------------------------------


class TestDeadExports:
    def test_unreferenced_export_is_reported(self):
        findings = run_graph_rule(
            "deadpkg", "R104", library_packages=("deadpkg",)
        )
        assert len(findings) == 1
        (finding,) = findings
        assert "'dead_fn'" in finding.message
        assert finding.path.endswith("mod.py")

    def test_referenced_exports_are_clean(self):
        findings = run_graph_rule(
            "deadokpkg", "R104", library_packages=("deadokpkg",)
        )
        assert findings == []

    def test_exemption_is_honored(self):
        findings = run_graph_rule(
            "deadpkg",
            "R104",
            library_packages=("deadpkg",),
            exempt=frozenset({"R104:deadpkg.mod.dead_fn"}),
        )
        assert findings == []


# -- the module graph itself ------------------------------------------------------


class TestModuleGraph:
    def test_lazy_flag_and_edges(self):
        graph = load_module_graph([FIXTURES / "cycokpkg"])
        assert isinstance(graph, ModuleGraph)
        edges = {(e.source, e.target, e.lazy) for e in graph.edges}
        assert ("cycokpkg.a", "cycokpkg.b", False) in edges
        assert ("cycokpkg.b", "cycokpkg.a", True) in edges
        assert graph.cycles() == []

    def test_eager_cycle_detection(self):
        graph = load_module_graph([FIXTURES / "cycpkg"])
        assert graph.cycles() == [("cycpkg.a", "cycpkg.b", "cycpkg.a")]

    def test_type_checking_imports_are_lazy(self):
        trees = {
            "p.a": ast.parse(
                "from typing import TYPE_CHECKING\n"
                "if TYPE_CHECKING:\n"
                "    from . import b\n"
            ),
            "p.b": ast.parse("from . import a\n"),
            "p": ast.parse(""),
        }
        graph = build_module_graph(trees, packages=("p",))
        edge = next(e for e in graph.edges if e.source == "p.a")
        assert edge.lazy
        assert graph.cycles() == []

    def test_symbol_imports_record_names(self):
        graph = load_module_graph([FIXTURES / "layokpkg"])
        edge = next(e for e in graph.edges if e.source == "layokpkg.high")
        assert edge == ImportEdge(
            "layokpkg.high", "layokpkg.low", edge.line, False, ("base",)
        )

    def test_layer_assignment_longest_prefix_wins(self):
        graph = ModuleGraph(
            modules=("repro.core", "repro.core.qpp", "repro.lint"),
            edges=(),
            layers=(("repro",), ("repro.core",)),
        )
        assert graph.layer_of("repro.core.qpp") == 1
        assert graph.layer_of("repro.lint") == 0
        assert graph.layer_of("other") is None


# -- the call graph ---------------------------------------------------------------


class TestCallGraph:
    def _graph_for(self, package: str):
        cache = ParseCache()
        trees = {}
        packages = set()
        for path in sorted((FIXTURES / package).rglob("*.py")):
            parsed = cache.parsed(path)
            trees[parsed.module] = parsed.tree
            if parsed.is_package:
                packages.add(parsed.module)
        return build_call_graph(trees, packages=frozenset(packages))

    def test_call_sites_resolve_through_symbol_imports(self):
        graph = self._graph_for("raisepkg")
        sites = graph.calls_from("raisepkg.api.fetch")
        assert any(
            isinstance(s, CallSite) and s.callee == "raisepkg.helper.lookup"
            for s in sites
        )

    def test_caught_context_covers_try_body_only(self):
        graph = self._graph_for("raiseokpkg")
        call = next(
            s
            for s in graph.calls_from("raiseokpkg.api.fetch")
            if s.callee == "raiseokpkg.helper.lookup"
        )
        assert call.caught == ("KeyError",)
        # The converting raise sits in the handler: nothing catches it.
        raise_site = next(
            s
            for s in graph.raises_in("raiseokpkg.api.fetch")
            if isinstance(s, RaiseSite)
        )
        assert raise_site.exception == "PkgError"
        assert raise_site.caught == ()

    def test_reexport_chain_resolves_attribute_calls(self):
        trees = {
            "pkg": ast.parse("from .sub import fn\n"),
            "pkg.sub": ast.parse("def fn():\n    return 1\n"),
            "user": ast.parse("import pkg\ndef go():\n    return pkg.fn()\n"),
        }
        graph = build_call_graph(trees, packages=frozenset({"pkg"}))
        (site,) = graph.calls_from("user.go")
        assert site.callee == "pkg.sub.fn"

    def test_decorated_functions_keep_their_call_edges(self):
        trees = {
            "pkg": ast.parse(""),
            "pkg.mod": ast.parse(
                "import functools\n"
                "def helper():\n    return 1\n"
                "@functools.lru_cache(maxsize=None)\n"
                "def cached():\n    return helper()\n"
                "def caller():\n    return cached()\n"
            ),
        }
        graph = build_call_graph(trees, packages=frozenset({"pkg"}))
        # The decorator neither renames the function nor hides its body.
        assert "pkg.mod.helper" in graph.resolved_callees("pkg.mod.cached")
        assert "pkg.mod.cached" in graph.resolved_callees("pkg.mod.caller")

    def test_functools_partial_records_a_deferred_call_edge(self):
        trees = {
            "pkg": ast.parse(""),
            "pkg.mod": ast.parse(
                "import functools\n"
                "from functools import partial\n"
                "def worker(x, scale):\n    return x * scale\n"
                "def bare(items):\n"
                "    fn = partial(worker, scale=2)\n"
                "    return [fn(i) for i in items]\n"
                "def dotted(items):\n"
                "    fn = functools.partial(worker, scale=3)\n"
                "    return [fn(i) for i in items]\n"
            ),
        }
        graph = build_call_graph(trees, packages=frozenset({"pkg"}))
        # Binding arguments defers the call; the edge must still exist so
        # effect inference sees through the pool-worker idiom.
        assert "pkg.mod.worker" in graph.resolved_callees("pkg.mod.bare")
        assert "pkg.mod.worker" in graph.resolved_callees("pkg.mod.dotted")

    def test_functools_partial_over_lambda_records_nothing(self):
        trees = {
            "pkg": ast.parse(""),
            "pkg.mod": ast.parse(
                "from functools import partial\n"
                "def go(items):\n"
                "    fn = partial(lambda x: x, 1)\n"
                "    return fn\n"
            ),
        }
        graph = build_call_graph(trees, packages=frozenset({"pkg"}))
        assert graph.resolved_callees("pkg.mod.go") == ()

    def test_reexport_chain_resolves_through_two_hops(self):
        trees = {
            "pkg": ast.parse("from .sub import fn\n"),
            "pkg.sub": ast.parse("from .inner import fn\n"),
            "pkg.sub.inner": ast.parse("def fn():\n    return 1\n"),
            "user": ast.parse(
                "from pkg import fn\ndef go():\n    return fn()\n"
            ),
        }
        graph = build_call_graph(
            trees, packages=frozenset({"pkg", "pkg.sub"})
        )
        (site,) = graph.calls_from("user.go")
        assert site.callee == "pkg.sub.inner.fn"

    def test_catches_walks_builtin_hierarchy(self):
        assert catches("KeyError", ("LookupError",))
        assert catches("KeyError", ("Exception",))
        assert catches("ZeroDivisionError", ("ArithmeticError",))
        assert not catches("ValueError", ("KeyError",))
        # Project exceptions: exact match or a universal handler.
        assert catches("ReproError", ("Exception",))
        assert catches("ReproError", ("ReproError",))
        assert not catches("ReproError", ("ValueError",))


# -- engine plumbing --------------------------------------------------------------


class TestEngineContract:
    def test_fixture_run_parses_each_file_exactly_once(self):
        cache = ParseCache()
        config = replace(LintConfig(), select=frozenset({"R100", "R101"}))
        lint_paths(
            [FIXTURES / "cycpkg", FIXTURES / "laypkg"],
            config,
            whole_program=True,
            cache=cache,
        )
        assert cache.parse_counts
        assert all(count == 1 for count in cache.parse_counts.values())
        assert cache.parse_count == len(cache.parse_counts)

    def test_cache_reuse_across_runs_does_not_reparse(self):
        cache = ParseCache()
        config = replace(LintConfig(), select=frozenset({"R101"}))
        lint_paths([FIXTURES / "cycpkg"], config, whole_program=True, cache=cache)
        first = cache.parse_count
        lint_paths([FIXTURES / "cycpkg"], config, whole_program=True, cache=cache)
        assert cache.parse_count == first

    def test_program_rules_are_registered(self):
        registry = registered_rules()
        assert isinstance(registry["R100"], LayerOrderRule)
        assert isinstance(registry["R101"], ImportCycleRule)
        assert isinstance(registry["R102"], ValidationFlowRule)
        assert isinstance(registry["R103"], ExceptionEscapeRule)
        assert isinstance(registry["R104"], DeadExportRule)
        assert all(
            isinstance(registry[rule_id], ProgramRule)
            for rule_id in ("R100", "R101", "R102", "R103", "R104")
        )

    def test_file_rules_are_registered(self):
        registry = registered_rules()
        assert isinstance(registry["R001"], ValidatedEntryPointRule)
        assert isinstance(registry["R002"], ReproErrorOnlyRule)
        assert isinstance(registry["R003"], MutableDefaultRule)
        assert isinstance(registry["R004"], SeededRandomnessRule)
        assert isinstance(registry["R005"], FloatEqualityRule)
        assert isinstance(registry["R006"], NoPrintRule)
        assert isinstance(registry["R007"], ExportIntegrityRule)
        assert isinstance(registry["R301"], SolverResultContractRule)

    def test_graph_rules_do_not_run_without_whole_program(self):
        config = replace(LintConfig(), select=frozenset({"R101"}))
        assert lint_paths([FIXTURES / "cycpkg"], config) == []

    def test_inline_suppression_silences_graph_finding(self, tmp_path):
        package = tmp_path / "supkg"
        package.mkdir()
        (package / "__init__.py").write_text('"""p."""\n', encoding="utf-8")
        (package / "a.py").write_text(
            "from . import b  # repro-lint: disable=R101\n", encoding="utf-8"
        )
        (package / "b.py").write_text("from . import a\n", encoding="utf-8")
        config = replace(LintConfig(), select=frozenset({"R101"}))
        findings = lint_paths([package], config, whole_program=True)
        # The cycle is reported at its first edge (supkg.a), which carries
        # the suppression; the finding must be dropped.
        assert findings == []

    def test_lint_file_runs_file_rules(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text("def f(x=[]):\n    return x\n", encoding="utf-8")
        findings = lint_file(target)
        assert [f.rule_id for f in findings] == ["R003"]

    def test_build_program_context_exposes_graphs(self):
        cache = ParseCache()
        parsed = [
            cache.parsed(path)
            for path in sorted((FIXTURES / "raisepkg").rglob("*.py"))
        ]
        program = build_program_context(parsed, LintConfig(), cache=cache)
        assert "raisepkg.api" in program.files
        assert "raisepkg.api" in program.imports.modules
        assert "raisepkg.api.fetch" in program.calls.functions
        assert program.path_of("raisepkg.api").endswith("api.py")


# -- configuration ----------------------------------------------------------------


class TestLayerConfig:
    def test_default_layers_start_at_the_foundation(self):
        assert "repro.exceptions" in DEFAULT_LAYERS[0]
        assert "require" in DEFAULT_CHECKER_NAMES
        assert "KeyError" in DEFAULT_BANNED_EXCEPTIONS

    def test_layers_from_table(self):
        config = config_from_table({"layers": [["a"], ["b", "c"]]})
        assert config.layers == (("a",), ("b", "c"))

    def test_malformed_layers_rejected(self):
        with pytest.raises(LintError, match="layers"):
            config_from_table({"layers": ["a", "b"]})

    def test_entry_and_usage_roots_from_table(self):
        config = config_from_table(
            {"entry-roots": ["x.cli"], "usage-roots": ["checks"]}
        )
        assert config.entry_roots == ("x.cli",)
        assert config.usage_roots == ("checks",)

    def test_repo_pyproject_declares_the_layer_map(self):
        pyproject = find_pyproject(REPO_ROOT / "src")
        assert pyproject == REPO_ROOT / "pyproject.toml"
        config = load_config(search_from=REPO_ROOT)
        assert config.layers[0] == (
            "repro.exceptions",
            "repro._validation",
            "repro._pareto",
            "repro._numeric",
        )
        assert config.project_root == str(REPO_ROOT)

    def test_astutils_iter_top_level_statements_descends_guards(self):
        tree = ast.parse(
            "try:\n    import fast\nexcept ImportError:\n    fast = None\n"
            "if True:\n    flag = 1\n"
        )
        kinds = {type(s).__name__ for s in iter_top_level_statements(tree)}
        assert "Import" in kinds
        assert "Assign" in kinds


# -- the deps command and CLI flags ------------------------------------------------


@pytest.mark.skipif(not SRC.is_dir(), reason="source tree not present")
class TestDepsCommand:
    def test_json_round_trips_and_covers_every_module(self, capsys):
        from repro.cli import main
        from repro.lint.engine import iter_python_files, module_name_for

        assert main(["deps", str(SRC), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        config = load_config(search_from=REPO_ROOT)
        expected = {
            module_name_for(path) for path in iter_python_files([SRC], config)
        }
        assert set(payload["modules"]) == expected
        assert payload["module_count"] == len(expected)
        # Stable: the library rendering reproduces the CLI output exactly.
        graph = load_module_graph([SRC], config)
        assert render_deps_json(graph).strip() == json.dumps(
            payload, indent=2, sort_keys=True
        )

    def test_json_edges_are_well_formed(self, capsys):
        from repro.cli import main

        main(["deps", str(SRC), "--json"])
        payload = json.loads(capsys.readouterr().out)
        qpp = payload["modules"]["repro.core.qpp"]
        assert qpp["layer"] is not None
        targets = {entry["target"] for entry in qpp["imports"]}
        assert targets, "repro.core.qpp imports intra-package modules"
        assert all(target in payload["modules"] for target in targets)

    def test_dot_output(self, capsys):
        from repro.cli import main

        assert main(["deps", str(SRC), "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph deps {")
        assert '"repro.core.qpp" -> "repro.quorums.base"' in out

    def test_text_tree(self, capsys):
        from repro.cli import main

        assert main(["deps", str(SRC)]) == 0
        out = capsys.readouterr().out
        assert "repro.core.qpp" in out
        assert "modules," in out.splitlines()[-1]


class TestLintCliFlags:
    def test_whole_program_flag_reports_graph_findings(self, capsys):
        from repro.lint.cli import main

        path = str(FIXTURES / "cycpkg")
        assert main([path, "--select", "R101"]) == 0
        assert main([path, "--select", "R101", "--whole-program"]) == 1
        assert "R101" in capsys.readouterr().out

    def test_fail_on_r1xx_only_ignores_file_findings(self, tmp_path, capsys):
        from repro.lint.cli import main

        target = tmp_path / "bad.py"
        target.write_text("def f(x=[]):\n    return x\n", encoding="utf-8")
        assert main([str(target)]) == 1
        assert main([str(target), "--fail-on", "r1xx-only"]) == 0
        # The finding is still reported; only the exit code changes.
        assert "R003" in capsys.readouterr().out

    def test_fail_on_r1xx_only_still_fails_on_graph_findings(self):
        from repro.lint.cli import main

        path = str(FIXTURES / "cycpkg")
        args = [path, "--select", "R101", "--whole-program", "--fail-on", "r1xx-only"]
        assert main(args) == 1

    def test_baseline_filters_known_findings(self, tmp_path, capsys):
        from repro.lint.cli import main

        path = str(FIXTURES / "cycpkg")
        args = [path, "--select", "R101", "--whole-program"]
        assert main([*args, "--format", "json"]) == 1
        report = tmp_path / "baseline.json"
        report.write_text(capsys.readouterr().out, encoding="utf-8")
        assert main([*args, "--baseline", str(report)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_malformed_baseline_is_a_usage_error(self, tmp_path):
        from repro.lint.cli import main

        bad = tmp_path / "baseline.json"
        bad.write_text("{}", encoding="utf-8")
        assert main(["--baseline", str(bad), str(FIXTURES / "cycpkg")]) == 2

    def test_list_rules_includes_graph_rules(self, capsys):
        from repro.lint.cli import main

        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R100", "R101", "R102", "R103", "R104"):
            assert rule_id in out
