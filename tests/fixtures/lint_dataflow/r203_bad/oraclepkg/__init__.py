"""R203 positive fixture: broken oracle/twin pairings."""
