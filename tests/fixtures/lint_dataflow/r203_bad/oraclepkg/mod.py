"""Reference oracles whose pairing convention is violated."""


def area_reference(width, height):
    """Oracle with no vectorized twin at all."""
    return width * height


def speed_reference(distance, time):
    """Oracle whose twin disagrees on parameter order."""
    return distance / time


def speed(time, distance):
    """Twin with swapped parameters: not call-compatible."""
    return distance / time


def ratio_reference(numerator, denominator):
    """Properly paired, but no usage module references both names."""
    return numerator / denominator


def ratio(numerator, denominator):
    """Vectorized twin of :func:`ratio_reference`."""
    return numerator / denominator
