"""Usage file that mentions only one side of the ratio pair."""

from oraclepkg.mod import ratio_reference

print(ratio_reference(1.0, 2.0))
