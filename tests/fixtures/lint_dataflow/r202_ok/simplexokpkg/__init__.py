"""R202 negative fixture: declared or proven distributions."""
