"""Three ways the simplex invariant is proven at a call site."""

import numpy as np

from repro._validation import contract


@contract(shapes={"probabilities": ("s",)}, simplex=("probabilities",))
def expect(probabilities):
    """Probability-weighted expectation."""
    return probabilities.sum()


def distribution(raw):
    """Declared producer: its return contract carries the invariant.

    contract: return: shape (s,), dtype float, simplex
    """
    return raw / raw.sum()


def normalized_inline(raw):
    """The x / x.sum() idiom is recognized directly."""
    weights = raw / raw.sum()
    return expect(weights)


@contract(simplex=("weights",))
def declared_passthrough(weights):
    """The caller's own contract seeds the parameter's fact."""
    return expect(weights)


def from_producer(raw):
    """The producer's declared return contract proves the invariant."""
    return expect(distribution(raw))


def numpy_sum_form(raw):
    """The np.sum spelling of the normalization idiom."""
    weights = raw / np.sum(raw)
    return expect(weights)
