"""R202 positive fixture: unproven simplex arguments."""
