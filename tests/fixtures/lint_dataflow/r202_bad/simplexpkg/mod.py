"""Simplex-declared parameters fed unnormalized arrays."""

import numpy as np

from repro._validation import contract


@contract(shapes={"probabilities": ("s",)}, simplex=("probabilities",))
def expect(probabilities):
    """Probability-weighted expectation."""
    return probabilities.sum()


def unnormalized():
    """All-ones vector: nonnegative, but provably not a distribution."""
    weights = np.ones(4)
    return expect(weights)


def unknown_origin(raw):
    """An undeclared parameter cannot carry the invariant."""
    return expect(raw)
