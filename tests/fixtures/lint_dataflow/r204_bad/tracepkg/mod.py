"""Implements the fixture theorem but never anchors it."""


def theorem_value():
    """The number the fixture theorem pins down."""
    return 9.9
