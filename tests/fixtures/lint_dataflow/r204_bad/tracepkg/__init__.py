"""R204 positive fixture: theorem table without anchors."""
