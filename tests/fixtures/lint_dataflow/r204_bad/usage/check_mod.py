"""Usage file carrying a stale anchor that matches no table row."""

# paper: Thm 8.8
from tracepkg.mod import theorem_value

assert theorem_value() > 0
