"""Every use is dominated by a binding on all paths."""


def both_branches(flag):
    """Both arms bind before the join."""
    if flag:
        value = 1.0
    else:
        value = 2.0
    return value


def default_first(items):
    """A default before the loop covers the zero-iteration path."""
    total = 0.0
    for item in items:
        total = total + float(item)
    return total


def handler_binds(payload):
    """Both the try body and the handler bind the result."""
    try:
        result = float(payload)
    except TypeError:
        result = 0.0
    return result


def early_return(flag):
    """The unbound path leaves the function before the use."""
    if not flag:
        return 0.0
    value = 1.0
    return value
