"""R201 negative fixture: locals bound on every path."""
