"""Calls whose array facts provably violate a declared contract."""

import numpy as np

from repro._validation import contract


@contract(
    shapes={"matrix": ("n", "n"), "weights": ("n",)},
    dtypes={"matrix": "float", "weights": "float"},
)
def weigh(matrix, weights):
    """Row-weighted reduction."""
    return matrix @ weights


@contract(shapes={"positions": ("k",)}, dtypes={"positions": "int"})
def lookup(positions):
    """Index lookup."""
    return positions


def wrong_rank():
    """The weights argument is 2-d where the contract wants 1-d."""
    matrix = np.zeros((4, 4))
    weights = np.ones((4, 4))
    return weigh(matrix, weights)


def symbol_clash():
    """'n' binds 4 via the matrix but the weights carry extent 5."""
    matrix = np.zeros((4, 4))
    weights = np.ones(5)
    return weigh(matrix, weights)


def wrong_dtype():
    """A float vector where the contract requires integer indices."""
    positions = np.zeros(3)
    return lookup(positions)
