"""R200 positive fixture: contract-violating call sites."""
