"""R201 positive fixture: possibly-unbound locals."""
