"""Locals readable on a path that never assigned them."""


def conditional_branch(flag):
    """Bound only when the branch is taken."""
    if flag:
        value = 1.0
    return value


def empty_loop(items):
    """A for loop over an empty iterable never binds its body's names."""
    for item in items:
        total = float(item)
    return total


def exception_path(payload):
    """The except path reaches the return without the try's binding."""
    try:
        result = float(payload)
    except TypeError:
        pass
    return result
