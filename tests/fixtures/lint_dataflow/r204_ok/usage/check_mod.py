"""Usage file anchoring the fixture theorem on the test side."""

# paper: T9.9
from traceokpkg.mod import theorem_value

assert theorem_value() > 0
