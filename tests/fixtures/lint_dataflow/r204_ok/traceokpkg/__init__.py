"""R204 negative fixture: fully anchored theorem table."""
