"""Implements and anchors the fixture theorem."""


# paper: Thm 9.9, §1
def theorem_value():
    """The number the fixture theorem pins down."""
    return 9.9
