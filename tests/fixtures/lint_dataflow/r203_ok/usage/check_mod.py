"""Equivalence check referencing both sides of the pair."""

from oracleokpkg.mod import total, total_reference

assert total([1, 2]) == total_reference([1, 2])
