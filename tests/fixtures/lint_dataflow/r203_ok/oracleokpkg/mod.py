"""A reference oracle with a same-signature twin and a shared test."""


def total_reference(values):
    """Scalar oracle."""
    return sum(values)


def total(values):
    """Vectorized twin of :func:`total_reference`."""
    return sum(values)
