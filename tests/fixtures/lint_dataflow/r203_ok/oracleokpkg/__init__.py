"""R203 negative fixture: a well-paired, cross-tested oracle."""
