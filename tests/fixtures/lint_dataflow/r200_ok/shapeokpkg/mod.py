"""Calls whose array facts satisfy the declared contracts."""

import numpy as np

from repro._validation import contract


@contract(
    shapes={"matrix": ("n", "n"), "weights": ("n",)},
    dtypes={"matrix": "float", "weights": "float"},
)
def weigh(matrix, weights):
    """Row-weighted reduction."""
    return matrix @ weights


def counts(size):
    """Docstring-declared contract: still extracted and honored.

    contract: return: shape (k,), dtype int
    """
    return np.arange(size)


def consistent():
    """Same extents everywhere; int weights promote into 'float'."""
    matrix = np.zeros((4, 4))
    weights = np.arange(4)
    return weigh(matrix, weights)


def unknown_facts(matrix, weights):
    """Unknown argument facts must pass (the rule never guesses)."""
    return weigh(matrix, weights)
