"""R200 negative fixture: contract-respecting call sites."""
