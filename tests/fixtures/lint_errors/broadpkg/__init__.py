"""Fixture: a swallowing broad handler on a solver hot path (R602)."""
