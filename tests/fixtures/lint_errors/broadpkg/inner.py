"""Swallowing 'except Exception' hides real defects."""

__all__ = ["evaluate"]


def evaluate(item):
    try:
        return 1.0 / float(item)
    except Exception:
        return 0.0
