"""The entry point reaches a helper that swallows Exception."""

from .inner import evaluate

__all__ = ["solve_sweep"]


def solve_sweep(items):
    return [evaluate(item) for item in items]
