"""Library exception hierarchy rooted at ReproError (by name)."""

__all__ = ["ReproError", "MissingKeyError"]


class ReproError(Exception):
    pass


class MissingKeyError(ReproError):
    pass
