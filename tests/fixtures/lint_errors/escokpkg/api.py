"""solve_lookup converts the helper's KeyError at the boundary."""

from .errors import MissingKeyError
from .helper import lookup

__all__ = ["solve_lookup"]


def solve_lookup(table, key):
    try:
        return lookup(table, key)
    except KeyError as error:
        raise MissingKeyError(str(error)) from error
