"""Raises a builtin the entry point converts."""

__all__ = ["lookup"]


def lookup(table, key):
    if key not in table:
        raise KeyError(key)
    return table[key]
