"""Fixture: the failure is converted to a ReproError subclass (R603 clean)."""
