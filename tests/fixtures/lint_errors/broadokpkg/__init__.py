"""Fixture: a broad handler that re-raises is sanctioned (R602 clean)."""
