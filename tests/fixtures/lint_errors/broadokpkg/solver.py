"""The entry point reaches a helper whose broad handler re-raises."""

from .inner import evaluate

__all__ = ["solve_sweep"]


def solve_sweep(items):
    return [evaluate(item) for item in items]
