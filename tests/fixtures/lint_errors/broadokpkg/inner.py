"""Log-and-reraise keeps the failure visible."""

__all__ = ["evaluate"]


def evaluate(item):
    try:
        return 1.0 / float(item)
    except Exception:
        raise
