"""Fixture: @raises declarations that disagree with reality (R600)."""
