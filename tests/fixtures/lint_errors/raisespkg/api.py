"""One uncovered escape, one malformed name, one silent entry point."""

from .decl import raises

__all__ = ["solve_narrow", "solve_untyped", "solve_silent"]


@raises("ValueError")
def solve_narrow(table, key):
    if key not in table:
        raise KeyError(key)
    return table[key]


@raises("not an identifier")
def solve_untyped(x):
    return x


def solve_silent(x):
    return x
