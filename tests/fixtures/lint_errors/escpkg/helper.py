"""Raises a builtin the entry point never converts."""

__all__ = ["lookup"]


def lookup(table, key):
    if key not in table:
        raise KeyError(key)
    return table[key]
