"""Fixture: a builtin escapes a solver entry point (R603)."""
