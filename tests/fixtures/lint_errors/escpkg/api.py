"""solve_lookup lets the helper's KeyError reach callers."""

from .helper import lookup

__all__ = ["solve_lookup"]


def solve_lookup(table, key):
    return lookup(table, key)
