"""Stand-in span/scope helpers so the fixture stays import-free."""

__all__ = ["span", "telemetry_scope"]


class _Scope:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


def span(name, **attrs):
    return _Scope()


def telemetry_scope():
    return _Scope()
