"""Fixture: a measurement scope created outside 'with' (R604)."""
