"""The span is created and abandoned; __exit__ never runs."""

from .obs import span

__all__ = ["measure"]


def measure(values):
    scope = span("measure", count=len(values))
    total = sum(values)
    return total
