"""Declaring the base class covers the concrete subclass raised below."""

from .decl import raises
from .errors import MissingKeyError

__all__ = ["solve_lookup"]


@raises("InputError")
def solve_lookup(table, key):
    if key not in table:
        raise MissingKeyError(str(key))
    return table[key]
