"""A two-level hierarchy to prove coverage is subclass-aware."""

__all__ = ["ReproError", "InputError", "MissingKeyError"]


class ReproError(Exception):
    pass


class InputError(ReproError):
    pass


class MissingKeyError(InputError):
    pass
