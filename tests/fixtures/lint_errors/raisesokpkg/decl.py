"""Zero-cost stand-in for repro._validation.raises."""

__all__ = ["raises"]


def raises(*names, transient=()):
    def mark(func):
        return func

    return mark
