"""Fixture: covered, hierarchy-aware declarations (R600 clean)."""
