"""Both scope idioms the rule sanctions."""

from .obs import span, telemetry_scope

__all__ = ["measure"]


def measure(values):
    with telemetry_scope():
        with span("measure", count=len(values)):
            return sum(values)
