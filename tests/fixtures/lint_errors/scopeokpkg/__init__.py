"""Fixture: scopes entered with 'with' (R604 clean)."""
