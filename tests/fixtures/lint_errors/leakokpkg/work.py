"""'with'-managed pool and try/finally sink: released on every path."""

from concurrent.futures import ProcessPoolExecutor

from .sink import JsonlSpanSink

__all__ = ["sweep", "record"]


def sweep(jobs):
    with ProcessPoolExecutor(max_workers=2) as pool:
        return list(pool.map(len, jobs))


def record(path, rows):
    sink = JsonlSpanSink(path)
    try:
        for row in rows:
            sink.write(row)
    finally:
        sink.close()
    return len(rows)
