"""Stand-in trace sink so the fixture stays import-free."""

__all__ = ["JsonlSpanSink"]


class JsonlSpanSink:
    def __init__(self, path):
        self.path = path
        self.rows = []

    def write(self, row):
        self.rows.append(row)

    def close(self):
        self.rows = []
