"""Fixture: the same resources, exception-safely managed (R601 clean)."""
