"""Fixture: resources leak on exceptional paths (R601)."""
