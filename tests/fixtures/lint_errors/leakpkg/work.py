"""A pool without 'with' and a sink released only on fall-through."""

from concurrent.futures import ProcessPoolExecutor

from .sink import JsonlSpanSink

__all__ = ["sweep", "record"]


def sweep(jobs):
    pool = ProcessPoolExecutor(max_workers=2)
    results = list(pool.map(len, jobs))
    pool.shutdown()
    return results


def record(path, rows):
    sink = JsonlSpanSink(path)
    for row in rows:
        sink.write(row)
    sink.close()
    return len(rows)
