"""Entry point reaching both solver functions."""

from .solver import delegating, solve

__all__ = ["main"]


def main() -> float:
    return solve([1.0]) + delegating([2.0])
