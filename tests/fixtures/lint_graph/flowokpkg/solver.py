"""Validates through a checker, then through a validating delegate."""

__all__ = ["solve", "delegating"]


def check_weights(weights) -> None:
    if not weights:
        raise ValueError("weights must be non-empty")


def solve(weights):
    check_weights(weights)
    return sum(weights) / len(weights)


def delegating(weights):
    return solve(weights)
