"""Fixture: solver validates before first use (R102 silent)."""
