"""Needs a too, but defers the import into the function that uses it."""

__all__ = ["value", "use_a"]


def value() -> int:
    return 1


def use_a() -> int:
    from . import a

    return a.use_b()
