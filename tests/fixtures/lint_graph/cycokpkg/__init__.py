"""Fixture: mutual dependency broken by a lazy import (R101 silent)."""
