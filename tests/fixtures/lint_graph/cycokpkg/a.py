"""Imports b at module level."""

from . import b

__all__ = ["use_b"]


def use_b() -> int:
    return b.value() + 1
