"""Foundation module, imports nothing."""

__all__ = ["base"]


def base() -> int:
    return 3
