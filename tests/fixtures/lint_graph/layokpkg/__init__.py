"""Fixture: layering respected (R100 silent)."""
