"""Upper layer, imports downward only."""

from .low import base

__all__ = ["top"]


def top() -> int:
    return base() + 1
