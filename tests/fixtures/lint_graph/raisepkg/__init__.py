"""Fixture: a helper's builtin raise escapes the public API (R103)."""
