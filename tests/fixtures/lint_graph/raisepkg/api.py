"""Public API calling the raising helper with no conversion."""

from .helper import lookup

__all__ = ["fetch"]


def fetch(table, key):
    return lookup(table, key)
