"""Fixture: an eager module-level import cycle (R101 fires)."""
