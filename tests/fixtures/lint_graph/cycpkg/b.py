"""Imports a back at module level, closing the cycle."""

from . import a

__all__ = ["value", "use_a"]


def value() -> int:
    return 1


def use_a() -> int:
    return a.use_b()
