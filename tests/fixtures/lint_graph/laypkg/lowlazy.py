"""Declared low layer; the upward import is lazy but still upward."""

__all__ = ["lazy_fn"]


def lazy_fn() -> int:
    from .high import helper

    return helper()
