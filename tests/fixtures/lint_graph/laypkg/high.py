"""Declared high layer."""

__all__ = ["helper"]


def helper() -> int:
    return 2
