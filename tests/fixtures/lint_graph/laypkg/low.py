"""Declared low layer, but imports the high layer eagerly."""

from .high import helper

__all__ = ["low_fn"]


def low_fn() -> int:
    return helper()
