"""Fixture: layer violations (R100 fires on eager and lazy edges)."""
