"""Same raising helper as raisepkg."""

__all__ = ["lookup"]


def lookup(table, key):
    if key not in table:
        raise KeyError(key)
    return table[key]
