"""Fixture: builtin raise converted at the boundary (R103 silent)."""
