"""Public API converting the builtin exception at the boundary."""

from .errors import PkgError
from .helper import lookup

__all__ = ["fetch"]


def fetch(table, key):
    try:
        return lookup(table, key)
    except KeyError as exc:
        raise PkgError(f"unknown key {key!r}") from exc
