"""The package's error type (stands in for ReproError)."""

__all__ = ["PkgError"]


class PkgError(Exception):
    pass
