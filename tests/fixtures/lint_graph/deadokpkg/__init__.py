"""Fixture: every export is referenced (R104 silent)."""

from .consumer import run as _run  # keeps consumer.run live
