"""Exports one name."""

__all__ = ["used_fn"]


def used_fn() -> int:
    return 6
