"""References the export."""

from .mod import used_fn

__all__ = ["run"]


def run() -> int:
    return used_fn()
