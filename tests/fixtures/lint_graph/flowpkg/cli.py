"""The 'CLI': makes solve() reachable; helper() stays unreachable."""

from .solver import solve

__all__ = ["main"]


def main() -> float:
    return solve([1.0, 2.0])
