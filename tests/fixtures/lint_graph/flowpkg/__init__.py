"""Fixture: unvalidated entry-reachable solver (R102 fires)."""
