"""The 'library': a public solver that never validates its input."""

__all__ = ["solve", "helper"]


def solve(weights):
    total = sum(weights)
    return total / len(weights)


def helper(weights):
    return list(weights)
