"""Exports two names; only one is referenced elsewhere."""

__all__ = ["used_fn", "dead_fn"]


def used_fn() -> int:
    return 4


def dead_fn() -> int:
    return 5
