"""Fixture: a dead __all__ export (R104 fires for dead_fn only)."""

from .consumer import run as _run  # keeps consumer.run live
