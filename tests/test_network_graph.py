"""Unit tests for the Network type."""

import math

import pytest

from repro.exceptions import ValidationError
from repro.network import Network


@pytest.fixture
def triangle():
    return Network(
        ["a", "b", "c"],
        [("a", "b", 2.0), ("b", "c", 3.0), ("a", "c", 10.0)],
        capacities=1.5,
        name="tri",
    )


class TestConstruction:
    def test_basic_accessors(self, triangle):
        assert triangle.size == 3
        assert triangle.edge_count == 3
        assert triangle.edge_length("a", "b") == 2.0
        assert triangle.capacity("c") == 1.5
        assert triangle.total_capacity() == pytest.approx(4.5)

    def test_default_edge_length_is_one(self):
        net = Network([1, 2], [(1, 2)])
        assert net.edge_length(1, 2) == 1.0

    def test_default_capacity_is_infinite(self):
        net = Network([1, 2], [(1, 2)])
        assert net.capacity(1) == math.inf

    def test_parallel_edges_keep_shortest(self):
        net = Network([1, 2], [(1, 2, 5.0), (1, 2, 2.0), (1, 2, 9.0)])
        assert net.edge_length(1, 2) == 2.0

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            Network([1, 1], [])

    def test_self_loop_rejected(self):
        with pytest.raises(ValidationError, match="self-loop"):
            Network([1, 2], [(1, 1)])

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(ValidationError, match="unknown"):
            Network([1, 2], [(1, 3)])

    def test_nonpositive_length_rejected(self):
        with pytest.raises(ValidationError):
            Network([1, 2], [(1, 2, 0.0)])
        with pytest.raises(ValidationError):
            Network([1, 2], [(1, 2, -1.0)])

    def test_capacity_mapping_must_cover_all_nodes(self):
        with pytest.raises(ValidationError, match="capacity"):
            Network([1, 2], [(1, 2)], capacities={1: 1.0})

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValidationError):
            Network([1, 2], [(1, 2)], capacities={1: 1.0, 2: -1.0})

    def test_empty_network_rejected(self):
        with pytest.raises(ValidationError):
            Network([], [])

    def test_bad_edge_arity_rejected(self):
        with pytest.raises(ValidationError, match="edge"):
            Network([1, 2], [(1,)])


class TestQueries:
    def test_neighbors(self, triangle):
        assert set(triangle.neighbors("a")) == {"b", "c"}

    def test_edges_listed_once(self, triangle):
        edges = triangle.edges()
        assert len(edges) == 3
        pairs = {(u, v) for u, v, _ in edges}
        assert ("b", "a") not in pairs or ("a", "b") not in pairs

    def test_node_index_stable(self, triangle):
        assert [triangle.node_index(v) for v in triangle.nodes] == [0, 1, 2]

    def test_unknown_node_raises(self, triangle):
        with pytest.raises(ValidationError):
            triangle.node_index("zebra")
        with pytest.raises(ValidationError):
            triangle.edge_length("a", "zebra")

    def test_missing_edge_raises(self):
        net = Network([1, 2, 3], [(1, 2), (2, 3)])
        with pytest.raises(ValidationError, match="no edge"):
            net.edge_length(1, 3)

    def test_is_connected(self):
        connected = Network([1, 2, 3], [(1, 2), (2, 3)])
        assert connected.is_connected()

    def test_distance_uses_shortest_path(self, triangle):
        # a-c direct costs 10 but a-b-c costs 5.
        assert triangle.distance("a", "c") == pytest.approx(5.0)


class TestDerivation:
    def test_with_capacities_uniform(self, triangle):
        updated = triangle.with_capacities(9.0)
        assert updated.capacity("a") == 9.0
        assert triangle.capacity("a") == 1.5  # original untouched

    def test_with_capacities_callable(self, triangle):
        updated = triangle.with_capacities(lambda v: 2.0 if v == "a" else 1.0)
        assert updated.capacity("a") == 2.0
        assert updated.capacity("b") == 1.0

    def test_with_name(self, triangle):
        renamed = triangle.with_name("other")
        assert renamed.name == "other"
        assert renamed.size == triangle.size


class TestNetworkxInterop:
    def test_roundtrip(self, triangle):
        graph = triangle.to_networkx()
        back = Network.from_networkx(graph)
        assert back.size == triangle.size
        assert back.edge_length("a", "b") == triangle.edge_length("a", "b")
        assert back.capacity("c") == triangle.capacity("c")

    def test_from_networkx_defaults(self):
        import networkx as nx

        graph = nx.path_graph(4)
        net = Network.from_networkx(graph)
        assert net.edge_length(0, 1) == 1.0
        assert net.capacity(0) == math.inf
