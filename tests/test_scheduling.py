"""Tests for the 1|prec|sum w_j C_j substrate."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.scheduling import (
    SchedulingInstance,
    random_woeginger_instance,
    solve_scheduling_exact,
)


def simple_instance():
    """Three jobs: a (T=2), b (T=1), c (T=1, w=3), with a before c."""
    return SchedulingInstance(
        jobs=("a", "b", "c"),
        processing_times={"a": 2.0, "b": 1.0, "c": 1.0},
        weights={"a": 1.0, "b": 2.0, "c": 3.0},
        precedence=frozenset({("a", "c")}),
    )


class TestInstance:
    def test_validation_missing_fields(self):
        with pytest.raises(ValidationError, match="processing"):
            SchedulingInstance(("a",), {}, {"a": 1.0})
        with pytest.raises(ValidationError, match="weight"):
            SchedulingInstance(("a",), {"a": 1.0}, {})

    def test_duplicate_jobs_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            SchedulingInstance(
                ("a", "a"), {"a": 1.0}, {"a": 1.0}
            )

    def test_cycle_detected(self):
        with pytest.raises(ValidationError, match="cycle"):
            SchedulingInstance(
                ("a", "b"),
                {"a": 1.0, "b": 1.0},
                {"a": 1.0, "b": 1.0},
                precedence=frozenset({("a", "b"), ("b", "a")}),
            )

    def test_self_precedence_rejected(self):
        with pytest.raises(ValidationError, match="itself"):
            SchedulingInstance(
                ("a",), {"a": 1.0}, {"a": 1.0}, precedence=frozenset({("a", "a")})
            )

    def test_unknown_job_in_precedence(self):
        with pytest.raises(ValidationError, match="unknown"):
            SchedulingInstance(
                ("a",), {"a": 1.0}, {"a": 1.0}, precedence=frozenset({("a", "z")})
            )

    def test_predecessors(self):
        instance = simple_instance()
        assert instance.predecessors("c") == frozenset({"a"})
        assert instance.predecessors("a") == frozenset()


class TestSchedules:
    def test_feasible_order_check(self):
        instance = simple_instance()
        assert instance.is_feasible_order(("a", "b", "c"))
        assert instance.is_feasible_order(("a", "c", "b"))
        assert not instance.is_feasible_order(("c", "a", "b"))  # violates a < c
        assert not instance.is_feasible_order(("a", "b"))  # incomplete

    def test_cost_computation(self):
        instance = simple_instance()
        # Order a, b, c: C_a=2, C_b=3, C_c=4 => 1*2 + 2*3 + 3*4 = 20.
        assert instance.cost(("a", "b", "c")) == pytest.approx(20.0)
        # Order a, c, b: C_a=2, C_c=3, C_b=4 => 2 + 9 + 8 = 19.
        assert instance.cost(("a", "c", "b")) == pytest.approx(19.0)

    def test_cost_rejects_infeasible(self):
        with pytest.raises(ValidationError):
            simple_instance().cost(("c", "a", "b"))


class TestWoegingerForm:
    def test_random_instance_is_woeginger_form(self, rng):
        instance = random_woeginger_instance(3, 4, rng=rng)
        assert instance.is_woeginger_form()
        assert len(instance.unit_time_jobs()) == 3
        assert len(instance.unit_weight_jobs()) == 4

    def test_general_instance_is_not(self):
        assert not simple_instance().is_woeginger_form()

    def test_wrong_direction_precedence_rejected_by_check(self):
        instance = SchedulingInstance(
            jobs=("t", "w"),
            processing_times={"t": 1.0, "w": 0.0},
            weights={"t": 0.0, "w": 1.0},
            precedence=frozenset({("w", "t")}),  # wrong direction
        )
        assert not instance.is_woeginger_form()

    def test_random_instance_deterministic(self):
        a = random_woeginger_instance(3, 3, rng=np.random.default_rng(4))
        b = random_woeginger_instance(3, 3, rng=np.random.default_rng(4))
        assert a.precedence == b.precedence


class TestExact:
    def test_simple_instance_optimum(self):
        result = solve_scheduling_exact(simple_instance())
        # Enumerate by hand: feasible orders and costs:
        # (a,b,c): 20; (a,c,b): 19; (b,a,c): 2+3+12=17.
        assert result.cost == pytest.approx(17.0)
        assert result.order == ("b", "a", "c")

    def test_exact_is_feasible(self, rng):
        instance = random_woeginger_instance(3, 3, rng=rng)
        result = solve_scheduling_exact(instance)
        assert instance.is_feasible_order(result.order)
        assert instance.cost(result.order) == pytest.approx(result.cost)

    def test_exact_beats_every_sampled_order(self, rng):
        instance = random_woeginger_instance(4, 3, rng=rng)
        best = solve_scheduling_exact(instance)
        jobs = list(instance.jobs)
        found_feasible = 0
        for _ in range(200):
            indices = rng.permutation(len(jobs))
            order = tuple(jobs[i] for i in indices)
            if instance.is_feasible_order(order):
                found_feasible += 1
                assert best.cost <= instance.cost(order) + 1e-9
        assert found_feasible > 0

    def test_size_guard(self):
        jobs = tuple(range(13))
        instance = SchedulingInstance(
            jobs,
            {j: 1.0 for j in jobs},
            {j: 1.0 for j in jobs},
        )
        with pytest.raises(ValidationError, match="at most"):
            solve_scheduling_exact(instance)
