"""Tests for Placement and the delay/load evaluators.

Several tests hand-compute equations (1) and (2) on tiny instances to pin
down the exact semantics.
"""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.core import (
    Placement,
    average_max_delay,
    average_total_delay,
    capacity_violation_factor,
    expected_max_delay,
    expected_total_delay,
    is_capacity_respecting,
    make_placement,
    max_delay,
    node_loads,
    total_delay_cost,
)
from repro.network import Network, path_network
from repro.quorums import AccessStrategy, QuorumSystem, majority


@pytest.fixture
def tiny():
    """Majority(3) on a 3-node path, elements on distinct nodes."""
    system = majority(3)  # quorums: {0,1}, {0,2}, {1,2}
    strategy = AccessStrategy.uniform(system)
    network = path_network(3).with_capacities(1.0)
    placement = Placement(system, network, {0: 0, 1: 1, 2: 2})
    return system, strategy, network, placement


class TestPlacementType:
    def test_accessors(self, tiny):
        system, _, network, placement = tiny
        assert placement[0] == 0
        assert placement.as_dict() == {0: 0, 1: 1, 2: 2}
        assert placement.system is system
        assert placement.network is network

    def test_missing_element_rejected(self, tiny):
        system, _, network, _ = tiny
        with pytest.raises(ValidationError, match="missing"):
            Placement(system, network, {0: 0, 1: 1})

    def test_unknown_target_node_rejected(self, tiny):
        system, _, network, _ = tiny
        with pytest.raises(ValidationError, match="unknown node"):
            Placement(system, network, {0: 0, 1: 1, 2: 99})

    def test_unknown_element_lookup(self, tiny):
        _, _, _, placement = tiny
        with pytest.raises(ValidationError):
            placement["nope"]

    def test_non_injective_allowed(self, tiny):
        system, _, network, _ = tiny
        placement = Placement(system, network, {0: 1, 1: 1, 2: 1})
        assert set(placement.as_dict().values()) == {1}

    def test_make_placement_in_universe_order(self, tiny):
        system, _, network, _ = tiny
        placement = make_placement(system, network, [2, 1, 0])
        assert placement[0] == 2 and placement[2] == 0
        with pytest.raises(ValidationError):
            make_placement(system, network, [0, 1])

    def test_quorum_node_indices_deduplicated(self, tiny):
        system, _, network, _ = tiny
        placement = Placement(system, network, {0: 1, 1: 1, 2: 2})
        # Quorum {0, 1} sits entirely on node 1.
        index = list(system.quorums).index(frozenset({0, 1}))
        assert list(placement.quorum_node_indices(index)) == [1]


class TestMaxDelay:
    def test_equation_1_by_hand(self, tiny):
        system, strategy, _, placement = tiny
        index = list(system.quorums).index(frozenset({0, 2}))
        # Client 0 to quorum {0,2} placed at nodes {0,2}: farthest is 2.
        assert max_delay(placement, 0, index) == pytest.approx(2.0)
        assert max_delay(placement, 1, index) == pytest.approx(1.0)

    def test_equation_2_by_hand(self, tiny):
        system, strategy, _, placement = tiny
        # For client 1 (center): delays to quorums {0,1}:1, {0,2}:1, {1,2}:1.
        assert expected_max_delay(placement, strategy, 1) == pytest.approx(1.0)
        # For client 0: {0,1}:1, {0,2}:2, {1,2}:2 => mean 5/3.
        assert expected_max_delay(placement, strategy, 0) == pytest.approx(5 / 3)

    def test_average_max_delay_uniform_clients(self, tiny):
        _, strategy, _, placement = tiny
        # Clients 0 and 2 are symmetric (5/3), client 1 has 1 => avg 13/9.
        assert average_max_delay(placement, strategy) == pytest.approx(13 / 9)

    def test_average_max_delay_with_rates(self, tiny):
        _, strategy, _, placement = tiny
        # All rate on the center client.
        value = average_max_delay(placement, strategy, rates={1: 5.0})
        assert value == pytest.approx(1.0)

    def test_rates_validation(self, tiny):
        _, strategy, _, placement = tiny
        with pytest.raises(ValidationError):
            average_max_delay(placement, strategy, rates={0: -1.0})
        with pytest.raises(ValidationError):
            average_max_delay(placement, strategy, rates={0: 0.0})

    def test_strategy_system_mismatch_rejected(self, tiny):
        _, _, network, placement = tiny
        other = AccessStrategy.uniform(QuorumSystem([{0, 1}]))
        with pytest.raises(ValidationError, match="different"):
            expected_max_delay(placement, other, 0)


class TestTotalDelay:
    def test_gamma_by_hand(self, tiny):
        system, strategy, _, placement = tiny
        index = list(system.quorums).index(frozenset({0, 2}))
        # gamma(client 1, {0,2}) = d(1,0) + d(1,2) = 2.
        assert total_delay_cost(placement, 1, index) == pytest.approx(2.0)

    def test_expected_total_delay_identity(self, tiny):
        """Gamma_f(v) must equal sum_u load(u) d(v, f(u))."""
        system, strategy, network, placement = tiny
        for client in network.nodes:
            direct = sum(
                strategy.probability(i) * total_delay_cost(placement, client, i)
                for i in range(len(system))
            )
            assert expected_total_delay(placement, strategy, client) == pytest.approx(direct)

    def test_co_located_elements_count_multiply(self, tiny):
        system, strategy, network, _ = tiny
        placement = Placement(system, network, {0: 2, 1: 2, 2: 2})
        index = list(system.quorums).index(frozenset({0, 1}))
        # Both elements at node 2: gamma(0, Q) = 2 + 2 = 4.
        assert total_delay_cost(placement, 0, index) == pytest.approx(4.0)

    def test_average_total_delay_with_rates(self, tiny):
        _, strategy, _, placement = tiny
        weighted = average_total_delay(placement, strategy, rates={0: 1.0, 1: 1.0})
        uniform = average_total_delay(placement, strategy)
        assert weighted != pytest.approx(uniform)


class TestLoads:
    def test_node_loads_by_hand(self, tiny):
        system, strategy, _, placement = tiny
        loads = node_loads(placement, strategy)
        # Each element has load 2/3 (in 2 of 3 quorums).
        for node in (0, 1, 2):
            assert loads[node] == pytest.approx(2 / 3)

    def test_co_location_adds_loads(self, tiny):
        system, strategy, network, _ = tiny
        placement = Placement(system, network, {0: 0, 1: 0, 2: 1})
        loads = node_loads(placement, strategy)
        assert loads[0] == pytest.approx(4 / 3)
        assert loads[2] == 0.0

    def test_capacity_violation_factor(self, tiny):
        system, strategy, network, placement = tiny
        assert capacity_violation_factor(placement, strategy) == pytest.approx(2 / 3)
        assert is_capacity_respecting(placement, strategy)
        crowded = Placement(system, network, {0: 0, 1: 0, 2: 0})
        assert capacity_violation_factor(crowded, strategy) == pytest.approx(2.0)
        assert not is_capacity_respecting(crowded, strategy)

    def test_zero_capacity_node_with_load_is_infinite(self, tiny):
        system, strategy, _, _ = tiny
        network = path_network(3).with_capacities({0: 0.0, 1: 1.0, 2: 1.0})
        placement = Placement(system, network, {0: 0, 1: 1, 2: 2})
        assert capacity_violation_factor(placement, strategy) == float("inf")
