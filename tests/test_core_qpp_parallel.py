"""Certificate-gated parallel candidate sweep in :func:`solve_qpp`.

The acceptance bar for the parallel path is *byte identity*: fanning the
relay-candidate sweep across a process pool must reproduce the serial
sweep exactly — objective, winning source, lower bound, per-source LP
values and placements — on a seeded 100-node benchmark instance.  The
gate itself is also exercised: without a parallel-safety certificate the
solver refuses rather than silently running uncertified workers.
"""

from __future__ import annotations

import multiprocessing
from pathlib import Path

import numpy as np
import pytest

from repro.core import solve_qpp
from repro.core.qpp import _qpp_candidate_worker
from repro.exceptions import ParallelSafetyError, ValidationError
from repro.lint import build_certificate_for_paths
from repro.network import random_geometric_network, uniform_capacities
from repro.quorums import AccessStrategy, majority

SRC = Path(__file__).resolve().parent.parent / "src"
FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()

pytestmark = pytest.mark.skipif(
    not SRC.is_dir(), reason="source tree not present"
)


@pytest.fixture(scope="module")
def certificate():
    """The real certificate over ``src`` — what CI ships as an artifact."""
    return build_certificate_for_paths([SRC])


@pytest.fixture(scope="module")
def bench_instance():
    rng = np.random.default_rng(7)
    network = uniform_capacities(
        random_geometric_network(100, 0.25, rng=rng), 1.0
    )
    system = majority(5)
    strategy = AccessStrategy.uniform(system)
    candidates = list(network.nodes)[:3]
    return system, strategy, network, candidates


def placement_mapping(system, placement):
    """Placement has no __eq__; compare the induced element->node map."""
    return {u: placement[u] for u in system.universe}


def test_worker_is_certified_parallel_safe(certificate):
    entry = certificate["functions"]["repro.core.qpp._qpp_candidate_worker"]
    assert entry["parallel_safe"] is True
    assert entry["declared"] == ["reads-global", "writes-metrics"]


@pytest.mark.skipif(not FORK_AVAILABLE, reason="needs fork start method")
def test_parallel_sweep_is_byte_identical_to_serial(certificate, bench_instance):
    system, strategy, network, candidates = bench_instance
    serial = solve_qpp(
        system,
        strategy,
        network=network,
        alpha=2.0,
        candidate_sources=candidates,
    )
    parallel = solve_qpp(
        system,
        strategy,
        network=network,
        alpha=2.0,
        candidate_sources=candidates,
        parallel="process",
        certificate=certificate,
        max_workers=2,
    )
    assert parallel.objective == serial.objective
    assert parallel.source == serial.source
    assert parallel.optimum_lower_bound == serial.optimum_lower_bound
    assert placement_mapping(system, parallel.placement) == placement_mapping(
        system, serial.placement
    )
    assert set(parallel.per_source) == set(serial.per_source) == set(candidates)
    for source in candidates:
        got, want = parallel.per_source[source], serial.per_source[source]
        assert got.lp_value == want.lp_value
        assert got.max_load_factor == want.max_load_factor
        assert placement_mapping(system, got.placement) == placement_mapping(
            system, want.placement
        )


@pytest.mark.skipif(not FORK_AVAILABLE, reason="needs fork start method")
def test_parallel_sweep_accepts_certificate_path(tmp_path, certificate, bench_instance):
    from repro.lint import render_certificate

    system, strategy, network, candidates = bench_instance
    path = tmp_path / "certificate.json"
    path.write_text(render_certificate(certificate), encoding="utf-8")
    result = solve_qpp(
        system,
        strategy,
        network=network,
        alpha=2.0,
        candidate_sources=candidates[:1],
        parallel="process",
        certificate=path,
        max_workers=2,
    )
    assert result.source == candidates[0]


def test_parallel_without_certificate_refuses(bench_instance, monkeypatch):
    from repro.parallel import CERTIFICATE_ENV_VAR

    monkeypatch.delenv(CERTIFICATE_ENV_VAR, raising=False)
    system, strategy, network, candidates = bench_instance
    with pytest.raises(ParallelSafetyError, match="certificate"):
        solve_qpp(
            system,
            strategy,
            network=network,
            alpha=2.0,
            candidate_sources=candidates[:1],
            parallel="process",
        )


def test_unknown_parallel_mode_is_rejected(bench_instance):
    system, strategy, network, candidates = bench_instance
    with pytest.raises(ValidationError, match="parallel"):
        solve_qpp(
            system,
            strategy,
            network=network,
            candidate_sources=candidates[:1],
            parallel="thread",
        )


def test_worker_matches_inline_single_source_solve(bench_instance):
    from repro.core.ssqpp import solve_ssqpp

    system, strategy, network, candidates = bench_instance
    source = candidates[0]
    via_worker = _qpp_candidate_worker(
        source,
        system=system,
        strategy=strategy,
        network=network,
        alpha=2.0,
        lp_method="highs",
        formulation="prefix",
    )
    direct = solve_ssqpp(
        system,
        strategy,
        network=network,
        source=source,
        alpha=2.0,
        formulation="prefix",
    )
    assert via_worker.lp_value == direct.lp_value
    assert placement_mapping(system, via_worker.placement) == placement_mapping(
        system, direct.placement
    )


# -- lazy-metric state across the fork fan-out ----------------------------------------


@pytest.mark.skipif(not FORK_AVAILABLE, reason="needs fork start method")
def test_pooled_sweep_leaves_warmed_lazy_rows_intact(certificate, bench_instance):
    """Byte-identical pooled sweep with a warmed LazyMetric in the parent.

    The row counters are fork-aware (``os.register_at_fork`` zeroes the
    child registries), so a ``parallel="process"`` sweep must neither
    leak child-side ``metric.cache.row_*`` traffic back into the parent
    nor evict the rows warmed before the fan-out.
    """
    from repro.network import metric_cache_info
    from repro.obs.metrics import counter

    system, strategy, network, candidates = bench_instance
    view = network.lazy_metric()
    for node in candidates:
        view.distances_from(node)
    warmed = metric_cache_info()
    assert warmed.row_misses == len(candidates)

    serial = solve_qpp(
        system,
        strategy,
        network=network,
        alpha=2.0,
        candidate_sources=candidates,
    )
    pooled = solve_qpp(
        system,
        strategy,
        network=network,
        alpha=2.0,
        candidate_sources=candidates,
        parallel="process",
        certificate=certificate,
        max_workers=2,
    )
    assert pooled.objective == serial.objective
    assert pooled.source == serial.source
    assert pooled.optimum_lower_bound == serial.optimum_lower_bound
    assert placement_mapping(system, pooled.placement) == placement_mapping(
        system, serial.placement
    )

    # The fan-out forked workers mid-session; the parent's row counters
    # must read exactly as before the pooled sweep...
    after = metric_cache_info()
    assert after.row_misses == warmed.row_misses
    assert after.row_hits == warmed.row_hits
    assert after.row_evictions == warmed.row_evictions
    # ...and the warmed rows are still cached: re-reading one is a hit,
    # not a recomputation.
    view.distances_from(candidates[0])
    assert counter("metric.cache.row_hits").value == warmed.row_hits + 1
    assert network.lazy_metric() is view
