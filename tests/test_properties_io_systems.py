"""Property-based round-trips for system/strategy/placement serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import io
from repro.core import Placement, average_max_delay
from repro.network import Network
from repro.quorums import AccessStrategy, QuorumSystem


@st.composite
def serializable_instances(draw):
    """A random anchored system + tree network + placement, all using
    JSON-safe labels."""
    n_elements = draw(st.integers(min_value=2, max_value=6))
    quorums = []
    seen = set()
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        extra = draw(
            st.sets(
                st.integers(min_value=1, max_value=n_elements - 1),
                max_size=n_elements - 1,
            )
        )
        quorum = frozenset({0} | extra)
        if quorum not in seen:
            seen.add(quorum)
            quorums.append(quorum)
    system = QuorumSystem(quorums, universe=range(n_elements), check=False)

    n_nodes = draw(st.integers(min_value=2, max_value=6))
    edges = []
    for node in range(1, n_nodes):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        length = draw(st.floats(min_value=0.1, max_value=9.0, allow_nan=False))
        edges.append((parent, node, length))
    network = Network(range(n_nodes), edges, capacities=5.0)

    mapping = {
        u: draw(st.integers(min_value=0, max_value=n_nodes - 1))
        for u in system.universe
    }
    weights = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
            min_size=len(system),
            max_size=len(system),
        )
    )
    strategy = AccessStrategy.from_weights(system, weights)
    placement = Placement(system, network, mapping)
    return system, strategy, network, placement


@given(serializable_instances())
@settings(max_examples=40, deadline=None)
def test_system_roundtrip_property(instance):
    system, _, _, _ = instance
    restored = io.system_from_dict(io.system_to_dict(system))
    assert restored == system


@given(serializable_instances())
@settings(max_examples=40, deadline=None)
def test_strategy_roundtrip_preserves_loads(instance):
    system, strategy, _, _ = instance
    restored = io.strategy_from_dict(io.strategy_to_dict(strategy))
    assert restored.allclose(strategy)
    for u in system.universe:
        assert restored.load(u) == pytest.approx(strategy.load(u))


@given(serializable_instances())
@settings(max_examples=30, deadline=None)
def test_placement_roundtrip_preserves_objective(instance):
    system, strategy, network, placement = instance
    restored = io.placement_from_dict(io.placement_to_dict(placement))
    # The restored placement embeds its own (equal) system; evaluate it
    # with a strategy rebuilt over that system to compare objectives.
    restored_strategy = io.strategy_from_dict(io.strategy_to_dict(strategy))
    # Equal systems may order quorums differently after round-trip;
    # compare via the objective, which is order-independent.
    assert average_max_delay(restored, restored_strategy) == pytest.approx(
        average_max_delay(placement, strategy)
    )


@given(serializable_instances())
@settings(max_examples=30, deadline=None)
def test_json_text_is_stable(instance):
    """Serializing twice yields byte-identical JSON (sorted keys)."""
    import json

    _, _, network, placement = instance
    first = json.dumps(io.placement_to_dict(placement), sort_keys=True)
    second = json.dumps(io.placement_to_dict(placement), sort_keys=True)
    assert first == second
