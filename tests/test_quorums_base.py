"""Unit tests for the QuorumSystem core type."""

import pytest

from repro.exceptions import IntersectionError, ValidationError
from repro.quorums import QuorumSystem


@pytest.fixture
def triangle():
    return QuorumSystem([{1, 2}, {2, 3}, {1, 3}], name="triangle")


class TestConstruction:
    def test_basic_properties(self, triangle):
        assert len(triangle) == 3
        assert triangle.universe == (1, 2, 3)
        assert triangle.universe_size == 3

    def test_empty_family_rejected(self):
        with pytest.raises(ValidationError):
            QuorumSystem([])

    def test_empty_quorum_rejected(self):
        with pytest.raises(ValidationError):
            QuorumSystem([{1}, set()])

    def test_duplicate_quorums_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            QuorumSystem([{1, 2}, {2, 1}])

    def test_non_intersecting_family_rejected(self):
        with pytest.raises(IntersectionError):
            QuorumSystem([{1, 2}, {3, 4}])

    def test_check_false_skips_verification_but_verify_catches(self):
        broken = QuorumSystem([{1, 2}, {3, 4}], check=False)
        with pytest.raises(IntersectionError):
            broken.verify_intersection()

    def test_explicit_universe_may_have_unused_elements(self):
        qs = QuorumSystem([{1}], universe=[1, 2, 3])
        assert qs.universe == (1, 2, 3)
        assert qs.element_degree(2) == 0

    def test_universe_missing_used_element_rejected(self):
        with pytest.raises(ValidationError, match="missing"):
            QuorumSystem([{1, 2}], universe=[1])

    def test_heterogeneous_elements_get_deterministic_order(self):
        qs = QuorumSystem([{"a", 1}, {1, (2, 3)}])
        assert qs.universe == qs.universe  # stable
        assert set(qs.universe) == {"a", 1, (2, 3)}


class TestContainerProtocol:
    def test_iteration_and_indexing(self, triangle):
        quorums = list(triangle)
        assert quorums[0] == triangle[0]
        assert all(isinstance(q, frozenset) for q in quorums)

    def test_contains(self, triangle):
        assert {1, 2} in triangle
        assert {1, 2, 3} not in triangle
        assert 42 not in triangle  # non-iterable handled gracefully

    def test_equality_ignores_order_and_name(self):
        a = QuorumSystem([{1, 2}, {2, 3}], name="a")
        b = QuorumSystem([{2, 3}, {1, 2}], name="b")
        assert a == b
        assert hash(a) == hash(b)

    def test_equality_with_other_types(self, triangle):
        assert triangle != "triangle"

    def test_repr_mentions_name_and_sizes(self, triangle):
        text = repr(triangle)
        assert "triangle" in text and "3" in text


class TestStructure:
    def test_element_degree_and_membership(self, triangle):
        assert triangle.element_degree(1) == 2
        containing = triangle.quorums_containing(2)
        assert all(2 in triangle[i] for i in containing)
        assert len(containing) == 2

    def test_unknown_element_raises(self, triangle):
        with pytest.raises(ValidationError):
            triangle.element_degree(99)
        with pytest.raises(ValidationError):
            triangle.element_index(99)

    def test_quorum_sizes(self, triangle):
        assert triangle.min_quorum_size() == 2
        assert triangle.max_quorum_size() == 2

    def test_is_coterie(self, triangle):
        assert triangle.is_coterie()
        dominated = QuorumSystem([{1}, {1, 2}])
        assert not dominated.is_coterie()

    def test_reduced_drops_dominated_quorums(self):
        qs = QuorumSystem([{1}, {1, 2}, {1, 3}])
        reduced = qs.reduced()
        assert set(reduced.quorums) == {frozenset({1})}
        assert reduced.is_coterie()
        assert reduced.universe == qs.universe  # universe preserved


class TestRelabel:
    def test_relabel_applies_mapping(self, triangle):
        relabeled = triangle.relabel({1: "a", 2: "b", 3: "c"})
        assert set(relabeled.universe) == {"a", "b", "c"}
        assert frozenset({"a", "b"}) in set(relabeled.quorums)

    def test_relabel_partial_mapping_keeps_rest(self, triangle):
        relabeled = triangle.relabel({1: 10})
        assert set(relabeled.universe) == {10, 2, 3}

    def test_non_injective_relabel_rejected(self, triangle):
        with pytest.raises(ValidationError, match="injective"):
            triangle.relabel({1: 2})
