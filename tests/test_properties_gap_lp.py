"""Property-based tests for the LP layer and the GAP rounding."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import InfeasibleError
from repro.gap import GAPInstance, round_fractional_assignment, solve_gap_lp
from repro.lp import Model

# -- LP layer properties --------------------------------------------------------------


@given(
    st.lists(
        st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
        min_size=2,
        max_size=6,
    ),
    st.floats(min_value=1.0, max_value=10.0, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_lp_knapsack_relaxation_picks_best_ratio(costs, budget):
    """max sum x_i subject to sum c_i x_i <= budget, 0 <= x_i <= 1: the
    fractional knapsack optimum is achieved greedily by cheapest first."""
    m = Model()
    xs = m.variables(len(costs), ub=1.0)
    total_cost = xs[0] * costs[0]
    for x, c in zip(xs[1:], costs[1:]):
        total_cost = total_cost + x * c
    m.add_constraint(total_cost <= budget)
    objective = xs[0].to_expr()
    for x in xs[1:]:
        objective = objective + x
    m.maximize(objective)
    solution = m.solve()

    remaining = budget
    greedy = 0.0
    for c in sorted(costs):
        take = min(1.0, remaining / c)
        if take <= 0:
            break
        greedy += take
        remaining -= take * c
    assert solution.objective == pytest.approx(greedy, abs=1e-6)


@given(
    st.integers(min_value=1, max_value=5),
    st.floats(min_value=0.5, max_value=5.0, allow_nan=False),
)
@settings(max_examples=30, deadline=None)
def test_lp_scaling_invariance(n, scale):
    """Scaling the objective scales the optimum linearly."""
    def build(factor):
        m = Model()
        xs = m.variables(n, ub=1.0)
        expr = xs[0] * factor
        for i, x in enumerate(xs[1:], start=2):
            expr = expr + x * (factor * i)
        m.minimize(expr)
        total = xs[0].to_expr()
        for x in xs[1:]:
            total = total + x
        m.add_constraint(total >= 1)
        return m.solve().objective

    base = build(1.0)
    scaled = build(scale)
    assert scaled == pytest.approx(scale * base, rel=1e-6)


# -- GAP properties ---------------------------------------------------------------------


@st.composite
def gap_instances(draw):
    machines = draw(st.integers(min_value=2, max_value=4))
    jobs = draw(st.integers(min_value=1, max_value=5))
    costs = draw(
        arrays(
            float,
            (machines, jobs),
            elements=st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
        )
    )
    loads = draw(
        arrays(
            float,
            (machines, jobs),
            elements=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
        )
    )
    capacities = draw(
        arrays(
            float,
            (machines,),
            elements=st.floats(min_value=0.5, max_value=3.0, allow_nan=False),
        )
    )
    return GAPInstance(
        tuple(range(jobs)),
        tuple(f"m{i}" for i in range(machines)),
        costs,
        loads,
        capacities,
    )


@given(gap_instances())
@settings(max_examples=50, deadline=None)
def test_shmoys_tardos_guarantees_always_hold(instance):
    """The Theorem 3.11 pair of guarantees on arbitrary feasible LPs."""
    try:
        fractional = solve_gap_lp(instance)
    except InfeasibleError:
        assume(False)  # discard infeasible draws
        return
    rounded = round_fractional_assignment(fractional)
    assert rounded.cost <= fractional.cost + 1e-6
    for i, machine in enumerate(instance.machines):
        bound = instance.capacities[i] + instance.max_load_on_machine(i)
        assert rounded.machine_loads[machine] <= bound + 1e-6


@given(gap_instances())
@settings(max_examples=50, deadline=None)
def test_rounding_covers_every_job_exactly_once(instance):
    try:
        fractional = solve_gap_lp(instance)
    except InfeasibleError:
        assume(False)
        return
    rounded = round_fractional_assignment(fractional)
    assert set(rounded.assignment) == set(instance.jobs)
    assert all(m in instance.machines for m in rounded.assignment.values())


@given(gap_instances())
@settings(max_examples=30, deadline=None)
def test_lp_fractions_form_distribution_per_job(instance):
    try:
        fractional = solve_gap_lp(instance)
    except InfeasibleError:
        assume(False)
        return
    sums = np.asarray(fractional.fractions).sum(axis=0)
    assert sums == pytest.approx(np.ones(instance.num_jobs), abs=1e-6)
