"""The ``repro bench`` subcommand and its BENCH_3.json report.

Schema validity, run-to-run determinism of the *result* fields (same
seed, same values and checksums), and presence — but never assertion —
of the timing fields, which vary with machine load by nature.
"""

import copy
import json

import pytest

from repro.cli import main
from repro.exceptions import ValidationError
from repro.experiments import (
    BENCH_SCHEMA_VERSION,
    run_bench,
    validate_bench_report,
)
from repro.experiments.bench import (
    _CASE_TIMING_KEYS,
    _CASE_VALUE_KEYS,
    DEFAULT_NOISE_BAND,
    BenchComparison,
    BenchDelta,
    compare_bench_reports,
    render_bench_comparison_markdown,
    render_bench_comparison_text,
)


def _strip_timings(report: dict) -> dict:
    """The deterministic slice of a report: everything but timings.

    The top-level ``telemetry`` block is stripped along with the
    per-case timing keys: its wall time is machine noise by nature.
    """
    cases = {}
    for name, case in report["cases"].items():
        cases[name] = {
            k: v for k, v in case.items() if k not in _CASE_TIMING_KEYS[name]
        }
    kept = {k: v for k, v in report.items() if k not in ("cases", "telemetry")}
    return {**kept, "cases": cases}


class TestRunBench:
    def test_report_is_schema_valid(self):
        report = run_bench(quick=True, seed=0)
        validate_bench_report(report)
        assert report["schema_version"] == BENCH_SCHEMA_VERSION
        assert set(report["cases"]) == set(_CASE_VALUE_KEYS)

    def test_values_are_deterministic_run_to_run(self):
        first = run_bench(quick=True, seed=0)
        second = run_bench(quick=True, seed=0)
        assert _strip_timings(first) == _strip_timings(second)

    def test_timings_present_but_runs_differ_freely(self):
        report = run_bench(quick=True, seed=0)
        for name, case in report["cases"].items():
            for key in _CASE_TIMING_KEYS[name]:
                assert isinstance(case[key], float)
                # Present and sane; the magnitude is machine noise.
                assert case[key] >= 0 or case[key] != case[key]

    def test_telemetry_block_reports_lp_solves(self):
        report = run_bench(quick=True, seed=0)
        telemetry = report["telemetry"]
        assert telemetry["wall_seconds"] > 0
        assert telemetry["metrics"]["lp.solve.count"] > 0
        assert telemetry["metrics"]["metric.cache.builds"] > 0

    def test_quick_and_full_agree_on_values(self):
        quick = run_bench(quick=True, seed=0)
        full = run_bench(quick=False, seed=0)
        quick_values = _strip_timings(quick)
        full_values = _strip_timings(full)
        quick_values.pop("quick")
        full_values.pop("quick")
        # The metric cache-hit counter scales with the repeat count, so
        # only the numeric results are required to agree across modes.
        quick_values["cases"]["metric_batched"].pop("cache_hits")
        full_values["cases"]["metric_batched"].pop("cache_hits")
        assert quick_values == full_values


class TestValidateBenchReport:
    def test_rejects_missing_case(self):
        report = run_bench(quick=True, seed=0)
        del report["cases"]["ssqpp_solve"]
        with pytest.raises(ValidationError, match="missing case"):
            validate_bench_report(report)

    def test_rejects_wrong_schema_version(self):
        report = run_bench(quick=True, seed=0)
        report["schema_version"] = 99
        with pytest.raises(ValidationError, match="schema version"):
            validate_bench_report(report)

    def test_rejects_missing_key(self):
        report = run_bench(quick=True, seed=0)
        del report["cases"]["metric_batched"]["checksum"]
        with pytest.raises(ValidationError, match="missing key"):
            validate_bench_report(report)

    def test_rejects_missing_telemetry(self):
        report = run_bench(quick=True, seed=0)
        del report["telemetry"]
        with pytest.raises(ValidationError, match="telemetry"):
            validate_bench_report(report)


class TestCLI:
    def test_bench_quick_writes_valid_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_3.json"
        assert main(["bench", "--quick", "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        validate_bench_report(report)
        captured = capsys.readouterr().out
        assert "bench micro-suite" in captured
        assert "average_max_delay" in captured

    def test_bench_cli_matches_library_values(self, tmp_path):
        out = tmp_path / "report.json"
        main(["bench", "--quick", "--seed", "7", "--out", str(out)])
        cli_report = json.loads(out.read_text())
        lib_report = run_bench(quick=True, seed=7)
        assert _strip_timings(cli_report) == _strip_timings(lib_report)

    def test_bench_trace_out_writes_span_jsonl(self, tmp_path):
        from repro.obs.trace import read_spans_jsonl

        out = tmp_path / "report.json"
        spans = tmp_path / "spans.jsonl"
        assert main(
            ["bench", "--quick", "--out", str(out), "--trace-out", str(spans)]
        ) == 0
        roots = read_spans_jsonl(str(spans))
        assert roots and roots[0].name == "bench.run"
        # The wrapped QPP sweep gives the tree real depth.
        assert max(root.max_depth for root in roots) >= 3


@pytest.fixture(scope="module")
def baseline_report() -> dict:
    return run_bench(quick=True, seed=0)


def _delta(comparison: BenchComparison, case: str, metric: str) -> BenchDelta:
    matches = [
        d for d in comparison.deltas if d.case == case and d.metric == metric
    ]
    assert len(matches) == 1, f"expected one delta for {case}.{metric}"
    return matches[0]


class TestCompareBenchReports:
    def test_identical_reports_have_no_regressions(self, baseline_report):
        comparison = compare_bench_reports(baseline_report, baseline_report)
        assert comparison.noise_band == DEFAULT_NOISE_BAND
        assert not comparison.regressions
        assert not comparison.notes
        assert all(d.verdict == "ok" for d in comparison.deltas)
        # Every timing metric of every case is covered.
        covered = {(d.case, d.metric) for d in comparison.deltas}
        expected = {
            (case, metric)
            for case, metrics in _CASE_TIMING_KEYS.items()
            for metric in metrics
        }
        assert covered == expected

    def test_slower_seconds_is_a_regression(self, baseline_report):
        new = copy.deepcopy(baseline_report)
        new["cases"]["ssqpp_solve"]["solve_seconds"] *= 3.0
        comparison = compare_bench_reports(baseline_report, new)
        delta = _delta(comparison, "ssqpp_solve", "solve_seconds")
        assert delta.verdict == "regression"
        assert delta.ratio == pytest.approx(3.0)
        assert comparison.regressions == (delta,)

    def test_faster_seconds_is_an_improvement(self, baseline_report):
        new = copy.deepcopy(baseline_report)
        new["cases"]["qpp_sweep"]["sweep_seconds"] /= 4.0
        comparison = compare_bench_reports(baseline_report, new)
        delta = _delta(comparison, "qpp_sweep", "sweep_seconds")
        assert delta.verdict == "improved"
        assert not comparison.regressions
        assert comparison.improvements == (delta,)

    def test_lower_speedup_is_a_regression(self, baseline_report):
        # speedup is higher-is-better: the band mirrors for it.
        new = copy.deepcopy(baseline_report)
        new["cases"]["average_max_delay"]["speedup"] /= 3.0
        comparison = compare_bench_reports(baseline_report, new)
        delta = _delta(comparison, "average_max_delay", "speedup")
        assert delta.verdict == "regression"

    def test_higher_speedup_is_an_improvement(self, baseline_report):
        new = copy.deepcopy(baseline_report)
        new["cases"]["average_max_delay"]["speedup"] *= 3.0
        comparison = compare_bench_reports(baseline_report, new)
        delta = _delta(comparison, "average_max_delay", "speedup")
        assert delta.verdict == "improved"

    def test_moves_inside_the_noise_band_are_ok(self, baseline_report):
        new = copy.deepcopy(baseline_report)
        new["cases"]["ssqpp_solve"]["solve_seconds"] *= 1.10
        comparison = compare_bench_reports(baseline_report, new)
        assert _delta(comparison, "ssqpp_solve", "solve_seconds").verdict == "ok"

    def test_noise_band_is_configurable(self, baseline_report):
        new = copy.deepcopy(baseline_report)
        new["cases"]["ssqpp_solve"]["solve_seconds"] *= 3.0
        generous = compare_bench_reports(baseline_report, new, noise_band=5.0)
        assert not generous.regressions
        strict = compare_bench_reports(baseline_report, new, noise_band=0.05)
        assert strict.regressions

    def test_checksum_drift_is_a_note_not_a_regression(self, baseline_report):
        new = copy.deepcopy(baseline_report)
        new["cases"]["qpp_sweep"]["checksum"] = "0" * 64
        comparison = compare_bench_reports(baseline_report, new)
        assert not comparison.regressions
        assert any("checksum drift" in note for note in comparison.notes)

    def test_quick_and_seed_mismatches_become_notes(self, baseline_report):
        new = copy.deepcopy(baseline_report)
        new["quick"] = not new["quick"]
        new["seed"] = new["seed"] + 1
        comparison = compare_bench_reports(baseline_report, new)
        assert any("quick-mode mismatch" in note for note in comparison.notes)
        assert any("seed mismatch" in note for note in comparison.notes)

    def test_non_positive_old_timing_is_skipped_with_a_note(self, baseline_report):
        old = copy.deepcopy(baseline_report)
        old["cases"]["ssqpp_solve"]["solve_seconds"] = 0.0
        comparison = compare_bench_reports(old, baseline_report)
        assert not [
            d for d in comparison.deltas
            if d.case == "ssqpp_solve" and d.metric == "solve_seconds"
        ]
        assert any("non-positive" in note for note in comparison.notes)

    def test_invalid_reports_are_rejected(self, baseline_report):
        broken = copy.deepcopy(baseline_report)
        del broken["cases"]["qpp_sweep"]
        with pytest.raises(ValidationError, match="missing case"):
            compare_bench_reports(broken, baseline_report)
        with pytest.raises(ValidationError, match="missing case"):
            compare_bench_reports(baseline_report, broken)

    def test_negative_noise_band_is_rejected(self, baseline_report):
        with pytest.raises(ValidationError, match="noise_band"):
            compare_bench_reports(
                baseline_report, baseline_report, noise_band=-0.1
            )


class TestComparisonRenderers:
    def test_text_render_flags_the_regression(self, baseline_report):
        new = copy.deepcopy(baseline_report)
        new["cases"]["ssqpp_solve"]["solve_seconds"] *= 3.0
        text = render_bench_comparison_text(
            compare_bench_reports(baseline_report, new)
        )
        assert "!! ssqpp_solve.solve_seconds" in text
        assert "1 regression(s) beyond the noise band" in text

    def test_text_render_reports_a_clean_pass(self, baseline_report):
        text = render_bench_comparison_text(
            compare_bench_reports(baseline_report, baseline_report)
        )
        assert "no regressions beyond the noise band" in text

    def test_markdown_render_is_a_speedup_history_table(self, baseline_report):
        markdown = render_bench_comparison_markdown(
            compare_bench_reports(baseline_report, baseline_report)
        )
        lines = markdown.splitlines()
        assert "| case | metric | old | new | ratio | verdict |" in lines
        rows = [line for line in lines if line.startswith("| ") and " ok |" in line]
        total_metrics = sum(len(m) for m in _CASE_TIMING_KEYS.values())
        assert len(rows) == total_metrics


class TestCompareCLI:
    def test_two_path_compare_exits_one_on_regression(
        self, baseline_report, tmp_path, capsys
    ):
        new = copy.deepcopy(baseline_report)
        new["cases"]["ssqpp_solve"]["solve_seconds"] *= 3.0
        old_path = tmp_path / "old.json"
        new_path = tmp_path / "new.json"
        old_path.write_text(json.dumps(baseline_report))
        new_path.write_text(json.dumps(new))
        code = main(
            ["bench", "--compare", str(old_path), str(new_path)]
        )
        assert code == 1
        assert "regression" in capsys.readouterr().out

    def test_two_path_compare_exits_zero_when_clean(
        self, baseline_report, tmp_path, capsys
    ):
        old_path = tmp_path / "old.json"
        old_path.write_text(json.dumps(baseline_report))
        code = main(["bench", "--compare", str(old_path), str(old_path)])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_markdown_flag_renders_the_table(self, baseline_report, tmp_path, capsys):
        old_path = tmp_path / "old.json"
        old_path.write_text(json.dumps(baseline_report))
        main(
            ["bench", "--compare", str(old_path), str(old_path), "--markdown"]
        )
        assert "| case | metric | old | new | ratio | verdict |" in (
            capsys.readouterr().out
        )

    def test_more_than_two_paths_is_rejected(
        self, baseline_report, tmp_path, capsys
    ):
        old_path = tmp_path / "old.json"
        old_path.write_text(json.dumps(baseline_report))
        code = main(
            ["bench", "--compare", str(old_path), str(old_path), str(old_path)]
        )
        assert code == 2
        assert "--compare takes" in capsys.readouterr().err

    def test_one_path_runs_fresh_and_compares(
        self, baseline_report, tmp_path, capsys
    ):
        old_path = tmp_path / "old.json"
        out_path = tmp_path / "fresh.json"
        old_path.write_text(json.dumps(baseline_report))
        # A huge band keeps host-speed noise from failing the test;
        # the exit code and the rendered table are what we assert.
        code = main(
            [
                "bench", "--quick", "--out", str(out_path),
                "--compare", str(old_path), "--noise-band", "1000",
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "bench comparison" in captured
        validate_bench_report(json.loads(out_path.read_text()))
