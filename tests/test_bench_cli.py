"""The ``repro bench`` subcommand and its BENCH_3.json report.

Schema validity, run-to-run determinism of the *result* fields (same
seed, same values and checksums), and presence — but never assertion —
of the timing fields, which vary with machine load by nature.
"""

import json

import pytest

from repro.cli import main
from repro.exceptions import ValidationError
from repro.experiments import (
    BENCH_SCHEMA_VERSION,
    run_bench,
    validate_bench_report,
)
from repro.experiments.bench import _CASE_TIMING_KEYS, _CASE_VALUE_KEYS


def _strip_timings(report: dict) -> dict:
    """The deterministic slice of a report: everything but timings.

    The top-level ``telemetry`` block is stripped along with the
    per-case timing keys: its wall time is machine noise by nature.
    """
    cases = {}
    for name, case in report["cases"].items():
        cases[name] = {
            k: v for k, v in case.items() if k not in _CASE_TIMING_KEYS[name]
        }
    kept = {k: v for k, v in report.items() if k not in ("cases", "telemetry")}
    return {**kept, "cases": cases}


class TestRunBench:
    def test_report_is_schema_valid(self):
        report = run_bench(quick=True, seed=0)
        validate_bench_report(report)
        assert report["schema_version"] == BENCH_SCHEMA_VERSION
        assert set(report["cases"]) == set(_CASE_VALUE_KEYS)

    def test_values_are_deterministic_run_to_run(self):
        first = run_bench(quick=True, seed=0)
        second = run_bench(quick=True, seed=0)
        assert _strip_timings(first) == _strip_timings(second)

    def test_timings_present_but_runs_differ_freely(self):
        report = run_bench(quick=True, seed=0)
        for name, case in report["cases"].items():
            for key in _CASE_TIMING_KEYS[name]:
                assert isinstance(case[key], float)
                # Present and sane; the magnitude is machine noise.
                assert case[key] >= 0 or case[key] != case[key]

    def test_telemetry_block_reports_lp_solves(self):
        report = run_bench(quick=True, seed=0)
        telemetry = report["telemetry"]
        assert telemetry["wall_seconds"] > 0
        assert telemetry["metrics"]["lp.solve.count"] > 0
        assert telemetry["metrics"]["metric.cache.builds"] > 0

    def test_quick_and_full_agree_on_values(self):
        quick = run_bench(quick=True, seed=0)
        full = run_bench(quick=False, seed=0)
        quick_values = _strip_timings(quick)
        full_values = _strip_timings(full)
        quick_values.pop("quick")
        full_values.pop("quick")
        # The metric cache-hit counter scales with the repeat count, so
        # only the numeric results are required to agree across modes.
        quick_values["cases"]["metric_batched"].pop("cache_hits")
        full_values["cases"]["metric_batched"].pop("cache_hits")
        assert quick_values == full_values


class TestValidateBenchReport:
    def test_rejects_missing_case(self):
        report = run_bench(quick=True, seed=0)
        del report["cases"]["ssqpp_solve"]
        with pytest.raises(ValidationError, match="missing case"):
            validate_bench_report(report)

    def test_rejects_wrong_schema_version(self):
        report = run_bench(quick=True, seed=0)
        report["schema_version"] = 99
        with pytest.raises(ValidationError, match="schema version"):
            validate_bench_report(report)

    def test_rejects_missing_key(self):
        report = run_bench(quick=True, seed=0)
        del report["cases"]["metric_batched"]["checksum"]
        with pytest.raises(ValidationError, match="missing key"):
            validate_bench_report(report)

    def test_rejects_missing_telemetry(self):
        report = run_bench(quick=True, seed=0)
        del report["telemetry"]
        with pytest.raises(ValidationError, match="telemetry"):
            validate_bench_report(report)


class TestCLI:
    def test_bench_quick_writes_valid_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_3.json"
        assert main(["bench", "--quick", "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        validate_bench_report(report)
        captured = capsys.readouterr().out
        assert "bench micro-suite" in captured
        assert "average_max_delay" in captured

    def test_bench_cli_matches_library_values(self, tmp_path):
        out = tmp_path / "report.json"
        main(["bench", "--quick", "--seed", "7", "--out", str(out)])
        cli_report = json.loads(out.read_text())
        lib_report = run_bench(quick=True, seed=7)
        assert _strip_timings(cli_report) == _strip_timings(lib_report)

    def test_bench_trace_out_writes_span_jsonl(self, tmp_path):
        from repro.obs.trace import read_spans_jsonl

        out = tmp_path / "report.json"
        spans = tmp_path / "spans.jsonl"
        assert main(
            ["bench", "--quick", "--out", str(out), "--trace-out", str(spans)]
        ) == 0
        roots = read_spans_jsonl(str(spans))
        assert roots and roots[0].name == "bench.run"
        # The wrapped QPP sweep gives the tree real depth.
        assert max(root.max_depth for root in roots) >= 3
