"""Meta-tests over the public API surface.

These guard the packaging promises: everything exported in ``__all__``
exists, is importable, and carries a docstring — so the documented API
cannot silently drift from the implementation.
"""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.analysis",
    "repro.core",
    "repro.experiments",
    "repro.gap",
    "repro.io",
    "repro.lp",
    "repro.network",
    "repro.obs",
    "repro.quorums",
    "repro.scheduling",
    "repro.serve",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip()


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{module_name} should declare __all__"
    for name in exported:
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            # Re-exported aliases of stdlib types (Node, Element) are
            # documented at their defining module, not here.
            if not getattr(obj, "__module__", "").startswith("repro"):
                continue
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, f"undocumented public names: {undocumented}"


def test_version_is_consistent():
    import repro

    assert repro.__version__ == "1.0.0"


def test_no_export_shadows_submodule():
    """Regression guard for the total_delay module/function collision:
    no name in a package's __all__ may be bound to a *module* object
    unless it genuinely is the submodule re-export."""
    import types

    import repro.core as core

    for name in core.__all__:
        obj = getattr(core, name)
        assert not isinstance(obj, types.ModuleType), (
            f"repro.core.{name} resolves to a module; a function or class "
            "was probably shadowed by a submodule import"
        )


def test_headline_solvers_share_signature_conventions():
    """Every solver takes (system, strategy, network, ...) in that order
    and supports keyword-only tuning parameters."""
    from repro.core import solve_qpp, solve_ssqpp, solve_total_delay

    for solver in (solve_qpp, solve_total_delay):
        parameters = list(inspect.signature(solver).parameters)
        assert parameters[:3] == ["system", "strategy", "network"]
    ssqpp_parameters = list(inspect.signature(solve_ssqpp).parameters)
    assert ssqpp_parameters[:4] == ["system", "strategy", "network", "source"]
