"""Tests for the max-delay / total-delay scalarization."""

import numpy as np
import pytest

from repro.core import (
    max_vs_total_frontier,
    solve_scalarized_placement,
    solve_ssqpp,
    solve_total_delay,
)
from repro.exceptions import ValidationError
from repro.network import random_geometric_network, uniform_capacities
from repro.quorums import AccessStrategy, majority


@pytest.fixture
def instance(rng):
    system = majority(5)
    strategy = AccessStrategy.uniform(system)
    network = uniform_capacities(random_geometric_network(9, 0.5, rng=rng), 0.9)
    return system, strategy, network


class TestScalarization:
    def test_load_guarantee_holds_at_every_weight(self, instance):
        system, strategy, network = instance
        for weight in (0.0, 0.3, 0.7, 1.0):
            result = solve_scalarized_placement(
                system, strategy, network, 0, weight=weight, alpha=2.0
            )
            assert result.max_load_factor <= 3.0 + 1e-6

    def test_weight_one_matches_pure_ssqpp_shape(self, instance):
        """At weight 1 the pipeline is the plain §3.3 algorithm: the
        realized max-delay stays within the Theorem 3.7 bound."""
        system, strategy, network = instance
        pure = solve_ssqpp(system, strategy, network, 0, alpha=2.0)
        scalarized = solve_scalarized_placement(
            system, strategy, network, 0, weight=1.0, alpha=2.0
        )
        assert scalarized.max_delay <= pure.delay_bound + 1e-6

    def test_weight_zero_tracks_total_delay_solver(self, instance):
        """At weight 0 the objective is the Section 5 decomposition; the
        scalarized result should not be far above the dedicated solver
        (which has no source restriction but the same per-element costs)."""
        system, strategy, network = instance
        dedicated = solve_total_delay(system, strategy, network)
        scalarized = solve_scalarized_placement(
            system, strategy, network, 0, weight=0.0, alpha=2.0
        )
        assert scalarized.total_delay <= 1.5 * dedicated.delay + 1e-6

    def test_reported_metrics_match_placement(self, instance):
        from repro.core import average_total_delay, expected_max_delay

        system, strategy, network = instance
        result = solve_scalarized_placement(
            system, strategy, network, 0, weight=0.5
        )
        assert result.max_delay == pytest.approx(
            expected_max_delay(result.placement, strategy, 0)
        )
        assert result.total_delay == pytest.approx(
            average_total_delay(result.placement, strategy)
        )

    def test_weight_validation(self, instance):
        system, strategy, network = instance
        with pytest.raises(ValidationError):
            solve_scalarized_placement(
                system, strategy, network, 0, weight=1.5
            )
        with pytest.raises(ValidationError):
            solve_scalarized_placement(
                system, strategy, network, 0, weight=0.5, alpha=1.0
            )


class TestFrontier:
    def test_frontier_is_pareto_clean(self, instance):
        system, strategy, network = instance
        front = max_vs_total_frontier(system, strategy, network, 0)
        assert front
        for i, a in enumerate(front):
            for b in front[i + 1 :]:
                dominated = (
                    a.max_delay <= b.max_delay + 1e-12
                    and a.total_delay <= b.total_delay + 1e-12
                )
                assert not dominated or (
                    a.max_delay == pytest.approx(b.max_delay)
                    and a.total_delay == pytest.approx(b.total_delay)
                )

    def test_frontier_sorted_by_max_delay(self, instance):
        system, strategy, network = instance
        front = max_vs_total_frontier(system, strategy, network, 0)
        delays = [point.max_delay for point in front]
        assert delays == sorted(delays)

    def test_custom_weights(self, instance):
        system, strategy, network = instance
        front = max_vs_total_frontier(
            system, strategy, network, 0, weights=[0.0, 1.0]
        )
        assert 1 <= len(front) <= 2
