"""Telemetry for the lazy metric's LRU row cache.

The row counters live in the same ``metric.cache.*`` family as the
dense build/hit counters, so they must flow through both
``metric_cache_info()`` surfaces (module-level and per-network), reset
under the autouse observability fixture, and — because the registry is
fork-aware — start from zero in pooled children (the mirror of the
dense-cache fork test in tests/test_parallel.py).
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.exceptions import ValidationError
from repro.network import (
    LazyMetric,
    metric_cache_clear,
    metric_cache_info,
)
from repro.obs.metrics import counter, gauge
from repro.parallel import parallel_map

FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()


def read_row_miss_counter(_):
    """Pool probe: the child's view of the lazy-metric miss counter."""
    return counter("metric.cache.row_misses").value


def _certificate():
    return {
        "kind": "repro-parallel-safety-certificate",
        "version": 1,
        "policy": {"parallel_safe_effects": ["reads-global", "writes-metrics"]},
        "functions": {
            f"{read_row_miss_counter.__module__}.{read_row_miss_counter.__qualname__}": {
                "effects": ["reads-global"],
                "parallel_safe": True,
            }
        },
        "globals": {"variables": []},
    }


# -- counter flow through both info surfaces ------------------------------------------


class TestCounterFlow:
    def test_misses_hits_and_evictions_reach_module_info(self, small_network):
        lazy = LazyMetric(small_network, max_cached_rows=2)
        nodes = small_network.nodes
        lazy.distances_from(nodes[0])  # miss
        lazy.distances_from(nodes[0])  # hit
        lazy.distances_from(nodes[1])  # miss
        lazy.distances_from(nodes[2])  # miss + evict nodes[0]
        info = metric_cache_info()
        assert info.row_misses == 3
        assert info.row_hits == 1
        assert info.row_evictions == 1
        # Dense counters untouched: no Metric was ever built.
        assert info.builds == 0
        assert info.hits == 0
        assert gauge("metric.cache.row_peak").value == 2.0

    def test_local_cache_info_matches_global_counters(self, small_network):
        lazy = LazyMetric(small_network, max_cached_rows=2)
        for node in small_network.nodes:
            lazy.distances_from(node)
        local = lazy.cache_info()
        module = metric_cache_info()
        assert local.misses == module.row_misses == small_network.size
        assert local.evictions == module.row_evictions == small_network.size - 2
        assert local.cached_rows == 2
        assert local.peak_rows == 2
        assert local.max_cached_rows == 2

    def test_unbounded_cache_reports_sentinel_capacity(self, small_network):
        lazy = LazyMetric(small_network, max_cached_rows=None)
        for node in small_network.nodes:
            lazy.distances_from(node)
        info = lazy.cache_info()
        assert info.max_cached_rows == -1
        assert info.evictions == 0
        assert info.cached_rows == small_network.size

    def test_network_info_merges_its_lazy_view(self, small_network):
        view = small_network.lazy_metric()
        view.distances_from(small_network.nodes[0])
        view.distances_from(small_network.nodes[0])
        info = small_network.metric_cache_info()
        assert info.row_misses == 1
        assert info.row_hits == 1
        # The dense per-network cache stays independent of the lazy view.
        assert info.builds == 0


# -- reset semantics ------------------------------------------------------------------


class TestResetSemantics:
    """Each test leaks counter state on purpose; the autouse
    ``_fresh_observability_state`` fixture must isolate them.  The pair
    runs in file order, so either would see the other's residue if the
    reset were broken."""

    def test_reset_part_one_leaks_row_traffic(self, small_network):
        lazy = LazyMetric(small_network, max_cached_rows=1)
        for node in small_network.nodes:
            lazy.distances_from(node)
        assert metric_cache_info().row_misses == small_network.size

    def test_reset_part_two_starts_clean(self, small_network):
        before = metric_cache_info()
        assert before.row_misses == 0
        assert before.row_hits == 0
        assert before.row_evictions == 0
        assert gauge("metric.cache.row_peak").value == 0.0

    def test_explicit_clear_resets_counters_and_lazy_view(self, small_network):
        view = small_network.lazy_metric()
        view.distances_from(small_network.nodes[0])
        assert metric_cache_info().row_misses == 1
        metric_cache_clear()
        info = metric_cache_info()
        assert info.row_misses == 0 and info.row_hits == 0
        # The per-network clear also drops the cached lazy view...
        small_network.metric_cache_clear()
        assert small_network.lazy_metric() is not view
        # ...while the module-level clear left the instance intact above.

    def test_lazy_view_is_cached_and_capacity_conflicts_are_rejected(
        self, small_network
    ):
        view = small_network.lazy_metric()
        assert small_network.lazy_metric() is view
        assert small_network.lazy_metric(max_cached_rows=view.max_cached_rows) is view
        with pytest.raises(ValidationError, match="max_cached_rows"):
            small_network.lazy_metric(max_cached_rows=view.max_cached_rows + 1)


# -- fork awareness (mirror of tests/test_parallel.py) --------------------------------


@pytest.mark.skipif(not FORK_AVAILABLE, reason="needs fork start method")
def test_forked_children_start_with_zero_row_counters(small_network):
    lazy = LazyMetric(small_network)
    for node in small_network.nodes:
        lazy.distances_from(node)
    parent_misses = counter("metric.cache.row_misses").value
    assert parent_misses == small_network.size
    child_views = parallel_map(
        read_row_miss_counter,
        [0, 1],
        certificate=_certificate(),
        max_workers=2,
    )
    # os.register_at_fork zeroes the default registry in each child, so
    # the lazy-metric traffic accumulated here must not leak through...
    assert child_views == [0.0, 0.0]
    # ...and the fan-out must not disturb the parent's accounting.
    assert counter("metric.cache.row_misses").value == parent_misses
    assert metric_cache_info().row_misses == small_network.size
