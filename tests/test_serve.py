"""The serving layer: schema v1, snapshot cache, and the engine.

Session-level behavior (JSONL loop, byte-identical replay, the 500-node
end-to-end run through ``repro serve``) lives in
``tests/test_serve_session.py``.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core import solve_partial_deployment, solve_total_delay
from repro.core.qpp import solve_qpp, warm_candidates
from repro.core.rw_placement import solve_rw_placement, solve_rw_ssqpp
from repro.core.ssqpp import solve_ssqpp
from repro.exceptions import ValidationError
from repro.lint import build_error_contract_for_paths
from repro.network.generators import (
    cycle_network,
    grid_network,
    random_geometric_network,
)
from repro.obs.metrics import default_registry
from repro.quorums import AccessStrategy, QuorumSystem, grid_rw, majority
from repro.resilience import maybe_retrying
from repro.serve import (
    REQUEST_KIND,
    REQUEST_OPS,
    RESPONSE_KIND,
    SERVE_SCHEMA_VERSION,
    PlacementService,
    PlacementSnapshot,
    SnapshotCache,
    serve_request,
    validate_serve_request,
    validate_serve_response,
)

SRC = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture
def grid_instance():
    network = grid_network(3, 3).with_capacities(2.0)
    system = majority(5)
    return system, AccessStrategy.uniform(system), network


def _service(instance, **kwargs):
    system, strategy, network = instance
    return PlacementService(system, strategy, network, **kwargs)


class TestRequestSchema:
    def test_builder_produces_valid_documents_for_every_op(self):
        fields = {"query": {"client": 0}, "update": {"client": 0, "rate": 1.5}}
        for op in REQUEST_OPS:
            document = serve_request(op, id=7, **fields.get(op, {}))
            assert document["kind"] == REQUEST_KIND
            assert document["schema_version"] == SERVE_SCHEMA_VERSION
            validate_serve_request(document)

    def test_rejects_non_mapping(self):
        with pytest.raises(ValidationError, match="JSON object"):
            validate_serve_request([1, 2, 3])

    def test_rejects_wrong_kind_and_version(self):
        with pytest.raises(ValidationError, match="kind"):
            validate_serve_request(
                {"kind": "nope", "schema_version": 1, "id": 1, "op": "stats"}
            )
        with pytest.raises(ValidationError, match="schema_version"):
            validate_serve_request(
                {"kind": REQUEST_KIND, "schema_version": 99, "id": 1, "op": "stats"}
            )

    def test_rejects_unknown_op_and_missing_keys(self):
        with pytest.raises(ValidationError, match="op must be one of"):
            serve_request("shutdown", id=1)
        with pytest.raises(ValidationError, match="missing required key 'client'"):
            serve_request("query", id=1)
        with pytest.raises(ValidationError, match="missing required key 'rate'"):
            serve_request("update", id=1, client=0)

    def test_rejects_boolean_id_and_non_numeric_rate(self):
        with pytest.raises(ValidationError, match="id must be"):
            serve_request("stats", id=True)
        with pytest.raises(ValidationError, match="rate must be a number"):
            serve_request("update", id=1, client=0, rate="fast")


class TestResponseSchema:
    def test_engine_responses_validate_for_every_op(self, grid_instance):
        service = _service(grid_instance, max_batch=8)
        client = grid_instance[2].nodes[0]
        for op, fields in [
            ("query", {"client": client}),
            ("update", {"client": client, "rate": 2.0}),
            ("stats", {}),
            ("resolve", {}),
        ]:
            service.submit(serve_request(op, id=op, **fields))
        for response in service.tick():
            assert response["kind"] == RESPONSE_KIND
            validate_serve_response(response)

    def test_error_response_validates_and_carries_message(self, grid_instance):
        service = _service(grid_instance)
        response = service.error_response("boom")
        assert response["ok"] is False
        assert response["error"] == "boom"
        validate_serve_response(response)

    def test_missing_extra_key_rejected(self):
        with pytest.raises(ValidationError, match="missing required key 'delay'"):
            validate_serve_response(
                {
                    "kind": RESPONSE_KIND,
                    "schema_version": SERVE_SCHEMA_VERSION,
                    "id": 1,
                    "op": "query",
                    "ok": True,
                    "tick": 1,
                    "version": 1,
                    "stale": False,
                }
            )


class TestSnapshotCache:
    def _snapshot(self, version: int) -> PlacementSnapshot:
        per_client = np.array([1.0, 2.0])
        weights = np.array([0.5, 0.5])
        return PlacementSnapshot(
            version=version,
            placement=None,
            result=None,
            telemetry=None,
            per_client=per_client,
            weights=weights,
            objective=float(per_client @ weights),
        )

    def test_empty_cache_reads_fail_loudly(self):
        cache = SnapshotCache()
        assert cache.version == 0
        assert cache.published == 0
        with pytest.raises(ValidationError, match="nothing published"):
            cache.current

    def test_versions_increase_by_exactly_one(self):
        cache = SnapshotCache()
        cache.publish(self._snapshot(1))
        cache.publish(self._snapshot(2))
        assert cache.version == 2
        assert cache.published == 2

    def test_failed_publish_leaves_old_snapshot_serving(self):
        cache = SnapshotCache()
        first = cache.publish(self._snapshot(1))
        for bad_version in (1, 3, 0):
            with pytest.raises(ValidationError, match="exactly one"):
                cache.publish(self._snapshot(bad_version))
        assert cache.current is first
        assert cache.version == 1
        assert cache.published == 1

    def test_only_snapshots_can_be_published(self):
        with pytest.raises(ValidationError, match="PlacementSnapshot"):
            SnapshotCache().publish({"version": 1})

    def test_delay_lookup_and_projection_guard_shapes(self):
        snapshot = self._snapshot(1)
        assert snapshot.delay_for(1) == 2.0
        with pytest.raises(ValidationError, match="out of range"):
            snapshot.delay_for(2)
        with pytest.raises(ValidationError, match="does not match"):
            snapshot.projected_objective(np.array([1.0, 0.0, 0.0]))
        assert snapshot.projected_objective(np.array([1.0, 0.0])) == 1.0


class TestScaleUnification:
    """One shared ``check_scale`` gate across every solver that takes
    ``scale=`` (docs/api.md's matrix)."""

    @pytest.fixture
    def network(self):
        return cycle_network(6).with_capacities(2.0)

    def test_all_solvers_reject_bad_scale_identically(self, network):
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        rw = grid_rw(2)
        match = r"scale must be one of \(None, 'dense', 'large'\)"
        with pytest.raises(ValidationError, match=match):
            solve_qpp(system, strategy, network=network, scale="huge")
        with pytest.raises(ValidationError, match=match):
            solve_total_delay(system, strategy, network=network, scale="huge")
        with pytest.raises(ValidationError, match=match):
            solve_ssqpp(
                system,
                strategy,
                network=network,
                source=network.nodes[0],
                scale="huge",
            )
        with pytest.raises(ValidationError, match=match):
            solve_rw_placement(rw, network, read_fraction=0.5, scale="huge")
        with pytest.raises(ValidationError, match=match):
            solve_rw_ssqpp(
                rw,
                network,
                source=network.nodes[0],
                read_fraction=0.5,
                scale="huge",
            )
        square = QuorumSystem(
            [{0, 1}, {0, 2}, {0, 3}, {0, 1, 2}], universe=range(4), check=False
        )
        with pytest.raises(ValidationError, match=match):
            solve_partial_deployment(
                square, cycle_network(4).with_capacities(2.0), scale="huge"
            )

    def test_ssqpp_large_matches_dense(self, network):
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        source = network.nodes[0]
        dense = solve_ssqpp(system, strategy, network=network, source=source)
        large = solve_ssqpp(
            system, strategy, network=network, source=source, scale="large"
        )
        assert large.delay == pytest.approx(dense.delay, rel=1e-9)

    def test_rw_large_path_runs_on_landmark_candidates(self):
        rng = np.random.default_rng(3)
        network = random_geometric_network(24, 0.45, rng=rng).with_capacities(2.0)
        rw = grid_rw(2)
        result = solve_rw_placement(
            rw, network, read_fraction=0.5, scale="large", landmarks=4
        )
        assert result.average_delay >= 0.0

    def test_partial_deployment_large_matches_dense(self):
        square = QuorumSystem(
            [{0, 1}, {0, 2}, {0, 3}, {0, 1, 2}], universe=range(4), check=False
        )
        network = cycle_network(4).with_capacities(2.0)
        dense = solve_partial_deployment(square, network)
        large = solve_partial_deployment(square, network, scale="large")
        assert large.average_delay == pytest.approx(dense.average_delay)


class TestMaybeRetrying:
    def test_without_certificate_returns_fn_unchanged(self, monkeypatch):
        monkeypatch.delenv("REPRO_ERROR_CONTRACT", raising=False)

        def probe():
            return 41

        assert maybe_retrying(probe) is probe

    def test_with_certificate_wraps_in_retrying(self):
        contract = build_error_contract_for_paths([SRC])

        def probe():
            return 41

        probe.__module__ = "repro.core.qpp"
        probe.__qualname__ = "solve_qpp"
        wrapped = maybe_retrying(probe, certificate=contract)
        assert wrapped is not probe
        assert wrapped() == 41


class TestWarmCandidates:
    def test_ranks_previous_winner_first(self, grid_instance):
        system, strategy, network = grid_instance
        result = solve_qpp(system, strategy, network=network)
        ranked = warm_candidates(result, limit=3)
        assert ranked[0] == result.source
        assert len(ranked) == 3
        assert len(set(ranked)) == 3
        assert ranked == warm_candidates(result, limit=3)

    def test_limit_validated(self, grid_instance):
        system, strategy, network = grid_instance
        result = solve_qpp(system, strategy, network=network)
        with pytest.raises(ValidationError):
            warm_candidates(result, limit=0)


class TestPlacementServiceEngine:
    def test_initial_publish_is_version_one(self, grid_instance):
        service = _service(grid_instance)
        assert service.version == 1
        assert service.resolves == 0
        assert default_registry().gauge("serve.snapshot.version").value == 1.0

    def test_query_is_exact_until_an_update_arrives(self, grid_instance):
        service = _service(grid_instance, drift_threshold=float("inf"))
        client = grid_instance[2].nodes[0]
        service.submit(serve_request("query", id=1, client=client))
        (response,) = service.tick()
        assert response["stale"] is False
        service.submit(serve_request("update", id=2, client=client, rate=5.0))
        service.submit(serve_request("query", id=3, client=client))
        responses = service.tick()
        assert responses[1]["op"] == "query"
        assert responses[1]["stale"] is True
        registry = default_registry()
        assert registry.counter("serve.exact.reads").value == 1.0
        assert registry.counter("serve.stale.reads").value == 1.0
        assert registry.counter("serve.request.count").value == 3.0

    def test_string_client_labels_resolve_on_tuple_nodes(self, grid_instance):
        service = _service(grid_instance)
        service.submit(serve_request("query", id=1, client="(0, 0)"))
        (response,) = service.tick()
        assert response["ok"] is True
        assert response["delay"] >= 0.0

    def test_unknown_client_becomes_error_response(self, grid_instance):
        service = _service(grid_instance)
        service.submit(serve_request("query", id=1, client="nowhere"))
        (response,) = service.tick()
        assert response["ok"] is False
        assert "unknown client" in response["error"]
        validate_serve_response(response)

    def test_queue_limit_rejects_overflow(self, grid_instance):
        service = _service(grid_instance, queue_limit=2)
        service.submit(serve_request("stats", id=1))
        service.submit(serve_request("stats", id=2))
        with pytest.raises(ValidationError, match="queue is full"):
            service.submit(serve_request("stats", id=3))

    def test_drift_at_threshold_does_not_resolve(self, grid_instance):
        """The re-solve trigger is strictly ``drift > threshold``."""
        probe = _service(grid_instance, drift_threshold=float("inf"))
        client = grid_instance[2].nodes[0]
        probe.submit(serve_request("update", id=1, client=client, rate=9.0))
        probe.tick()
        drift = probe.drift()
        assert drift > 0.0

        at_threshold = _service(grid_instance, drift_threshold=drift)
        at_threshold.submit(serve_request("update", id=1, client=client, rate=9.0))
        at_threshold.tick()
        assert at_threshold.resolves == 0
        assert at_threshold.version == 1

        below_threshold = _service(
            grid_instance, drift_threshold=drift * (1.0 - 1e-9)
        )
        below_threshold.submit(
            serve_request("update", id=1, client=client, rate=9.0)
        )
        below_threshold.tick()
        assert below_threshold.resolves == 1
        assert below_threshold.version == 2

    def test_forced_resolve_is_visible_within_the_batch(self, grid_instance):
        service = _service(grid_instance, drift_threshold=float("inf"))
        client = grid_instance[2].nodes[0]
        service.submit(serve_request("query", id=1, client=client))
        service.submit(serve_request("resolve", id=2))
        service.submit(serve_request("query", id=3, client=client))
        before, resolved, after = service.tick()
        assert before["version"] == 1
        assert resolved["version"] == 2
        assert after["version"] == 2

    def test_drift_resolve_happens_after_the_batch(self, grid_instance):
        """Queries in the triggering tick still see the old version —
        they are the epsilon-stale reads the cache trades for latency."""
        service = _service(grid_instance, drift_threshold=1e-6)
        client = grid_instance[2].nodes[0]
        service.submit(serve_request("update", id=1, client=client, rate=9.0))
        service.submit(serve_request("query", id=2, client=client))
        responses = service.tick()
        assert service.version == 2
        assert service.resolves == 1
        assert responses[1]["version"] == 1
        assert responses[1]["stale"] is True
        service.submit(serve_request("query", id=3, client=client))
        (fresh,) = service.tick()
        assert fresh["version"] == 2
        assert fresh["stale"] is False

    def test_versions_are_monotonic_across_resolves(self, grid_instance):
        service = _service(grid_instance, drift_threshold=float("inf"))
        versions = [service.version]
        for index in range(3):
            service.submit(serve_request("resolve", id=index))
            service.tick()
            versions.append(service.version)
        assert versions == [1, 2, 3, 4]
        assert default_registry().counter("serve.resolve.count").value == 3.0

    def test_stats_reports_counters_and_drift(self, grid_instance):
        service = _service(grid_instance, drift_threshold=float("inf"))
        client = grid_instance[2].nodes[0]
        service.submit(serve_request("query", id=1, client=client))
        service.submit(serve_request("update", id=2, client=client, rate=3.0))
        service.submit(serve_request("stats", id=3))
        responses = service.tick()
        stats = responses[-1]
        assert stats["queries"] == 1
        assert stats["exact_reads"] == 1
        assert stats["stale_reads"] == 0
        assert stats["resolves"] == 0
        assert stats["drift"] > 0.0
