"""Tests for post-placement strategy optimization."""

import numpy as np
import pytest

from repro.core import (
    Placement,
    alternating_optimization,
    average_max_delay,
    delay_optimal_strategy,
    expected_max_delay,
    random_placement,
    strategy_delay_frontier,
)
from repro.exceptions import InfeasibleError, ValidationError
from repro.network import path_network, random_geometric_network, uniform_capacities
from repro.quorums import AccessStrategy, majority, system_load


@pytest.fixture
def placed(rng):
    system = majority(5)
    strategy = AccessStrategy.uniform(system)
    network = uniform_capacities(random_geometric_network(8, 0.55, rng=rng), 1.0)
    placement = random_placement(system, strategy, network, rng=rng)
    return system, strategy, network, placement


class TestDelayOptimalStrategy:
    def test_budget_one_collapses_to_closest_quorum(self, placed):
        """With no load constraint the LP puts all mass on the single
        cheapest quorum — the degenerate solution the paper warns about."""
        system, _, network, placement = placed
        source = network.nodes[0]
        result = delay_optimal_strategy(placement, load_budget=1.0, source=source)
        cheapest = min(
            expected_max_delay(placement, AccessStrategy.point_mass(system, q), source)
            for q in range(len(system))
        )
        assert result.delay == pytest.approx(cheapest)

    def test_respects_load_budget(self, placed):
        system, _, network, placement = placed
        budget = 0.7
        result = delay_optimal_strategy(
            placement, load_budget=budget, source=network.nodes[0]
        )
        assert result.max_load <= budget + 1e-6

    def test_infeasible_below_system_load(self, placed):
        system, _, network, placement = placed
        floor = system_load(system)  # 3/5 for majority(5)
        with pytest.raises(InfeasibleError):
            delay_optimal_strategy(
                placement, load_budget=floor - 0.05, source=network.nodes[0]
            )

    def test_never_worse_than_uniform(self, placed):
        system, uniform, network, placement = placed
        source = network.nodes[0]
        result = delay_optimal_strategy(placement, load_budget=1.0, source=source)
        assert result.delay <= expected_max_delay(placement, uniform, source) + 1e-9

    def test_all_clients_objective(self, placed):
        system, uniform, network, placement = placed
        result = delay_optimal_strategy(placement, load_budget=1.0, source=None)
        assert result.delay <= average_max_delay(placement, uniform) + 1e-9
        # The reported delay matches the evaluator.
        assert result.delay == pytest.approx(
            average_max_delay(placement, result.strategy), abs=1e-6
        )

    def test_budget_validation(self, placed):
        _, _, network, placement = placed
        with pytest.raises(ValidationError):
            delay_optimal_strategy(placement, load_budget=1.5)
        with pytest.raises(ValidationError):
            delay_optimal_strategy(placement, load_budget=0.0)


class TestFrontier:
    def test_frontier_is_monotone(self, placed):
        """Looser budget => weakly smaller delay; tighter => larger."""
        system, _, network, placement = placed
        source = network.nodes[0]
        floor = system_load(system)
        budgets = [floor, (floor + 1) / 2, 1.0]
        frontier = strategy_delay_frontier(placement, budgets, source=source)
        assert len(frontier) == 3
        delays = [point.delay for point in frontier]
        assert delays[0] >= delays[1] >= delays[2]

    def test_infeasible_budgets_skipped(self, placed):
        _, _, network, placement = placed
        frontier = strategy_delay_frontier(
            placement, [0.01, 1.0], source=network.nodes[0]
        )
        assert len(frontier) == 1


class TestAlternating:
    def test_alternation_never_worsens(self, placed):
        system, uniform, network, placement = placed
        source = network.nodes[0]
        initial = expected_max_delay(placement, uniform, source)
        _, _, final = alternating_optimization(
            placement, uniform, source, load_budget=1.0, rounds=3
        )
        assert final <= initial + 1e-9

    def test_final_delay_matches_returned_pair(self, placed):
        system, uniform, network, placement = placed
        source = network.nodes[0]
        best_placement, best_strategy, final = alternating_optimization(
            placement, uniform, source, load_budget=1.0, rounds=2
        )
        assert expected_max_delay(best_placement, best_strategy, source) == pytest.approx(
            final, abs=1e-9
        )
