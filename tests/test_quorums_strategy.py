"""Unit tests for AccessStrategy (distributions, loads, mixtures)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.quorums import AccessStrategy, QuorumSystem, grid, majority


@pytest.fixture
def pair_system():
    return QuorumSystem([{1, 2}, {2, 3}], name="pair")


class TestConstruction:
    def test_uniform(self, pair_system):
        p = AccessStrategy.uniform(pair_system)
        assert p.probability(0) == pytest.approx(0.5)
        assert p.probability(1) == pytest.approx(0.5)

    def test_explicit_probabilities_validated(self, pair_system):
        with pytest.raises(ValidationError, match="sum to 1"):
            AccessStrategy(pair_system, [0.5, 0.4])
        with pytest.raises(ValidationError, match="non-negative"):
            AccessStrategy(pair_system, [1.5, -0.5])
        with pytest.raises(ValidationError, match="probabilities"):
            AccessStrategy(pair_system, [1.0])

    def test_from_weights_dense(self, pair_system):
        p = AccessStrategy.from_weights(pair_system, [1, 3])
        assert p.probability(1) == pytest.approx(0.75)

    def test_from_weights_sparse_mapping(self, pair_system):
        p = AccessStrategy.from_weights(pair_system, {1: 2.0})
        assert p.probability(0) == 0.0
        assert p.probability(1) == pytest.approx(1.0)

    def test_from_weights_rejects_all_zero(self, pair_system):
        with pytest.raises(ValidationError, match="positive"):
            AccessStrategy.from_weights(pair_system, [0, 0])

    def test_from_weights_rejects_bad_index(self, pair_system):
        with pytest.raises(ValidationError, match="out of range"):
            AccessStrategy.from_weights(pair_system, {7: 1.0})

    def test_point_mass(self, pair_system):
        p = AccessStrategy.point_mass(pair_system, 0)
        assert p.support() == (0,)
        with pytest.raises(ValidationError):
            AccessStrategy.point_mass(pair_system, 5)


class TestLoads:
    def test_loads_match_definition(self, pair_system):
        p = AccessStrategy.uniform(pair_system)
        assert p.load(1) == pytest.approx(0.5)
        assert p.load(2) == pytest.approx(1.0)  # element in both quorums
        assert p.load(3) == pytest.approx(0.5)

    def test_max_and_total_load(self, pair_system):
        p = AccessStrategy.uniform(pair_system)
        assert p.max_load() == pytest.approx(1.0)
        assert p.total_load() == pytest.approx(2.0)

    def test_total_load_equals_expected_quorum_size(self):
        system = grid(3)
        p = AccessStrategy.uniform(system)
        assert p.total_load() == pytest.approx(p.expected_quorum_size())
        # Grid quorums all have 2k - 1 = 5 elements.
        assert p.expected_quorum_size() == pytest.approx(5.0)

    def test_grid_uniform_load_closed_form(self):
        k = 4
        p = AccessStrategy.uniform(grid(k))
        expected = (2 * k - 1) / k**2
        for element in p.system.universe:
            assert p.load(element) == pytest.approx(expected)

    def test_majority_uniform_load_closed_form(self):
        n = 7
        p = AccessStrategy.uniform(majority(n))
        t = n // 2 + 1
        for element in p.system.universe:
            assert p.load(element) == pytest.approx(t / n)

    def test_loads_dict_aligned_with_universe(self, pair_system):
        p = AccessStrategy.uniform(pair_system)
        loads = p.loads()
        assert set(loads) == set(pair_system.universe)
        array = p.load_array()
        for i, u in enumerate(pair_system.universe):
            assert loads[u] == pytest.approx(array[i])

    def test_unknown_element_load_raises(self, pair_system):
        p = AccessStrategy.uniform(pair_system)
        with pytest.raises(ValidationError):
            p.load(99)


class TestMixture:
    def test_mixture_averages_probabilities(self, pair_system):
        a = AccessStrategy.point_mass(pair_system, 0)
        b = AccessStrategy.point_mass(pair_system, 1)
        mixed = AccessStrategy.mixture([a, b], [1.0, 3.0])
        assert mixed.probability(0) == pytest.approx(0.25)
        assert mixed.probability(1) == pytest.approx(0.75)

    def test_mixture_requires_same_system(self, pair_system):
        other = QuorumSystem([{1, 2}], name="other")
        a = AccessStrategy.uniform(pair_system)
        b = AccessStrategy.uniform(other)
        with pytest.raises(ValidationError, match="share one system"):
            AccessStrategy.mixture([a, b], [1, 1])

    def test_mixture_weight_validation(self, pair_system):
        a = AccessStrategy.uniform(pair_system)
        with pytest.raises(ValidationError):
            AccessStrategy.mixture([a], [0.0])
        with pytest.raises(ValidationError):
            AccessStrategy.mixture([a, a], [1.0])
        with pytest.raises(ValidationError):
            AccessStrategy.mixture([], [])


class TestSampling:
    def test_sampling_matches_distribution(self, pair_system):
        p = AccessStrategy.from_weights(pair_system, [1, 4])
        rng = np.random.default_rng(0)
        samples = p.sample(rng, size=20_000)
        frequency = np.mean(samples == 1)
        assert frequency == pytest.approx(0.8, abs=0.02)

    def test_single_sample_is_int(self, pair_system):
        p = AccessStrategy.uniform(pair_system)
        value = p.sample(np.random.default_rng(1))
        assert isinstance(value, int)
        assert value in (0, 1)


class TestComparison:
    def test_allclose(self, pair_system):
        a = AccessStrategy.uniform(pair_system)
        b = AccessStrategy.from_weights(pair_system, [1.0, 1.0])
        assert a.allclose(b)
        c = AccessStrategy.from_weights(pair_system, [1.0, 2.0])
        assert not a.allclose(c)

    def test_probabilities_read_only(self, pair_system):
        p = AccessStrategy.uniform(pair_system)
        with pytest.raises(ValueError):
            p.probabilities[0] = 0.9
