"""Tests for the second wave of CLI features (--dual, compare)."""

import pytest

from repro.cli import main


class TestDualFlag:
    def test_dual_reports_transversals(self, capsys):
        assert main(["system", "majority:3", "--dual"]) == 0
        out = capsys.readouterr().out
        assert "minimal transversals" in out
        assert "non-dominated" in out

    def test_dual_detects_self_duality(self, capsys):
        assert main(["system", "majority:5", "--dual"]) == 0
        out = capsys.readouterr().out
        # majority(5) is self-dual: the check column shows yes.
        lines = [l for l in out.splitlines() if "non-dominated" in l]
        assert lines and "yes" in lines[0]

    def test_dual_detects_domination(self, capsys):
        # 3-of-4 threshold (= grid(2) family) is dominated.
        assert main(["system", "threshold:4:3", "--dual"]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if "non-dominated" in l]
        assert lines and "NO" in lines[0]

    def test_dual_skipped_for_large_universe(self, capsys):
        assert main(["system", "grid:4", "--dual"]) == 0
        out = capsys.readouterr().out
        assert "minimal transversals" not in out  # 16 elements > guard


class TestCompareCommand:
    def test_compare_runs_all_algorithms(self, capsys):
        assert main(["compare", "majority:3", "path:4"]) == 0
        out = capsys.readouterr().out
        for name in ("qpp", "total_delay", "greedy", "random"):
            assert name in out
        assert "exact optimal" in out

    def test_compare_with_explicit_capacity(self, capsys):
        assert main(["compare", "majority:3", "path:4", "--capacity", "1.0"]) == 0
        assert "qpp" in capsys.readouterr().out

    def test_compare_seeded_network(self, capsys):
        assert main(["compare", "majority:3", "geometric:6:0.6", "--seed", "3"]) == 0
        assert "algorithm comparison" in capsys.readouterr().out

    def test_compare_infeasible_capacity_errors(self, capsys):
        code = main(["compare", "majority:3", "path:4", "--capacity", "0.1"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestQPPFormulationPassThrough:
    def test_solve_qpp_accepts_cumulative(self, rng):
        from repro.core import solve_qpp
        from repro.network import random_geometric_network, uniform_capacities
        from repro.quorums import AccessStrategy, majority

        network = uniform_capacities(
            random_geometric_network(6, 0.6, rng=rng), 1.0
        )
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        prefix = solve_qpp(system, strategy, network, formulation="prefix")
        cumulative = solve_qpp(system, strategy, network, formulation="cumulative")
        assert cumulative.optimum_lower_bound == pytest.approx(
            prefix.optimum_lower_bound, abs=1e-7
        )
