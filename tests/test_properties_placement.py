"""Property-based tests for metrics, placements and the paper's
structural inequalities (notably Lemma 3.1 on arbitrary instances)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Placement,
    average_max_delay,
    average_total_delay,
    expected_max_delay,
    expected_total_delay,
    node_loads,
    relay_analysis,
)
from repro.network import Network
from repro.quorums import AccessStrategy, QuorumSystem

# -- generators -----------------------------------------------------------------------


@st.composite
def networks(draw):
    """Connected random networks: a random tree plus extra random edges."""
    n = draw(st.integers(min_value=2, max_value=8))
    edges = []
    for node in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        length = draw(st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
        edges.append((parent, node, length))
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            length = draw(st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
            edges.append((u, v, length))
    return Network(range(n), edges)


@st.composite
def placement_instances(draw):
    network = draw(networks())
    n_elements = draw(st.integers(min_value=2, max_value=5))
    anchor = 0
    quorums = []
    seen = set()
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        extra = draw(
            st.sets(
                st.integers(min_value=1, max_value=n_elements - 1),
                max_size=n_elements - 1,
            )
        )
        quorum = frozenset({anchor} | extra)
        if quorum not in seen:
            seen.add(quorum)
            quorums.append(quorum)
    system = QuorumSystem(quorums, universe=range(n_elements), check=False)
    strategy = AccessStrategy.uniform(system)
    mapping = {
        u: draw(st.integers(min_value=0, max_value=network.size - 1))
        for u in system.universe
    }
    placement = Placement(system, network, mapping)
    return system, strategy, network, placement


# -- metric properties ------------------------------------------------------------------


@given(networks())
@settings(max_examples=50, deadline=None)
def test_shortest_path_metric_is_a_metric(network):
    metric = network.metric()
    metric.verify_triangle_inequality()
    matrix = metric.matrix
    assert np.allclose(matrix, matrix.T)
    assert np.allclose(np.diag(matrix), 0.0)


@given(networks())
@settings(max_examples=30, deadline=None)
def test_distances_bounded_by_edge_sum(network):
    total = sum(length for _, _, length in network.edges())
    assert network.metric().diameter() <= total + 1e-9


# -- placement properties -----------------------------------------------------------------


@given(placement_instances())
@settings(max_examples=50, deadline=None)
def test_max_delay_at_most_total_delay(instance):
    """delta <= gamma pointwise, hence Delta <= Gamma."""
    system, strategy, network, placement = instance
    for client in network.nodes:
        assert (
            expected_max_delay(placement, strategy, client)
            <= expected_total_delay(placement, strategy, client) + 1e-9
        )


@given(placement_instances())
@settings(max_examples=50, deadline=None)
def test_average_delays_are_averages(instance):
    system, strategy, network, placement = instance
    per_client = [
        expected_max_delay(placement, strategy, v) for v in network.nodes
    ]
    assert average_max_delay(placement, strategy) == pytest.approx(
        float(np.mean(per_client))
    )
    per_client_total = [
        expected_total_delay(placement, strategy, v) for v in network.nodes
    ]
    assert average_total_delay(placement, strategy) == pytest.approx(
        float(np.mean(per_client_total))
    )


@given(placement_instances())
@settings(max_examples=50, deadline=None)
def test_node_loads_conserve_total_load(instance):
    system, strategy, network, placement = instance
    loads = node_loads(placement, strategy)
    assert sum(loads.values()) == pytest.approx(strategy.total_load())


@given(placement_instances())
@settings(max_examples=50, deadline=None)
def test_lemma_3_1_holds_on_arbitrary_instances(instance):
    """The relay factor never exceeds 5, for ANY placement, system,
    strategy and network — the strongest form of the lemma."""
    system, strategy, network, placement = instance
    analysis = relay_analysis(placement, strategy)
    assert analysis.factor <= 5.0 + 1e-9


@given(placement_instances())
@settings(max_examples=30, deadline=None)
def test_intersecting_quorums_bound_pairwise_distance(instance):
    """The key inequality in Lemma 3.1's proof:
    d(v, v') <= Delta_f(v) + Delta_f(v')."""
    system, strategy, network, placement = instance
    metric = network.metric()
    deltas = {
        v: expected_max_delay(placement, strategy, v) for v in network.nodes
    }
    for v in network.nodes:
        for w in network.nodes:
            assert metric.distance(v, w) <= deltas[v] + deltas[w] + 1e-9
