"""Tests for quorum-system analysis: resilience, availability, degrees."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.quorums import (
    AccessStrategy,
    QuorumSystem,
    availability_exact,
    availability_monte_carlo,
    degree_statistics,
    grid,
    is_dominated_by,
    majority,
    resilience,
    singleton,
    star,
    strategy_summary,
    wheel,
)


class TestResilience:
    def test_singleton_has_zero_resilience(self):
        assert resilience(singleton()) == 0

    def test_majority_resilience(self):
        # Majority(5): quorums of size 3; killing any 2 elements leaves a
        # quorum among the surviving 3; killing 3 can destroy all.
        assert resilience(majority(5)) == 2

    def test_grid_resilience(self):
        # Grid(2): the 2x2 grid quorums each have 3 of 4 elements; any
        # single failure leaves a full quorum... actually any single
        # element is missed by exactly one quorum; two failures can hit
        # all quorums.
        assert resilience(grid(2)) == 1

    def test_star_resilience_zero(self):
        # The hub is in every quorum.
        assert resilience(star(5)) == 0

    def test_large_universe_guarded(self):
        with pytest.raises(ValidationError, match="at most"):
            resilience(majority(21))


class TestAvailability:
    def test_availability_exact_extremes(self, majority5):
        system, _ = majority5
        assert availability_exact(system, 0.0) == pytest.approx(1.0)
        assert availability_exact(system, 1.0) == pytest.approx(0.0)

    def test_majority_availability_closed_form(self):
        """For Majority(3) (quorums = pairs and ... all 2-subsets of 3),
        availability = P(at least 2 of 3 alive)."""
        system = majority(3)
        p_fail = 0.3
        alive = 1 - p_fail
        expected = alive**3 + 3 * alive**2 * p_fail
        assert availability_exact(system, p_fail) == pytest.approx(expected)

    def test_monte_carlo_matches_exact(self):
        system = majority(5)
        p_fail = 0.25
        exact = availability_exact(system, p_fail)
        estimate = availability_monte_carlo(
            system, p_fail, samples=20_000, rng=np.random.default_rng(0)
        )
        assert estimate == pytest.approx(exact, abs=0.02)

    def test_monte_carlo_deterministic_given_rng(self):
        system = grid(2)
        a = availability_monte_carlo(system, 0.2, samples=500, rng=np.random.default_rng(7))
        b = availability_monte_carlo(system, 0.2, samples=500, rng=np.random.default_rng(7))
        assert a == b


class TestDegreesAndDomination:
    def test_degree_statistics_grid(self):
        stats = degree_statistics(grid(3))
        assert stats.min_degree == stats.max_degree == 5
        assert stats.mean_quorum_size == pytest.approx(5.0)

    def test_is_dominated_by_reflexive(self):
        system = majority(5)
        assert is_dominated_by(system, system)

    def test_dominated_system(self):
        big = QuorumSystem([{1, 2, 3}])
        small = QuorumSystem([{1, 2}])
        assert is_dominated_by(big, small)
        assert not is_dominated_by(small, big)

    def test_strategy_summary_keys(self, majority5):
        system, strategy = majority5
        summary = strategy_summary(strategy)
        assert summary["max_load"] == pytest.approx(3 / 5)
        assert summary["support_size"] == len(system)


@pytest.fixture
def majority5():
    system = majority(5)
    return system, AccessStrategy.uniform(system)
