"""Unit tests for the invariant linter (``repro.lint``).

Every rule R001–R007 and R301 is demonstrated by at least one fixture
snippet that makes it fire and one that stays clean, plus
suppression-comment, JSON-golden and CLI exit-code coverage.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.cli import main as repro_main
from repro.exceptions import LintError
from repro.lint import (
    LintConfig,
    config_from_table,
    lint_paths,
    lint_source,
    registered_rules,
    render_json,
)

CORE_MODULE = "repro.core.fake"


def findings_for(
    source: str, *, module: str = "fake_module", path: str = "fake_module.py"
) -> list[str]:
    """Rule ids firing on *source*, deduplicated in order."""
    results = lint_source(textwrap.dedent(source), module=module, path=path)
    return [f.rule_id for f in results]


# -- rule registry -------------------------------------------------------------------


def test_all_rules_registered():
    assert set(registered_rules()) == {
        "R001",
        "R002",
        "R003",
        "R004",
        "R005",
        "R006",
        "R007",
        "R100",
        "R101",
        "R102",
        "R103",
        "R104",
        "R200",
        "R201",
        "R202",
        "R203",
        "R204",
        "R301",
        "R400",
        "R401",
        "R402",
        "R403",
        "R404",
        "R500",
        "R501",
        "R502",
        "R503",
        "R504",
        "R600",
        "R601",
        "R602",
        "R603",
        "R604",
    }


# -- R001: validated entry points ----------------------------------------------------


class TestR001:
    def test_fires_on_unvalidated_public_function(self):
        snippet = """
        __all__ = ["solve"]

        def solve(x):
            return x + 1
        """
        assert "R001" in findings_for(snippet, module=CORE_MODULE)

    def test_clean_with_direct_checker_call(self):
        snippet = """
        from repro._validation import check_positive

        __all__ = ["solve"]

        def solve(x):
            check_positive(x, "x")
            return x + 1
        """
        assert "R001" not in findings_for(snippet, module=CORE_MODULE)

    def test_clean_when_delegating_to_validating_helper(self):
        snippet = """
        __all__ = ["solve"]

        def _check_inputs(x):
            if x < 0:
                raise SomeError("bad")

        def solve(x):
            _check_inputs(x)
            return x + 1
        """
        assert "R001" not in findings_for(snippet, module=CORE_MODULE)

    def test_clean_when_raising_directly(self):
        snippet = """
        from repro.exceptions import ValidationError

        __all__ = ["solve"]

        def solve(x):
            if x < 0:
                raise ValidationError("x must be >= 0")
            return x
        """
        assert "R001" not in findings_for(snippet, module=CORE_MODULE)

    def test_skips_modules_outside_validated_packages(self):
        snippet = """
        __all__ = ["helper"]

        def helper(x):
            return x
        """
        assert "R001" not in findings_for(snippet, module="repro.analysis.fake")

    def test_config_exemption(self):
        snippet = """
        __all__ = ["solve"]

        def solve(x):
            return x
        """
        config = LintConfig(exempt=frozenset({f"R001:{CORE_MODULE}.solve"}))
        results = lint_source(
            textwrap.dedent(snippet), module=CORE_MODULE, config=config
        )
        assert [f.rule_id for f in results] == []

    def test_private_functions_not_required_to_validate(self):
        snippet = """
        __all__ = []

        def _internal(x):
            return x
        """
        assert "R001" not in findings_for(snippet, module=CORE_MODULE)


# -- R002: ReproError-only raises ----------------------------------------------------


class TestR002:
    def test_fires_on_builtin_valueerror(self):
        snippet = """
        def f(x):
            if x < 0:
                raise ValueError("negative")
        """
        assert "R002" in findings_for(snippet)

    def test_fires_on_runtimeerror_without_call(self):
        snippet = """
        def f():
            raise RuntimeError
        """
        assert "R002" in findings_for(snippet)

    def test_clean_on_reproerror_subclass(self):
        snippet = """
        from repro.exceptions import ValidationError

        def f(x):
            if x < 0:
                raise ValidationError("negative")
        """
        assert "R002" not in findings_for(snippet)

    def test_clean_on_typeerror_and_bare_reraise(self):
        snippet = """
        def f(x):
            try:
                return x.thing
            except AttributeError:
                raise
            if not isinstance(x, int):
                raise TypeError("x must be int")
        """
        assert "R002" not in findings_for(snippet)


# -- R003: mutable defaults ----------------------------------------------------------


class TestR003:
    def test_fires_on_list_default(self):
        assert "R003" in findings_for("def f(items=[]):\n    return items\n")

    def test_fires_on_dict_call_and_kwonly_default(self):
        snippet = """
        def f(*, table=dict()):
            return table
        """
        assert "R003" in findings_for(snippet)

    def test_clean_on_none_and_tuple_defaults(self):
        snippet = """
        def f(items=None, pair=(1, 2), name="x"):
            return items, pair, name
        """
        assert "R003" not in findings_for(snippet)


# -- R004: seeded randomness ---------------------------------------------------------


class TestR004:
    def test_fires_on_global_np_random(self):
        snippet = """
        import numpy as np

        def f():
            np.random.seed(0)
            return np.random.rand(3)
        """
        assert findings_for(snippet).count("R004") == 2

    def test_fires_on_seedless_default_rng(self):
        snippet = """
        from numpy.random import default_rng

        def f():
            return default_rng().normal()
        """
        assert "R004" in findings_for(snippet)

    def test_clean_on_seeded_generator(self):
        snippet = """
        import numpy as np
        from numpy.random import default_rng

        def f(rng: np.random.Generator):
            other = np.random.default_rng(7)
            third = default_rng(123)
            return rng.normal() + other.normal() + third.normal()
        """
        assert "R004" not in findings_for(snippet)


# -- R005: float equality ------------------------------------------------------------


class TestR005:
    def test_fires_on_float_literal_equality(self):
        assert "R005" in findings_for("def f(x):\n    return x == 1.0\n")

    def test_fires_on_negative_float_inequality(self):
        assert "R005" in findings_for("def f(x):\n    return x != -0.5\n")

    def test_clean_on_int_comparison_and_isclose(self):
        snippet = """
        import math

        def f(x):
            return x == 1 or math.isclose(x, 1.0)
        """
        assert "R005" not in findings_for(snippet)


# -- R006: no print in library code --------------------------------------------------


class TestR006:
    def test_fires_in_library_module(self):
        snippet = """
        def f():
            print("debug")
        """
        assert "R006" in findings_for(snippet, module="repro.core.fake")

    def test_clean_in_allowed_file(self):
        snippet = """
        def f():
            print("table output")
        """
        assert "R006" not in findings_for(
            snippet, module="repro.cli", path="src/repro/cli.py"
        )

    def test_clean_outside_library_packages(self):
        snippet = """
        def f():
            print("script output")
        """
        assert "R006" not in findings_for(snippet, module="quickstart")


# -- R007: export integrity ----------------------------------------------------------


class TestR007:
    def test_fires_on_missing_all(self):
        snippet = """
        def api():
            return 1
        """
        assert "R007" in findings_for(snippet, module="repro.widgets")

    def test_fires_on_ghost_export(self):
        snippet = """
        __all__ = ["api", "ghost"]

        def api():
            return 1
        """
        results = lint_source(textwrap.dedent(snippet), module="repro.widgets")
        assert ["R007"] == [f.rule_id for f in results]
        assert "ghost" in results[0].message

    def test_clean_on_truthful_all(self):
        snippet = """
        from collections import OrderedDict

        __all__ = ["api", "OrderedDict", "CONSTANT"]

        CONSTANT = 7

        def api():
            return CONSTANT
        """
        assert "R007" not in findings_for(snippet, module="repro.widgets")

    def test_private_modules_and_outside_packages_skipped(self):
        snippet = "def api():\n    return 1\n"
        assert "R007" not in findings_for(snippet, module="repro._internal")
        assert "R007" not in findings_for(snippet, module="scripts.tool")

    def test_conditional_bindings_count(self):
        snippet = """
        __all__ = ["fast"]

        try:
            from fastlib import fast
        except ImportError:
            def fast():
                return None
        """
        assert "R007" not in findings_for(snippet, module="repro.widgets")


class TestR301:
    def test_fires_on_tuple_returning_solver(self):
        snippet = """
        __all__ = ["solve_widget"]
        from repro._validation import require

        def solve_widget(a):
            require(a > 0, "a")
            return (a, a + 1)
        """
        assert "R301" in findings_for(snippet, module=CORE_MODULE)

    def test_fires_on_tuple_return_annotation(self):
        snippet = """
        __all__ = ["optimal_widget_placement"]
        from repro._validation import require

        def optimal_widget_placement(a) -> tuple[int, int]:
            require(a > 0, "a")
            return helper(a)
        """
        results = lint_source(textwrap.dedent(snippet), module=CORE_MODULE)
        assert "R301" in [f.rule_id for f in results]

    def test_clean_on_result_object_and_nested_tuples(self):
        snippet = """
        __all__ = ["solve_widget", "optimal_widget_placement"]
        from repro._validation import require

        def solve_widget(a):
            require(a > 0, "a")
            def key(item):
                return (item, a)  # nested helper tuples are fine
            return WidgetResult(placement=a, objective=1.0)

        def optimal_widget_placement(a):
            require(a > 0, "a")
            pairs = [(i, i) for i in range(a)]
            return WidgetResult(placement=pairs, objective=0.0)
        """
        assert "R301" not in findings_for(snippet, module=CORE_MODULE)

    def test_only_solver_entry_points_in_validated_packages(self):
        snippet = """
        __all__ = ["solve_widget", "build_pair"]
        from repro._validation import require

        def build_pair(a):
            require(a > 0, "a")
            return (a, a)  # not a solve_*/optimal_* entry point

        def solve_widget(a):
            require(a > 0, "a")
            return (a, a)
        """
        # Outside the validated packages the rule never fires at all.
        assert "R301" not in findings_for(snippet, module="repro.experiments.fake")
        results = lint_source(textwrap.dedent(snippet), module=CORE_MODULE)
        r301 = [f for f in results if f.rule_id == "R301"]
        assert len(r301) == 1
        assert "solve_widget" in r301[0].message

    def test_exemption_is_honoured(self):
        snippet = """
        __all__ = ["solve_widget"]
        from repro._validation import require

        def solve_widget(a):
            require(a > 0, "a")
            return (a, a)
        """
        config = config_from_table({"exempt": [f"R301:{CORE_MODULE}.solve_widget"]})
        results = lint_source(
            textwrap.dedent(snippet), module=CORE_MODULE, config=config
        )
        assert "R301" not in [f.rule_id for f in results]


# -- suppression comments ------------------------------------------------------------


class TestSuppressions:
    def test_inline_disable_silences_named_rule(self):
        snippet = """
        def f(x):
            raise ValueError("bad")  # repro-lint: disable=R002
        """
        assert "R002" not in findings_for(snippet)

    def test_inline_disable_is_line_scoped(self):
        snippet = """
        def f(x):
            raise ValueError("bad")  # repro-lint: disable=R002

        def g(x):
            raise ValueError("also bad")
        """
        assert findings_for(snippet).count("R002") == 1

    def test_inline_disable_only_silences_named_rules(self):
        snippet = """
        def f(x=[]):  # repro-lint: disable=R002
            return x
        """
        assert "R003" in findings_for(snippet)

    def test_file_wide_disable(self):
        snippet = """
        # repro-lint: disable-file=R005

        def f(x):
            return x == 1.0 or x == 2.0
        """
        assert findings_for(snippet) == []

    def test_bare_disable_silences_everything_on_line(self):
        snippet = """
        def f(x=[], y=1.0):  # repro-lint: disable
            return x
        """
        assert "R003" not in findings_for(snippet)


# -- parse errors --------------------------------------------------------------------


def test_syntax_error_becomes_e001_finding():
    results = lint_source("def broken(:\n")
    assert [f.rule_id for f in results] == ["E001"]


# -- JSON output golden --------------------------------------------------------------


def test_json_output_golden():
    source = 'def f(x):\n    raise ValueError("bad")\n'
    findings = lint_source(source, path="snippet.py")
    payload = render_json(findings)
    expected = {
        "version": 1,
        "count": 1,
        "findings": [
            {
                "path": "snippet.py",
                "line": 2,
                "column": 5,
                "rule_id": "R002",
                "message": (
                    "raise of builtin 'ValueError'; raise a repro.exceptions."
                    "ReproError subclass instead (ValidationError also "
                    "inherits ValueError for compatibility)"
                ),
            }
        ],
    }
    assert json.loads(payload) == expected
    # stable key order and deterministic text for golden comparisons
    assert payload == json.dumps(expected, indent=2, sort_keys=True)


# -- configuration -------------------------------------------------------------------


class TestConfig:
    def test_select_restricts_rules(self):
        source = 'def f(x=[]):\n    raise ValueError("bad")\n'
        config = LintConfig(select=frozenset({"R003"}))
        results = lint_source(source, config=config)
        assert [f.rule_id for f in results] == ["R003"]

    def test_ignore_drops_rules(self):
        source = 'def f(x=[]):\n    raise ValueError("bad")\n'
        config = LintConfig(ignore=frozenset({"R002"}))
        results = lint_source(source, config=config)
        assert [f.rule_id for f in results] == ["R003"]

    def test_table_round_trip(self):
        config = config_from_table(
            {
                "select": ["R001", "R002"],
                "banned-exceptions": ["ValueError"],
                "exempt": ["R001:repro.core.fake.solve"],
            }
        )
        assert config.select == frozenset({"R001", "R002"})
        assert config.banned_exceptions == frozenset({"ValueError"})
        assert config.is_exempt("R001", "repro.core.fake.solve")

    def test_unknown_option_rejected(self):
        with pytest.raises(LintError):
            config_from_table({"nonsense": ["x"]})

    def test_bad_value_type_rejected(self):
        with pytest.raises(LintError):
            config_from_table({"select": "R001"})


# -- CLI exit codes ------------------------------------------------------------------


class TestCli:
    def test_exit_zero_on_clean_file(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f(x):\n    return x + 1\n")
        assert repro_main(["lint", str(clean)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text('def f():\n    raise ValueError("bad")\n')
        assert repro_main(["lint", str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "R002" in out and "dirty.py" in out

    def test_exit_two_on_missing_path(self, tmp_path):
        missing = tmp_path / "does_not_exist.py"
        assert repro_main(["lint", str(missing)]) == 2

    def test_json_format_from_cli(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def f(x=[]):\n    return x\n")
        assert repro_main(["lint", str(dirty), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["findings"][0]["rule_id"] == "R003"

    def test_select_option(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text('def f(x=[]):\n    raise ValueError("bad")\n')
        assert repro_main(["lint", str(dirty), "--select", "R003"]) == 1
        out = capsys.readouterr().out
        assert "R003" in out and "R002" not in out

    def test_list_rules(self, capsys):
        assert repro_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R007"):
            assert rule_id in out

    def test_directory_linting_via_api(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "a.py").write_text('raise ValueError("x")\n')
        (package / "b.py").write_text("value = 1\n")
        findings = lint_paths([package])
        assert [f.rule_id for f in findings] == ["R002"]
