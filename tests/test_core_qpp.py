"""Tests for the full Quorum Placement Problem solver (Theorem 1.2)."""

import numpy as np
import pytest

from repro.core import (
    average_max_delay,
    average_strategy,
    solve_qpp,
    solve_qpp_exact,
)
from repro.exceptions import ValidationError
from repro.experiments import small_suite
from repro.network import path_network, random_geometric_network, uniform_capacities
from repro.quorums import AccessStrategy, majority


# paper: Thm 1.2, Thm 3.3
class TestTheorem12:
    def test_bounds_against_exact_optimum(self):
        """On exhaustively solvable instances: the algorithm's delay is
        within 5 alpha/(alpha-1) of OPT and the certified lower bound is
        valid."""
        for instance in small_suite(11)[:5]:
            result = solve_qpp(
                instance.system, instance.strategy, instance.network, alpha=2.0
            )
            exact = solve_qpp_exact(
                instance.system, instance.strategy, instance.network
            )
            assert result.average_delay <= (
                result.approximation_factor * exact.objective + 1e-6
            )
            assert result.optimum_lower_bound <= exact.objective + 1e-6

    def test_load_bound_holds(self, rng):
        from repro.core import capacity_violation_factor

        network = uniform_capacities(random_geometric_network(8, 0.55, rng=rng), 0.8)
        system = majority(5)
        strategy = AccessStrategy.uniform(system)
        result = solve_qpp(system, strategy, network, alpha=2.0)
        violation = capacity_violation_factor(result.placement, strategy)
        assert violation <= result.load_factor_bound + 1e-6

    def test_reported_delay_matches_placement(self, rng):
        network = uniform_capacities(random_geometric_network(7, 0.6, rng=rng), 1.0)
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        result = solve_qpp(system, strategy, network)
        recomputed = average_max_delay(result.placement, strategy)
        assert result.average_delay == pytest.approx(recomputed)

    def test_per_source_results_cover_candidates(self, rng):
        network = uniform_capacities(random_geometric_network(6, 0.6, rng=rng), 1.0)
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        result = solve_qpp(system, strategy, network)
        assert set(result.per_source) == set(network.nodes)
        assert result.source in result.per_source

    def test_candidate_restriction(self, rng):
        network = uniform_capacities(random_geometric_network(6, 0.6, rng=rng), 1.0)
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        result = solve_qpp(
            system, strategy, network, candidate_sources=[network.nodes[0]]
        )
        assert set(result.per_source) == {network.nodes[0]}

    def test_empty_candidates_rejected(self, rng):
        network = uniform_capacities(random_geometric_network(5, 0.6, rng=rng), 1.0)
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        with pytest.raises(ValidationError):
            solve_qpp(system, strategy, network, candidate_sources=[])

    def test_certified_ratio_consistency(self, rng):
        network = uniform_capacities(random_geometric_network(6, 0.6, rng=rng), 1.0)
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        result = solve_qpp(system, strategy, network)
        if result.optimum_lower_bound > 0:
            assert result.certified_ratio == pytest.approx(
                result.average_delay / result.optimum_lower_bound
            )


class TestRates:
    def test_rate_weighted_objective_selected(self, rng):
        """With all the rate on one client, the solver should find a
        placement at least as good for that client as the uniform-rate
        solution."""
        network = uniform_capacities(random_geometric_network(7, 0.55, rng=rng), 1.0)
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        hot_client = network.nodes[3]
        rates = {hot_client: 100.0, **{v: 0.01 for v in network.nodes if v != hot_client}}
        weighted = solve_qpp(system, strategy, network, rates=rates)
        uniform = solve_qpp(system, strategy, network)
        weighted_objective = average_max_delay(weighted.placement, strategy, rates=rates)
        uniform_objective = average_max_delay(uniform.placement, strategy, rates=rates)
        assert weighted_objective <= uniform_objective + 1e-6


class TestAverageStrategy:
    def test_average_strategy_uniform_rates(self):
        system = majority(3)
        network = path_network(3)
        a = AccessStrategy.point_mass(system, 0)
        b = AccessStrategy.point_mass(system, 1)
        c = AccessStrategy.point_mass(system, 2)
        averaged = average_strategy({0: a, 1: b, 2: c}, network)
        assert averaged.probabilities == pytest.approx(np.full(3, 1 / 3))

    def test_average_strategy_rate_weighted(self):
        system = majority(3)
        network = path_network(2)
        a = AccessStrategy.point_mass(system, 0)
        b = AccessStrategy.point_mass(system, 1)
        averaged = average_strategy({0: a, 1: b}, network, rates={0: 3.0, 1: 1.0})
        assert averaged.probability(0) == pytest.approx(0.75)

    def test_missing_client_rejected(self):
        system = majority(3)
        network = path_network(3)
        with pytest.raises(ValidationError, match="missing"):
            average_strategy({0: AccessStrategy.uniform(system)}, network)


class TestCandidateDedupe:
    """Duplicate candidate sources must be solved once and reported once."""

    def test_duplicates_are_deduped(self, rng):
        network = uniform_capacities(random_geometric_network(6, 0.6, rng=rng), 1.0)
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        nodes = list(network.nodes)
        duplicated = [nodes[0], nodes[1], nodes[0], nodes[2], nodes[1], nodes[0]]
        result = solve_qpp(
            system, strategy, network, candidate_sources=duplicated
        )
        assert set(result.per_source) == {nodes[0], nodes[1], nodes[2]}
        assert len(result.per_source) == 3

    def test_duplicates_match_unique_sweep(self, rng):
        network = uniform_capacities(random_geometric_network(6, 0.6, rng=rng), 1.0)
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        nodes = list(network.nodes)
        unique = solve_qpp(
            system, strategy, network, candidate_sources=nodes[:3]
        )
        duplicated = solve_qpp(
            system, strategy, network, candidate_sources=nodes[:3] * 2
        )
        assert duplicated.average_delay == pytest.approx(unique.average_delay)
        assert duplicated.optimum_lower_bound == pytest.approx(
            unique.optimum_lower_bound
        )
        assert duplicated.source == unique.source

    def test_per_source_keys_equal_candidate_set(self, rng):
        """Diagnostics must cover exactly the (deduped) candidate set."""
        network = uniform_capacities(random_geometric_network(7, 0.6, rng=rng), 1.0)
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        full = solve_qpp(system, strategy, network)
        assert set(full.per_source) == set(network.nodes)
        restricted = solve_qpp(
            system,
            strategy,
            network,
            candidate_sources=list(network.nodes)[:4],
        )
        assert set(restricted.per_source) == set(list(network.nodes)[:4])
