"""Coverage for paths the main test files leave untouched."""

import numpy as np
import pytest

from repro.core import QPPResult, solve_qpp
from repro.exceptions import ValidationError
from repro.experiments import feasible_uniform_capacity, small_suite
from repro.gap import GAPInstance, solve_gap
from repro.lp import Model
from repro.network import path_network
from repro.quorums import (
    AccessStrategy,
    QuorumSystem,
    compose,
    majority,
    singleton,
    threshold,
)


class TestComposeHeterogeneous:
    def test_different_inner_systems_per_slot(self):
        """Composition with non-uniform inner systems: one slot expands
        to a majority, another stays a singleton."""
        outer = majority(3)  # slots 0, 1, 2
        inner = {
            0: majority(3),
            1: singleton("only"),
            2: threshold(3, 2),
        }
        composed = compose(outer, inner)
        composed.verify_intersection()
        # Universe: 3 + 1 + 3 namespaced elements.
        assert composed.universe_size == 7
        # Quorums touching slot 1 contain its single namespaced element.
        assert any((1, "only") in q for q in composed.quorums)

    def test_compose_guard(self):
        outer = majority(5)
        inner = {slot: majority(13) for slot in outer.universe}
        with pytest.raises(ValidationError, match="enumerate"):
            compose(outer, inner)


class TestQPPResultAccessors:
    def test_certified_ratio_zero_bound_zero_delay(self, rng):
        """A single-node network: delay 0, bound 0 => ratio reported 0."""
        system = singleton("s")
        strategy = AccessStrategy.uniform(system)
        from repro.network import Network

        network = Network([0], [], capacities=2.0)
        result = solve_qpp(system, strategy, network)
        assert result.average_delay == 0.0
        assert result.certified_ratio == 0.0

    def test_result_is_frozen(self, rng):
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        network = path_network(3).with_capacities(1.0)
        result = solve_qpp(system, strategy, network)
        with pytest.raises(AttributeError):
            result.average_delay = 0.0


class TestWorkloadsSlack:
    def test_larger_slack_gives_larger_capacity(self):
        system = majority(5)
        strategy = AccessStrategy.uniform(system)
        network = path_network(4)
        tight = feasible_uniform_capacity(system, strategy, network, slack=1.0)
        loose = feasible_uniform_capacity(system, strategy, network, slack=3.0)
        assert loose.capacity(0) >= tight.capacity(0)

    def test_suite_slack_parameter_threads_through(self):
        tight = small_suite(0, slack=1.1)
        loose = small_suite(0, slack=3.0)
        assert (
            loose[0].network.capacity(loose[0].network.nodes[0])
            >= tight[0].network.capacity(tight[0].network.nodes[0])
        )


class TestGAPSolutionAccessors:
    def test_load_violation_factors_zero_capacity_machine(self, rng):
        instance = GAPInstance(
            jobs=(0,),
            machines=("big", "zero"),
            costs=np.array([[1.0], [2.0]]),
            loads=np.array([[0.5], [0.5]]),
            capacities=np.array([1.0, 0.0]),
        )
        solution = solve_gap(instance)
        factors = solution.load_violation_factors(instance)
        assert factors["zero"] == 0.0  # empty zero-cap machine
        assert factors["big"] == pytest.approx(0.5)

    def test_fractional_attached(self, rng):
        instance = GAPInstance(
            jobs=(0, 1),
            machines=("a", "b"),
            costs=np.array([[1.0, 2.0], [2.0, 1.0]]),
            loads=np.array([[0.5, 0.5], [0.5, 0.5]]),
            capacities=np.array([1.0, 1.0]),
        )
        solution = solve_gap(instance)
        assert solution.fractional.instance is instance
        assert solution.fractional.cost <= solution.cost + 1e-9


class TestModelIntrospection:
    def test_constraint_name_assignment(self):
        m = Model()
        x = m.variable("x")
        constraint = m.add_constraint(x <= 1, name="cap")
        assert constraint.name == "cap"

    def test_variables_kwargs_forwarded(self):
        m = Model()
        xs = m.variables(3, prefix="p", lb=0.5, ub=2.0)
        assert m.bounds() == [(0.5, 2.0)] * 3

    def test_solve_proxy_matches_solve_model(self):
        from repro.lp import solve_model

        m = Model()
        x = m.variable("x", ub=4)
        m.maximize(x + 0)
        assert m.solve().objective == solve_model(m).objective == 4.0


class TestReportingPrecision:
    def test_custom_precision(self):
        from repro.analysis import ResultTable

        table = ResultTable("t", ["v"], precision=2)
        table.add_row(v=3.14159)
        assert "3.1" in table.render()
        assert "3.142" not in table.render()


class TestUniverseOrderStability:
    def test_quorum_system_universe_sorted_deterministically(self):
        a = QuorumSystem([{3, 1}, {1, 2}], universe=[3, 2, 1])
        b = QuorumSystem([{1, 2}, {3, 1}], universe=[1, 2, 3])
        assert a.universe == b.universe == (1, 2, 3)

    def test_strategy_load_array_follows_universe_order(self):
        system = QuorumSystem([{2, 5}, {5, 9}], universe=[9, 5, 2])
        strategy = AccessStrategy.uniform(system)
        array = strategy.load_array()
        for i, u in enumerate(system.universe):
            assert array[i] == pytest.approx(strategy.load(u))
