"""The effects tier: globals census, purity inference, rules R400-R404,
and the parallel-safety certificate.

Each rule is exercised positively (it fires on a synthetic violating
package) and negatively (the corrected twin stays silent), plus unit
coverage for the ``@effects`` declaration parser, the interprocedural
fixpoint (including call cycles and ``functools.partial`` edges), the
inventory's classification/attribution, and the certificate's schema,
renderer and CLI emission path.
"""

from __future__ import annotations

import json
import textwrap
from dataclasses import replace
from pathlib import Path

import pytest

from repro._validation import EFFECT_KINDS, effects
from repro.exceptions import ValidationError
from repro.lint import (
    Finding,
    LintConfig,
    ParseCache,
    analyze_effects,
    build_certificate,
    build_certificate_for_paths,
    build_effect_context,
    build_globals_inventory,
    lint_paths,
    render_certificate,
    validate_certificate,
)
from repro.lint.cli import main as lint_main
from repro.lint.effect_rules import (
    EffectDeclarationRule,
    EntryPointAmbientRngRule,
    PicklablePoolArgumentRule,
    PureFunctionWriteRule,
    TelemetryScopeRule,
)
from repro.lint.effects import (
    CERTIFICATE_KIND,
    CERTIFICATE_VERSION,
    PARALLEL_SAFE_EFFECTS,
    EffectWitness,
)
from repro.lint.engine import iter_python_files
from repro.lint.globals_inventory import GlobalAccess, GlobalVariable
from repro.lint.interproc import build_program_context

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def write_package(root: Path, name: str, modules: dict[str, str]) -> Path:
    """Materialize a synthetic package under *root*."""
    package = root / name
    package.mkdir(parents=True, exist_ok=True)
    if "__init__" not in modules:
        (package / "__init__.py").write_text("", encoding="utf-8")
    for module, source in modules.items():
        (package / f"{module}.py").write_text(
            textwrap.dedent(source), encoding="utf-8"
        )
    return package


def build_context(package: Path, **overrides: object):
    """Program context over one synthetic package."""
    config = replace(LintConfig(), validated_packages=(), **overrides)
    cache = ParseCache()
    parsed = [cache.parsed(p) for p in iter_python_files([package], config)]
    return build_program_context(parsed, config, cache=cache)


def run_effect_rules(
    package: Path, rule_id: str, **overrides: object
) -> list[Finding]:
    overrides.setdefault("validated_packages", ())
    config = replace(LintConfig(), select=frozenset({rule_id}), **overrides)
    return lint_paths([package], config, effects=True)


# -- the @effects decorator (runtime side) -------------------------------------------


def test_effects_decorator_attaches_frozen_effect_set():
    @effects("reads-global", "writes-metrics")
    def fn():
        return 1

    assert fn() == 1  # no wrapper: the function object is returned as-is
    assert fn.__effects__ == frozenset({"reads-global", "writes-metrics"})


def test_effects_decorator_pure_means_empty_set():
    @effects("pure")
    def fn():
        return 2

    assert fn.__effects__ == frozenset()


def test_effects_decorator_rejects_unknown_and_mixed_pure():
    with pytest.raises(ValidationError):
        effects("reads-disk")
    with pytest.raises(ValidationError):
        effects()
    with pytest.raises(ValidationError):
        effects("pure", "io")
    assert "ambient-rng" in EFFECT_KINDS


# -- globals inventory ---------------------------------------------------------------


def test_inventory_classifies_and_attributes(tmp_path):
    package = write_package(
        tmp_path,
        "inv",
        {
            "state": """
            from collections import deque

            __all__ = []

            _CACHE = {}
            _QUEUE = deque()
            _LIMIT = 10          # immutable: not inventoried
            _NAMES = frozenset({"a"})  # immutable factory: not inventoried
            _ACTIVE = None

            def remember(key, value):
                _CACHE[key] = value
                _QUEUE.append(key)

            def lookup(key):
                return _CACHE.get(key)

            def install(collector):
                global _ACTIVE
                _ACTIVE = collector
            """,
        },
    )
    inventory = build_globals_inventory(build_context(package))

    cache = inventory.variable("inv.state._CACHE")
    assert isinstance(cache, GlobalVariable) and cache.kind == "container"
    assert inventory.variable("inv.state._LIMIT") is None
    assert inventory.variable("inv.state._NAMES") is None
    active = inventory.variable("inv.state._ACTIVE")
    assert active is not None and active.kind == "rebound"

    writers = inventory.writers_of("inv.state._CACHE")
    assert [a.function for a in writers] == ["inv.state.remember"]
    assert all(isinstance(a, GlobalAccess) and a.write for a in writers)
    readers = inventory.readers_of("inv.state._CACHE")
    assert "inv.state.lookup" in {a.function for a in readers}
    assert inventory.writers_of("inv.state._ACTIVE")[0].function == (
        "inv.state.install"
    )

    document = inventory.as_dict()
    names = {entry["name"] for entry in document["variables"]}
    assert {"_CACHE", "_QUEUE", "_ACTIVE"} <= names


def test_inventory_metric_kind_maps_to_writes_metrics(tmp_path):
    package = write_package(
        tmp_path,
        "met",
        {
            "probe": """
            from repro.obs.metrics import counter

            __all__ = []

            _SOLVES = counter("probe.count")

            def tick():
                _SOLVES.inc()
            """,
        },
    )
    program = build_context(package)
    inventory = build_globals_inventory(program)
    assert inventory.variable("met.probe._SOLVES").kind == "metric"
    fx = analyze_effects(program, inventory)["met.probe.tick"]
    assert set(fx.effects) == {"writes-metrics", "reads-global"}
    assert fx.parallel_safe


# -- effect inference ----------------------------------------------------------------


def test_effects_propagate_through_calls_and_cycles(tmp_path):
    package = write_package(
        tmp_path,
        "prop",
        {
            "chain": """
            import random

            __all__ = []

            _LOG = []

            def leaf():
                _LOG.append(random.random())

            def middle(n):
                if n:
                    return outer(n - 1)
                return leaf()

            def outer(n):
                return middle(n)

            def untouched():
                return 0
            """,
        },
    )
    fx = analyze_effects(build_context(package))
    leaf_effects = {"ambient-rng", "reads-global", "writes-global"}
    assert set(fx["prop.chain.leaf"].effects) == leaf_effects
    # The middle/outer cycle converges and inherits the leaf's effects.
    for name in ("prop.chain.middle", "prop.chain.outer"):
        assert set(fx[name].effects) == leaf_effects
        witness = fx[name].effects["writes-global"]
        assert isinstance(witness, EffectWitness)
        assert witness.origin == "prop.chain.leaf"
    assert fx["prop.chain.untouched"].pure
    assert fx["prop.chain.outer"].global_writes == frozenset(
        {("prop.chain._LOG", "prop.chain.leaf")}
    )


def test_effects_see_through_functools_partial(tmp_path):
    package = write_package(
        tmp_path,
        "part",
        {
            "deferred": """
            from functools import partial

            __all__ = []

            _SINK = []

            def worker(item, scale):
                _SINK.append(item * scale)

            def driver(items):
                fn = partial(worker, scale=2)
                return [fn(i) for i in items]
            """,
        },
    )
    fx = analyze_effects(build_context(package))
    assert "writes-global" in fx["part.deferred.driver"].effects


def test_io_and_spawn_detection(tmp_path):
    package = write_package(
        tmp_path,
        "eff",
        {
            "mixed": """
            import subprocess
            from concurrent.futures import ProcessPoolExecutor
            from pathlib import Path

            __all__ = []

            def dumps(path):
                Path(path).write_text("x")

            def launches(items):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(str, items))

            def shells():
                return subprocess.run(["true"])
            """,
        },
    )
    fx = analyze_effects(build_context(package))
    assert "io" in fx["eff.mixed.dumps"].effects
    assert "spawns" in fx["eff.mixed.launches"].effects
    assert "spawns" in fx["eff.mixed.shells"].effects


# -- R400: declaration mismatch ------------------------------------------------------


_R400_VIOLATION = {
    "mod": """
    from repro._validation import effects

    __all__ = ["solve_narrow"]

    _CACHE = {}

    @effects("reads-global")
    def solve_narrow(x):
        _CACHE[x] = x
        return x
    """,
}

_R400_CLEAN = {
    "mod": """
    from repro._validation import effects

    __all__ = ["solve_wide"]

    _CACHE = {}

    @effects("reads-global", "writes-global")
    def solve_wide(x):
        _CACHE[x] = x
        return x
    """,
}


def test_r400_fires_on_narrow_declaration(tmp_path):
    package = write_package(tmp_path, "pkg", _R400_VIOLATION)
    findings = run_effect_rules(package, EffectDeclarationRule.id)
    assert any("writes-global" in f.message for f in findings)


def test_r400_silent_when_declaration_covers(tmp_path):
    package = write_package(tmp_path, "pkg", _R400_CLEAN)
    assert run_effect_rules(package, EffectDeclarationRule.id) == []


def test_r400_overdeclaration_is_legal(tmp_path):
    package = write_package(
        tmp_path,
        "pkg",
        {
            "mod": """
            from repro._validation import effects

            __all__ = ["quiet"]

            @effects("writes-metrics", "reads-global")
            def quiet(x):
                return x + 1
            """,
        },
    )
    assert run_effect_rules(package, EffectDeclarationRule.id) == []


def test_r400_reports_malformed_declarations(tmp_path):
    package = write_package(
        tmp_path,
        "pkg",
        {
            "mod": """
            from repro._validation import effects

            __all__ = ["odd"]

            KIND = "io"

            @effects(KIND, "reads-disk")
            def odd(x):
                return x
            """,
        },
    )
    findings = run_effect_rules(package, EffectDeclarationRule.id)
    messages = " ".join(f.message for f in findings)
    assert "string literals" in messages
    assert "unknown effect kind" in messages


# -- R401: pure-declared global writes -----------------------------------------------


def test_r401_fires_with_callee_attribution(tmp_path):
    package = write_package(
        tmp_path,
        "pkg",
        {
            "mod": """
            from repro._validation import effects

            __all__ = ["outer_api"]

            _STATE = {}

            def _helper(x):
                _STATE[x] = x

            @effects("pure")
            def outer_api(x):
                _helper(x)
                return x
            """,
        },
    )
    findings = run_effect_rules(package, PureFunctionWriteRule.id)
    assert len(findings) == 1
    assert "callee" in findings[0].message
    assert "_STATE" in findings[0].message


def test_r401_silent_for_truly_pure(tmp_path):
    package = write_package(
        tmp_path,
        "pkg",
        {
            "mod": """
            from repro._validation import effects

            __all__ = ["identity"]

            @effects("pure")
            def identity(x):
                return x
            """,
        },
    )
    assert run_effect_rules(package, PureFunctionWriteRule.id) == []


# -- R402: ambient RNG on entry points -----------------------------------------------


def test_r402_fires_on_transitive_ambient_rng(tmp_path):
    package = write_package(
        tmp_path,
        "pkg",
        {
            "mod": """
            import random

            __all__ = ["solve_noisy"]

            def _jitter():
                return random.random()

            def solve_noisy(x):
                return x + _jitter()
            """,
        },
    )
    findings = run_effect_rules(
        package, EntryPointAmbientRngRule.id, library_packages=("pkg",)
    )
    assert len(findings) == 1
    assert "ambient RNG" in findings[0].message


def test_r402_silent_for_seeded_generator(tmp_path):
    package = write_package(
        tmp_path,
        "pkg",
        {
            "mod": """
            import numpy as np

            __all__ = ["solve_seeded"]

            def solve_seeded(x, seed):
                rng = np.random.default_rng(seed)
                return x + rng.standard_normal()
            """,
        },
    )
    assert (
        run_effect_rules(
            package, EntryPointAmbientRngRule.id, library_packages=("pkg",)
        )
        == []
    )


def test_r402_respects_exemptions(tmp_path):
    package = write_package(
        tmp_path,
        "pkg",
        {
            "mod": """
            import random

            __all__ = ["solve_legacy"]

            def solve_legacy(x):
                return x + random.random()
            """,
        },
    )
    findings = run_effect_rules(
        package,
        EntryPointAmbientRngRule.id,
        library_packages=("pkg",),
        exempt=frozenset({"R402:pkg.mod.solve_legacy"}),
    )
    assert findings == []


# -- R403: unpicklable pool arguments ------------------------------------------------


def test_r403_fires_on_lambda_and_local_function(tmp_path):
    package = write_package(
        tmp_path,
        "pkg",
        {
            "mod": """
            from repro.parallel import parallel_map

            __all__ = ["fan_out"]

            def fan_out(items, pool):
                first = parallel_map(lambda x: x + 1, items)

                def local(x):
                    return x - 1

                second = pool.map(local, items)
                return first, second
            """,
        },
    )
    findings = run_effect_rules(package, PicklablePoolArgumentRule.id)
    messages = [f.message for f in findings]
    assert len(findings) == 2
    assert any("lambda" in m for m in messages)
    assert any("local" in m for m in messages)


def test_r403_silent_for_module_level_callables(tmp_path):
    package = write_package(
        tmp_path,
        "pkg",
        {
            "mod": """
            from functools import partial

            from repro.parallel import parallel_map

            __all__ = ["fan_out", "worker"]

            def worker(x, scale=1):
                return x * scale

            def fan_out(items, executor):
                executor.map(worker, items)
                return parallel_map(partial(worker, scale=2), items)
            """,
        },
    )
    assert run_effect_rules(package, PicklablePoolArgumentRule.id) == []


def test_r403_ignores_plain_map(tmp_path):
    package = write_package(
        tmp_path,
        "pkg",
        {
            "mod": """
            __all__ = ["transform"]

            def transform(items):
                return list(map(lambda x: x + 1, items))
            """,
        },
    )
    assert run_effect_rules(package, PicklablePoolArgumentRule.id) == []


# -- R404: telemetry scoping ---------------------------------------------------------


_R404_MODULES = {
    "mod": """
    from repro.obs.metrics import counter, telemetry_scope

    __all__ = ["solve_counted", "solve_scoped"]

    _SOLVES = counter("pkg.solves")

    def solve_counted(x):
        _SOLVES.inc()
        return x

    def solve_scoped(x):
        with telemetry_scope() as tel:
            _SOLVES.inc()
        return x, tel.snapshot
    """,
}


def test_r404_fires_without_scope_and_stays_silent_with(tmp_path):
    package = write_package(tmp_path, "pkg", _R404_MODULES)
    findings = run_effect_rules(
        package,
        TelemetryScopeRule.id,
        library_packages=("pkg",),
        validated_packages=("pkg",),
    )
    assert [f.message for f in findings] != []
    assert all("solve_counted" in f.message for f in findings)
    assert len(findings) == 1


def test_r404_only_checks_validated_packages(tmp_path):
    package = write_package(tmp_path, "pkg", _R404_MODULES)
    findings = run_effect_rules(
        package,
        TelemetryScopeRule.id,
        library_packages=("pkg",),
        validated_packages=("other",),
    )
    assert findings == []


# -- certificate ---------------------------------------------------------------------


def test_certificate_covers_entry_points_and_declared(tmp_path):
    package = write_package(
        tmp_path,
        "pkg",
        {
            "mod": """
            from repro._validation import effects

            __all__ = ["solve_thing", "worker"]

            _CACHE = {}

            @effects("reads-global", "writes-global")
            def worker(x):
                _CACHE[x] = x
                return x

            def solve_thing(x):
                return worker(x)

            def _private_helper(x):
                return x
            """,
        },
    )
    program = build_context(package, library_packages=("pkg",))
    inventory = build_globals_inventory(program)
    effects_map = analyze_effects(program, inventory)
    document = build_certificate(program, effects_map, inventory)

    assert document["kind"] == CERTIFICATE_KIND
    assert document["version"] == CERTIFICATE_VERSION
    assert document["policy"]["parallel_safe_effects"] == sorted(
        PARALLEL_SAFE_EFFECTS
    )
    functions = document["functions"]
    assert set(functions) == {"pkg.mod.solve_thing", "pkg.mod.worker"}
    worker = functions["pkg.mod.worker"]
    assert worker["declared"] == ["reads-global", "writes-global"]
    assert worker["parallel_safe"] is False
    entry = functions["pkg.mod.solve_thing"]
    assert entry["entry_point"] is True
    assert entry["parallel_safe"] is False  # inherits the worker's write

    assert validate_certificate(document) == ()
    rendered = render_certificate(document)
    assert json.loads(rendered) == document
    assert rendered.endswith("\n")


def test_validate_certificate_rejects_malformed():
    assert validate_certificate([]) != ()
    assert validate_certificate({"kind": "nope"}) != ()
    broken = {
        "kind": CERTIFICATE_KIND,
        "version": CERTIFICATE_VERSION,
        "policy": {"parallel_safe_effects": []},
        "functions": {"f": {"effects": ["bogus-kind"], "parallel_safe": "yes"}},
    }
    problems = validate_certificate(broken)
    assert any("known kinds" in p for p in problems)
    assert any("parallel_safe" in p for p in problems)


def test_certificate_cli_emission(tmp_path):
    package = write_package(
        tmp_path,
        "pkg",
        {
            "mod": """
            __all__ = ["solve_simple"]

            def solve_simple(x):
                return x
            """,
        },
    )
    out = tmp_path / "certificate.json"
    code = lint_main(
        [str(package), "--certificate", str(out), "--config",
         str(REPO_ROOT / "pyproject.toml")]
    )
    assert code == 0
    document = json.loads(out.read_text(encoding="utf-8"))
    assert validate_certificate(document) == ()


@pytest.mark.skipif(not SRC.is_dir(), reason="source tree not present")
def test_src_certificate_covers_every_solver_entry_point():
    """Acceptance: the real certificate covers all solve_*/optimal_*."""
    document = build_certificate_for_paths([SRC])
    assert validate_certificate(document) == ()
    functions = document["functions"]
    # Every solver entry point in the library must appear.
    from repro.lint.effects import entry_point_names
    from repro.lint import load_config

    config = load_config(REPO_ROOT / "pyproject.toml")
    cache = ParseCache()
    parsed = [cache.parsed(p) for p in iter_python_files([SRC], config)]
    context = build_program_context(parsed, config, cache=cache)
    for qualified in entry_point_names(context):
        assert qualified in functions, f"{qualified} missing from certificate"
    # The qpp pool worker is certified parallel-safe.
    worker = functions["repro.core.qpp._qpp_candidate_worker"]
    assert worker["parallel_safe"] is True


def test_effect_context_builds_over_src_package(tmp_path):
    package = write_package(
        tmp_path,
        "pkg",
        {
            "mod": """
            __all__ = ["solve_direct"]

            def solve_direct(x):
                return x
            """,
        },
    )
    context = build_effect_context(build_context(package, library_packages=("pkg",)))
    assert context.entry_points == ("pkg.mod.solve_direct",)
    assert context.effects["pkg.mod.solve_direct"].pure
