"""Solver backend behavior: statuses, methods, degenerate models."""

import numpy as np
import pytest

from repro.exceptions import InfeasibleError, SolverError, UnboundedError
from repro.lp import Model, solve_model


def test_infeasible_raises_specific_error():
    m = Model(name="impossible")
    x = m.variable("x", lb=0)
    m.add_constraint(x <= -1)
    m.minimize(x + 0)
    with pytest.raises(InfeasibleError, match="impossible"):
        m.solve()


def test_unbounded_raises_specific_error():
    m = Model(name="freefall")
    x = m.variable("x", lb=0)
    m.minimize(-x + 0)
    with pytest.raises(UnboundedError):
        m.solve()


def test_missing_objective_raises():
    m = Model(name="aimless")
    m.variable("x")
    with pytest.raises(SolverError, match="objective"):
        m.solve()


def test_unknown_method_rejected():
    m = Model()
    x = m.variable("x", ub=1)
    m.minimize(x + 0)
    with pytest.raises(SolverError, match="unsupported"):
        solve_model(m, method="simplex-from-1947")


@pytest.mark.parametrize("method", ["highs", "highs-ds", "highs-ipm"])
def test_all_methods_agree_on_optimum(method):
    m = Model()
    x = m.variable("x", lb=0)
    y = m.variable("y", lb=0)
    m.add_constraint(x + y >= 2)
    m.add_constraint(x - y <= 0)
    m.minimize(2 * x + y)
    # x <= y and x + y >= 2 with objective 2x + y: optimum at x=0, y=2.
    assert m.solve(method=method).objective == pytest.approx(2.0)


def test_dual_simplex_returns_vertex_solution():
    """highs-ds should return a basic solution: for this degenerate
    transportation LP an interior point would split the flow."""
    m = Model()
    a = m.variable("a", lb=0)
    b = m.variable("b", lb=0)
    m.add_constraint(a + b == 1)
    m.minimize(a + b)  # every feasible point is optimal
    solution = m.solve(method="highs-ds")
    values = sorted([solution.value(a), solution.value(b)])
    assert values == pytest.approx([0.0, 1.0])


def test_solution_values_vector_matches_accessor():
    m = Model()
    xs = m.variables(3)
    m.add_constraint(xs[0] + xs[1] + xs[2] == 6)
    m.minimize(xs[0] + 2 * xs[1] + 3 * xs[2])
    solution = m.solve()
    assert isinstance(solution.values, np.ndarray)
    for variable in xs:
        assert solution.value(variable) == pytest.approx(solution.values[variable.index])


def test_large_sparse_model_solves():
    """A few thousand variables/constraints compile through the sparse path."""
    m = Model()
    n = 400
    xs = m.variables(n)
    total = xs[0].to_expr()
    for x in xs[1:]:
        total = total + x
    m.add_constraint(total == 1)
    for i in range(n - 1):
        m.add_constraint(xs[i] - xs[i + 1] <= 1.0)
    m.minimize(sum((i + 1) * xs[i] for i in range(n)) + 0)
    solution = m.solve()
    assert solution.objective == pytest.approx(1.0)
    assert solution.value(xs[0]) == pytest.approx(1.0)
