"""Tests for coterie duality and non-domination."""

import pytest

from repro.exceptions import IntersectionError, ValidationError
from repro.quorums import (
    QuorumSystem,
    dual_system,
    grid,
    is_non_dominated,
    is_self_dual,
    majority,
    minimal_transversals,
    projective_plane,
    singleton,
    threshold,
    wheel,
)


class TestMinimalTransversals:
    def test_singleton(self):
        assert minimal_transversals(singleton("x")) == [frozenset({"x"})]

    def test_majority_3(self):
        """Transversals of 2-of-3 are the 2-subsets themselves."""
        transversals = set(minimal_transversals(majority(3)))
        assert transversals == {
            frozenset({0, 1}),
            frozenset({0, 2}),
            frozenset({1, 2}),
        }

    def test_three_of_four_transversals_are_pairs(self):
        """All 3-subsets of 4: any 2-subset hits every quorum."""
        transversals = minimal_transversals(threshold(4, 3))
        assert all(len(t) == 2 for t in transversals)
        assert len(transversals) == 6

    def test_transversals_are_minimal(self):
        for system in (majority(5), grid(2), wheel(4)):
            transversals = minimal_transversals(system)
            for i, a in enumerate(transversals):
                for b in transversals[i + 1 :]:
                    assert not a < b and not b < a

    def test_every_transversal_hits_every_quorum(self):
        system = wheel(5)
        for transversal in minimal_transversals(system):
            assert all(not transversal.isdisjoint(q) for q in system.quorums)

    def test_universe_guard(self):
        with pytest.raises(ValidationError, match="at most"):
            minimal_transversals(majority(17))


class TestDuality:
    def test_odd_majority_is_self_dual(self):
        for n in (3, 5, 7):
            assert is_self_dual(majority(n))

    def test_even_threshold_is_dominated(self):
        assert not is_non_dominated(threshold(4, 3))
        assert not is_non_dominated(grid(2))  # same family

    def test_dominated_dual_raises(self):
        with pytest.raises(IntersectionError):
            dual_system(threshold(4, 3))

    def test_wheel_and_fano_are_non_dominated(self):
        assert is_non_dominated(wheel(4))
        assert is_non_dominated(projective_plane(2))

    def test_double_dual_is_reduction(self):
        """T(T(Q)) equals the reduced antichain of Q — even when T(Q)
        itself is not intersecting (wrap it unchecked to iterate)."""
        padded = QuorumSystem([{1, 2}, {1, 2, 3}, {2, 3}])
        reduced = padded.reduced()
        transversals = minimal_transversals(reduced)
        wrapper = QuorumSystem(
            transversals, universe=reduced.universe, check=False
        )
        double = set(minimal_transversals(wrapper))
        assert double == set(reduced.quorums)

    def test_dual_of_self_dual_is_identity(self):
        system = majority(5)
        assert set(dual_system(system).quorums) == set(system.quorums)

    def test_dual_preserves_universe(self):
        system = wheel(4)
        dual = dual_system(system)
        assert dual.universe == system.universe

    def test_star_dual(self):
        """Every quorum of star(n) contains the hub, so {hub} is the
        unique minimal transversal; the star *reduces* to the singleton
        coterie {{hub}}, which is non-dominated."""
        from repro.quorums import star

        transversals = minimal_transversals(star(5))
        assert transversals == [frozenset({0})]
        assert is_non_dominated(star(5))  # computed on the reduction
        assert set(star(5).reduced().quorums) == {frozenset({0})}
