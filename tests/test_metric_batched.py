"""The batched all-pairs Dijkstra and the Metric dense-matrix cache.

Cross-checks :func:`repro.network.dijkstra_batched` against the scalar
per-source :func:`repro.network.dijkstra` and against networkx, pins the
``inf``-for-unreachable convention of both paths to each other, and
asserts the dense matrix is materialized at most once per network (the
``metric_cache_info`` counters).
"""

import math

import numpy as np
import pytest

from repro.core import average_max_delay, make_placement
from repro.exceptions import ValidationError
from repro.network import (
    Network,
    dijkstra,
    dijkstra_batched,
    metric_cache_clear,
    metric_cache_info,
    random_geometric_network,
    grid_network,
)
from repro.quorums import AccessStrategy, majority


def _adjacency(network: Network) -> dict:
    return {
        u: {v: network.edge_length(u, v) for v in network.neighbors(u)}
        for u in network.nodes
    }


@pytest.fixture
def geometric(rng):
    return random_geometric_network(20, 0.4, rng=rng)


class TestBatchedAgainstScalar:
    def test_all_pairs_match_per_source_dijkstra(self, geometric):
        adjacency = _adjacency(geometric)
        matrix = dijkstra_batched(adjacency)
        nodes = list(geometric.nodes)
        assert matrix.shape == (len(nodes), len(nodes))
        for i, source in enumerate(nodes):
            scalar = dijkstra(adjacency, source)
            for j, target in enumerate(nodes):
                assert matrix[i, j] == pytest.approx(scalar[target], abs=1e-9)

    def test_subset_of_sources(self, geometric):
        adjacency = _adjacency(geometric)
        full = dijkstra_batched(adjacency)
        nodes = list(geometric.nodes)
        sources = [nodes[3], nodes[7]]
        partial = dijkstra_batched(adjacency, sources)
        assert partial.shape == (2, len(nodes))
        assert np.allclose(partial[0], full[3])
        assert np.allclose(partial[1], full[7])

    def test_single_source_stays_2d(self, geometric):
        adjacency = _adjacency(geometric)
        row = dijkstra_batched(adjacency, [geometric.nodes[0]])
        assert row.ndim == 2 and row.shape[0] == 1

    def test_matches_networkx(self, geometric):
        networkx = pytest.importorskip("networkx")
        graph = networkx.Graph()
        for u, v, length in geometric.edges():
            graph.add_edge(u, v, weight=length)
        matrix = dijkstra_batched(_adjacency(geometric))
        nodes = list(geometric.nodes)
        for i, source in enumerate(nodes):
            lengths = networkx.single_source_dijkstra_path_length(
                graph, source, weight="weight"
            )
            for j, target in enumerate(nodes):
                assert matrix[i, j] == pytest.approx(lengths[target], abs=1e-9)


class TestUnreachable:
    """Two components: batched says ``inf`` exactly where the scalar
    path omits the node — the same pairs, consistently."""

    ADJACENCY = {
        0: {1: 1.0},
        1: {0: 1.0},
        2: {3: 2.0},
        3: {2: 2.0},
    }

    def test_inf_matches_scalar_omission(self):
        matrix = dijkstra_batched(self.ADJACENCY)
        nodes = list(self.ADJACENCY)
        for i, source in enumerate(nodes):
            scalar = dijkstra(self.ADJACENCY, source)
            for j, target in enumerate(nodes):
                if target in scalar:
                    assert matrix[i, j] == pytest.approx(scalar[target])
                else:
                    assert math.isinf(matrix[i, j])

    def test_cross_component_pairs_are_inf(self):
        matrix = dijkstra_batched(self.ADJACENCY)
        assert math.isinf(matrix[0, 2]) and math.isinf(matrix[2, 0])
        assert matrix[0, 1] == pytest.approx(1.0)
        assert matrix[2, 3] == pytest.approx(2.0)

    def test_metric_from_network_still_rejects_disconnected(self):
        network = Network([0, 1, 2, 3], [(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(ValidationError, match="disconnected"):
            network.metric()


class TestValidation:
    def test_unknown_source_rejected(self):
        with pytest.raises(ValidationError):
            dijkstra_batched({0: {1: 1.0}, 1: {0: 1.0}}, ["nope"])

    def test_unknown_neighbor_rejected(self):
        with pytest.raises(ValidationError):
            dijkstra_batched({0: {99: 1.0}})


class TestDenseMatrixCache:
    def test_matrix_computed_at_most_once(self):
        network = grid_network(4, 4)
        info = network.metric_cache_info()
        assert info.builds == 0 and info.hits == 0
        first = network.metric()
        assert network.metric_cache_info().builds == 1
        second = network.metric()
        assert second is first
        info = network.metric_cache_info()
        assert info.builds == 1
        assert info.hits >= 1

    def test_evaluators_share_one_build(self, rng):
        network = random_geometric_network(10, 0.6, rng=rng)
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        placement = make_placement(system, network, list(network.nodes)[:3])
        average_max_delay(placement, strategy)
        average_max_delay(placement, strategy)
        info = network.metric_cache_info()
        assert info.builds == 1
        assert info.hits >= 1

    def test_aggregate_counters_start_at_zero_and_track_builds(self):
        # The autouse conftest fixture cleared the process-wide totals.
        info = metric_cache_info()
        assert info.builds == 0 and info.hits == 0
        network = grid_network(3, 3)
        network.metric()
        network.metric()
        info = metric_cache_info()
        assert info.builds == 1
        assert info.hits == 1
        metric_cache_clear()
        cleared = metric_cache_info()
        assert cleared.builds == 0 and cleared.hits == 0
        # Instance counters are independent of the aggregate reset.
        assert network.metric_cache_info().builds == 1

    def test_instance_cache_clear_forces_a_rebuild(self):
        network = grid_network(3, 3)
        first = network.metric()
        network.metric_cache_clear()
        cleared = network.metric_cache_info()
        assert cleared.builds == 0 and cleared.hits == 0
        second = network.metric()
        assert second is not first
        assert network.metric_cache_info().builds == 1
        np.testing.assert_allclose(second.matrix, first.matrix)

    def test_metric_matrix_matches_batched(self, geometric):
        metric = geometric.metric()
        matrix = dijkstra_batched(_adjacency(geometric))
        assert np.allclose(metric.matrix, matrix)
