"""Tests for the GAP substrate: instances, LP, Shmoys-Tardos rounding."""

import math

import numpy as np
import pytest

from repro.exceptions import InfeasibleError, ValidationError
from repro.gap import (
    FractionalAssignment,
    GAPInstance,
    round_fractional_assignment,
    solve_gap,
    solve_gap_exact,
    solve_gap_lp,
)


def make_instance(costs, loads, capacities, jobs=None, machines=None):
    costs = np.asarray(costs, dtype=float)
    loads = np.asarray(loads, dtype=float)
    jobs = tuple(jobs) if jobs else tuple(range(costs.shape[1]))
    machines = tuple(machines) if machines else tuple(
        f"m{i}" for i in range(costs.shape[0])
    )
    return GAPInstance(jobs, machines, costs, loads, np.asarray(capacities, dtype=float))


class TestInstance:
    def test_validation_shapes(self):
        with pytest.raises(ValidationError):
            make_instance([[1.0]], [[1.0, 2.0]], [1.0])

    def test_forbidden_pairs_must_match(self):
        with pytest.raises(ValidationError, match="BOTH"):
            make_instance([[math.inf]], [[1.0]], [1.0])

    def test_negative_entries_rejected(self):
        with pytest.raises(ValidationError):
            make_instance([[-1.0]], [[1.0]], [1.0])

    def test_from_dicts(self):
        inst = GAPInstance.from_dicts(
            jobs=["j1", "j2"],
            machines=["a", "b"],
            cost={("a", "j1"): 1.0, ("b", "j1"): 2.0, ("b", "j2"): 1.0},
            load={("a", "j1"): 0.5, ("b", "j1"): 0.5, ("b", "j2"): 0.5},
            capacity={"a": 1.0, "b": 1.0},
        )
        assert inst.allowed(0, 0)
        assert not inst.allowed(0, 1)  # ("a", "j2") missing => forbidden

    def test_from_dicts_requires_load_for_every_cost(self):
        with pytest.raises(ValidationError, match="no load"):
            GAPInstance.from_dicts(
                jobs=["j"],
                machines=["a"],
                cost={("a", "j"): 1.0},
                load={},
                capacity={"a": 1.0},
            )

    def test_assignment_cost_and_loads(self):
        inst = make_instance([[1.0, 2.0], [3.0, 4.0]], [[1.0, 1.0], [1.0, 1.0]], [2.0, 2.0])
        assignment = {0: "m0", 1: "m1"}
        assert inst.assignment_cost(assignment) == pytest.approx(5.0)
        assert inst.machine_loads(assignment) == {"m0": 1.0, "m1": 1.0}

    def test_assignment_with_forbidden_pair_rejected(self):
        inst = make_instance(
            [[math.inf, 2.0], [3.0, 4.0]],
            [[math.inf, 1.0], [1.0, 1.0]],
            [2.0, 2.0],
        )
        with pytest.raises(ValidationError, match="forbidden"):
            inst.assignment_cost({0: "m0", 1: "m1"})

    def test_max_load_on_machine(self):
        inst = make_instance([[1.0, 2.0]], [[0.3, 0.9]], [1.0])
        assert inst.max_load_on_machine(0) == pytest.approx(0.9)


class TestLP:
    def test_lp_lower_bounds_exact(self, rng):
        for _ in range(10):
            inst = make_instance(
                rng.uniform(1, 5, (3, 4)),
                rng.uniform(0.2, 0.8, (3, 4)),
                rng.uniform(1.2, 2.0, 3),
            )
            try:
                exact = solve_gap_exact(inst)
            except InfeasibleError:
                continue
            fractional = solve_gap_lp(inst)
            assert fractional.cost <= exact.cost + 1e-6

    def test_lp_respects_forbidden_and_oversized_pairs(self):
        # Job 1 only fits (capacity-wise) on machine 1.
        inst = make_instance(
            [[1.0, 1.0], [5.0, 5.0]],
            [[0.5, 2.0], [0.5, 1.0]],
            [1.0, 1.5],
        )
        fractional = solve_gap_lp(inst)
        assert fractional.fractions[0, 1] == pytest.approx(0.0)
        assert fractional.fractions[1, 1] == pytest.approx(1.0)

    def test_lp_infeasible_when_job_fits_nowhere(self):
        inst = make_instance([[1.0]], [[2.0]], [1.0])
        with pytest.raises(InfeasibleError, match="fits on no machine"):
            solve_gap_lp(inst)

    def test_fractional_support_queries(self):
        # Two jobs of load 1, two machines of capacity 1, symmetric costs:
        # the LP must split the load; query helpers read the split back.
        inst = make_instance(
            [[1.0, 1.0], [1.0, 1.0]], [[1.0, 1.0], [1.0, 1.0]], [1.0, 1.0]
        )
        fractional = solve_gap_lp(inst)
        support_union = set(fractional.job_support(0)) | set(fractional.job_support(1))
        assert support_union == {0, 1}
        total = fractional.machine_fractional_load(0) + fractional.machine_fractional_load(1)
        assert total == pytest.approx(2.0)


class TestRounding:
    def test_theorem_3_11_guarantees_random_instances(self, rng):
        """Cost <= fractional cost; machine load <= T_i + p_i^max."""
        checked = 0
        for _ in range(30):
            inst = make_instance(
                rng.uniform(1, 10, (4, 6)),
                rng.uniform(0.1, 1.0, (4, 6)),
                rng.uniform(0.8, 2.0, 4),
            )
            try:
                fractional = solve_gap_lp(inst)
            except InfeasibleError:
                continue
            rounded = round_fractional_assignment(fractional)
            assert rounded.cost <= fractional.cost + 1e-6
            for i, machine in enumerate(inst.machines):
                bound = inst.capacities[i] + inst.max_load_on_machine(i)
                assert rounded.machine_loads[machine] <= bound + 1e-6
            checked += 1
        assert checked >= 15  # most random instances must be feasible

    def test_integral_input_passes_through(self):
        inst = make_instance([[1.0, 9.0], [9.0, 1.0]], [[1.0, 1.0], [1.0, 1.0]], [1.0, 1.0])
        fractions = np.array([[1.0, 0.0], [0.0, 1.0]])
        fractional = FractionalAssignment(instance=inst, fractions=fractions, cost=2.0)
        rounded = round_fractional_assignment(fractional)
        assert rounded.assignment == {0: "m0", 1: "m1"}
        assert rounded.cost == pytest.approx(2.0)

    def test_malformed_fractions_rejected(self):
        inst = make_instance([[1.0]], [[1.0]], [1.0])
        bad = FractionalAssignment(
            instance=inst, fractions=np.array([[0.4]]), cost=0.4
        )
        with pytest.raises(ValidationError, match="fractional total"):
            round_fractional_assignment(bad)

    def test_split_job_lands_on_exactly_one_machine(self):
        inst = make_instance(
            [[2.0], [2.0]],
            [[1.0], [1.0]],
            [0.5, 0.5],
        )
        fractions = np.array([[0.5], [0.5]])
        fractional = FractionalAssignment(instance=inst, fractions=fractions, cost=2.0)
        rounded = round_fractional_assignment(fractional)
        assert rounded.assignment[0] in ("m0", "m1")


class TestSolver:
    def test_solve_gap_end_to_end(self, rng):
        inst = make_instance(
            rng.uniform(1, 5, (3, 5)),
            rng.uniform(0.2, 0.6, (3, 5)),
            np.full(3, 1.5),
        )
        solution = solve_gap(inst)
        assert set(solution.assignment) == set(inst.jobs)
        assert solution.cost <= solution.lp_cost + 1e-6
        factors = solution.load_violation_factors(inst)
        assert all(f <= 2.0 + 1e-6 for f in factors.values())

    def test_exact_matches_enumeration_guarantee(self):
        inst = make_instance(
            [[1.0, 10.0], [10.0, 1.0]],
            [[1.0, 1.0], [1.0, 1.0]],
            [1.0, 1.0],
        )
        exact = solve_gap_exact(inst)
        assert exact.cost == pytest.approx(2.0)
        assert exact.assignment == {0: "m0", 1: "m1"}

    def test_exact_infeasible_raises(self):
        inst = make_instance([[1.0, 1.0]], [[0.8, 0.8]], [1.0])
        with pytest.raises(InfeasibleError):
            solve_gap_exact(inst)

    def test_exact_respects_capacities_strictly(self, rng):
        for _ in range(5):
            inst = make_instance(
                rng.uniform(1, 5, (3, 4)),
                rng.uniform(0.2, 0.7, (3, 4)),
                rng.uniform(1.0, 1.6, 3),
            )
            try:
                exact = solve_gap_exact(inst)
            except InfeasibleError:
                continue
            for i, machine in enumerate(inst.machines):
                assert exact.machine_loads[machine] <= inst.capacities[i] + 1e-9
