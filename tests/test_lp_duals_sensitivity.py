"""Tests for LP dual values and the capacity sensitivity analysis."""

import pytest

from repro.core import capacity_sensitivity, solve_ssqpp
from repro.exceptions import SolverError
from repro.lp import Model
from repro.network import path_network, star_network
from repro.quorums import AccessStrategy, majority


class TestLPDuals:
    def test_ge_constraint_shadow_price(self):
        """min x s.t. x >= 4: raising the rhs by 1 raises the optimum by
        1, so the dual is +1."""
        m = Model()
        x = m.variable("x")
        c = m.add_constraint(x >= 4)
        m.minimize(x + 0)
        solution = m.solve()
        assert solution.dual_of(c) == pytest.approx(1.0)

    def test_le_constraint_shadow_price(self):
        """max 3x s.t. x <= 2 (reported in max sense): +3 per unit rhs."""
        m = Model()
        x = m.variable("x")
        c = m.add_constraint(x <= 2)
        m.maximize(3 * x)
        solution = m.solve()
        assert solution.dual_of(c) == pytest.approx(3.0)

    def test_slack_constraint_has_zero_dual(self):
        m = Model()
        x = m.variable("x", ub=1.0)
        tight = m.add_constraint(x >= 1)
        slack = m.add_constraint(x >= -5)
        m.minimize(x + 0)
        solution = m.solve()
        assert solution.dual_of(slack) == pytest.approx(0.0)
        assert solution.dual_of(tight) == pytest.approx(1.0)

    def test_equality_dual(self):
        """min 2a + b s.t. a + b == 10: marginal unit goes to b (+1)."""
        m = Model()
        a, b = m.variable("a"), m.variable("b")
        c = m.add_constraint(a + b == 10)
        m.minimize(2 * a + b)
        solution = m.solve()
        assert solution.dual_of(c) == pytest.approx(1.0)

    def test_foreign_constraint_rejected(self):
        from repro.lp.model import Constraint, LinExpr

        m = Model()
        x = m.variable("x", ub=1)
        m.minimize(x + 0)
        solution = m.solve()
        orphan = Constraint(LinExpr({0: 1.0}), "<=")
        with pytest.raises(SolverError, match="dual index"):
            solution.dual_of(orphan)


class TestCapacitySensitivity:
    def test_prices_are_non_positive(self):
        """More capacity can only reduce the minimum delay."""
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        network = path_network(4).with_capacities(2 / 3)
        sensitivity = capacity_sensitivity(system, strategy, network, 0)
        assert all(price <= 1e-9 for price in sensitivity.shadow_prices.values())

    def test_lp_value_matches_solver(self):
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        network = path_network(4).with_capacities(2 / 3)
        sensitivity = capacity_sensitivity(system, strategy, network, 0)
        result = solve_ssqpp(system, strategy, network, 0)
        assert sensitivity.lp_value == pytest.approx(result.lp_value, abs=1e-7)

    def test_near_nodes_are_the_bottleneck(self):
        """On a star with the source at the hub and tight capacities, the
        hub's capacity is the binding one."""
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        network = star_network(5).with_capacities(2 / 3)
        sensitivity = capacity_sensitivity(system, strategy, network, 0)
        bottlenecks = sensitivity.bottlenecks(1)
        assert bottlenecks, "some capacity should be binding"
        assert bottlenecks[0][0] == 0  # the hub

    def test_price_predicts_improvement(self):
        """First-order check: increasing the bottleneck capacity by eps
        moves the LP value by roughly price * eps."""
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        base_cap = 2 / 3
        network = star_network(5).with_capacities(base_cap)
        sensitivity = capacity_sensitivity(system, strategy, network, 0)
        (node, price), *_ = sensitivity.bottlenecks(1)
        eps = 1e-3
        capacities = {v: base_cap for v in network.nodes}
        capacities[node] += eps
        bumped = capacity_sensitivity(
            system, strategy, network.with_capacities(capacities), 0
        )
        predicted = sensitivity.lp_value + price * eps
        assert bumped.lp_value == pytest.approx(predicted, abs=1e-5)

    def test_loose_capacities_have_zero_prices(self):
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        network = path_network(4).with_capacities(10.0)
        sensitivity = capacity_sensitivity(system, strategy, network, 0)
        assert all(
            price == pytest.approx(0.0, abs=1e-9)
            for price in sensitivity.shadow_prices.values()
        )


class TestPareto:
    def test_front_filters_dominated(self):
        from repro.analysis import ParetoPoint, pareto_front

        points = [
            ParetoPoint(1.0, 3.0, "a"),
            ParetoPoint(2.0, 2.0, "b"),
            ParetoPoint(3.0, 1.0, "c"),
            ParetoPoint(2.5, 2.5, "dominated"),
            ParetoPoint(1.0, 3.0, "duplicate"),
        ]
        front = pareto_front(points)
        tags = [p.tag for p in front]
        assert tags == ["a", "b", "c"]

    def test_front_is_antichain(self):
        from repro.analysis import ParetoPoint, pareto_front

        import numpy as np

        rng = np.random.default_rng(0)
        points = [
            ParetoPoint(float(d), float(l))
            for d, l in rng.uniform(0, 10, (50, 2))
        ]
        front = pareto_front(points)
        for i, a in enumerate(front):
            for b in front[i + 1 :]:
                assert not a.dominates(b) and not b.dominates(a)
