"""Bench guard: instrumentation is (nearly) free when nobody collects.

The acceptance bar is that the instrumented ``solve_qpp`` path stays
within 1% of un-instrumented runtime while no collector is installed.
The un-instrumented binary no longer exists, so the guard bounds the
overhead from measurements: (number of spans a solve emits) x (cost of
one no-op span) must be under 1% of the solve's wall time.  The no-op
cost is one module-global load plus two method calls (~100ns), and a
small solve emits well under a hundred spans, so the margin is wide —
a regression that adds real work to the no-op path trips this test.
"""

import time

from repro.core import solve_qpp
from repro.network.generators import grid_network
from repro.obs.trace import active_collector, collect, span
from repro.quorums import AccessStrategy, majority

_PROBE_SPANS = 50_000


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TestNoOpOverhead:
    def test_noop_span_cost_is_under_one_percent_of_solve_qpp(self):
        network = grid_network(3, 3).with_capacities(2.0)
        system = majority(5)
        strategy = AccessStrategy.uniform(system)

        def solve():
            return solve_qpp(system, strategy, network=network)

        solve()  # warm the metric cache and LP factory paths
        assert active_collector() is None  # measuring the no-op path
        solve_seconds = _best_of(3, solve)

        with collect() as collector:
            solve()
        span_count = collector.span_count
        assert span_count >= 3  # the guard must cover a real span load

        def probe():
            for _ in range(_PROBE_SPANS):
                with span("overhead.probe"):
                    pass

        per_span_seconds = _best_of(3, probe) / _PROBE_SPANS
        overhead_seconds = span_count * per_span_seconds
        assert overhead_seconds < 0.01 * solve_seconds, (
            f"no-op span overhead {overhead_seconds:.6f}s is not under 1% of "
            f"solve time {solve_seconds:.6f}s ({span_count} spans at "
            f"{per_span_seconds * 1e9:.0f}ns each)"
        )
