"""Tests for the second wave of topology generators."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.network import (
    barabasi_albert_network,
    fat_tree_network,
    ring_of_clusters_network,
)


class TestBarabasiAlbert:
    def test_connected_and_sized(self):
        net = barabasi_albert_network(30, 2, rng=np.random.default_rng(0))
        assert net.size == 30
        assert net.is_connected()

    def test_deterministic(self):
        a = barabasi_albert_network(15, 3, rng=np.random.default_rng(4))
        b = barabasi_albert_network(15, 3, rng=np.random.default_rng(4))
        assert a.edges() == b.edges()

    def test_hub_formation(self):
        """Preferential attachment produces a heavy-tailed degree
        distribution: the max degree should clearly exceed the mean."""
        net = barabasi_albert_network(60, 2, rng=np.random.default_rng(1))
        degrees = [len(net.neighbors(v)) for v in net.nodes]
        assert max(degrees) >= 3 * (sum(degrees) / len(degrees)) / 1.5

    def test_length_range(self):
        net = barabasi_albert_network(
            10, 2, rng=np.random.default_rng(2), length_range=(2.0, 5.0)
        )
        for _, _, length in net.edges():
            assert 2.0 <= length <= 5.0

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            barabasi_albert_network(5, 5, rng=rng)
        with pytest.raises(ValidationError):
            barabasi_albert_network(5, 0, rng=rng)


class TestFatTree:
    def test_structure(self):
        net = fat_tree_network(4)
        # 1 core + 4 pod switches + 16 hosts.
        assert net.size == 1 + 4 + 16
        assert net.is_connected()

    def test_hierarchical_distances(self):
        net = fat_tree_network(3, core_length=4.0, pod_length=1.0)
        # Same pod: host - switch - host = 2.
        assert net.distance(("host", 0, 0), ("host", 0, 2)) == pytest.approx(2.0)
        # Cross pod: host - switch - core - switch - host = 1+4+4+1.
        assert net.distance(("host", 0, 0), ("host", 2, 1)) == pytest.approx(10.0)


class TestRingOfClusters:
    def test_structure(self):
        net = ring_of_clusters_network(4, 3)
        assert net.size == 12
        assert net.is_connected()

    def test_gateway_ring_distances(self):
        net = ring_of_clusters_network(4, 2, local_length=1.0, ring_length=10.0)
        # Adjacent gateways: one ring hop.
        assert net.distance((0, 0), (1, 0)) == pytest.approx(10.0)
        # Opposite gateways: two ring hops either way.
        assert net.distance((0, 0), (2, 0)) == pytest.approx(20.0)
        # Non-gateway to non-gateway across adjacent clusters.
        assert net.distance((0, 1), (1, 1)) == pytest.approx(12.0)

    def test_minimum_clusters(self):
        with pytest.raises(ValidationError):
            ring_of_clusters_network(2, 2)
