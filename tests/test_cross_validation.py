"""Independent cross-validations of the LP machinery.

These tests rebuild small LPs by hand — raw scipy matrices, no
``repro.lp`` — and check the library's formulations against them, so a
bug in the modeling layer cannot silently agree with itself.
"""

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.core.ssqpp import build_ssqpp_lp
from repro.gap import GAPInstance, solve_gap_lp
from repro.network import path_network
from repro.quorums import AccessStrategy, QuorumSystem


class TestSSQPPAgainstHandBuiltLP:
    def test_two_element_single_quorum_path(self):
        """U = {a, b}, one quorum {a, b}, path 0-1-2, caps 1, source 0.

        The *integral* optimum is 1 (one element each on nodes 0 and 1,
        quorum completes at distance 1), but the LP splits both elements
        half/half across nodes 0 and 1 and half-completes the quorum at
        distance 0: Z* = 0.5 — the integrality gap in miniature.  The
        hand-built scipy LP must agree exactly.
        """
        system = QuorumSystem([{"a", "b"}], universe=["a", "b"])
        strategy = AccessStrategy.uniform(system)
        network = path_network(3).with_capacities(1.0)
        model, *_ = build_ssqpp_lp(system, strategy, network, 0)
        ours = model.solve().objective

        # Hand-built LP over x = [x00,x01,x02 (a), x10,x11,x12 (b),
        # q0,q1,q2] with distances d = [0,1,2].
        c = np.array([0, 0, 0, 0, 0, 0, 0.0, 1.0, 2.0])
        a_eq = np.array(
            [
                [1, 1, 1, 0, 0, 0, 0, 0, 0],  # a placed
                [0, 0, 0, 1, 1, 1, 0, 0, 0],  # b placed
                [0, 0, 0, 0, 0, 0, 1, 1, 1],  # quorum completes
            ],
            dtype=float,
        )
        b_eq = np.ones(3)
        a_ub = []
        b_ub = []
        # capacity: x[t,a] + x[t,b] <= 1 at each node
        for t in range(3):
            row = np.zeros(9)
            row[t] = 1
            row[3 + t] = 1
            a_ub.append(row)
            b_ub.append(1.0)
        # prefix: sum_{s<=t} q_s <= sum_{s<=t} x_{s,u}, both u
        for u_offset in (0, 3):
            for t in range(3):
                row = np.zeros(9)
                row[6 : 6 + t + 1] = 1
                row[u_offset : u_offset + t + 1] -= 1
                a_ub.append(row)
                b_ub.append(0.0)
        result = linprog(
            c,
            A_ub=np.array(a_ub),
            b_ub=np.array(b_ub),
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=[(0, 1)] * 9,
            method="highs",
        )
        assert result.success
        assert ours == pytest.approx(result.fun, abs=1e-8)
        assert ours == pytest.approx(0.5, abs=1e-8)


class TestGAPAgainstHandBuiltLP:
    def test_two_by_two(self):
        """2 machines x 2 jobs, hand-checked LP optimum."""
        instance = GAPInstance(
            jobs=(0, 1),
            machines=("m0", "m1"),
            costs=np.array([[1.0, 4.0], [3.0, 2.0]]),
            loads=np.array([[1.0, 1.0], [1.0, 1.0]]),
            capacities=np.array([1.0, 1.0]),
        )
        ours = solve_gap_lp(instance).cost

        # y = [y00, y01, y10, y11] (machine-major).
        c = np.array([1.0, 4.0, 3.0, 2.0])
        a_eq = np.array([[1, 0, 1, 0], [0, 1, 0, 1]], dtype=float)  # jobs
        b_eq = np.ones(2)
        a_ub = np.array([[1, 1, 0, 0], [0, 0, 1, 1]], dtype=float)  # caps
        b_ub = np.ones(2)
        reference = linprog(
            c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
            bounds=[(0, 1)] * 4, method="highs",
        )
        assert reference.success
        assert ours == pytest.approx(reference.fun, abs=1e-9)
        assert ours == pytest.approx(3.0, abs=1e-9)  # y00 = y11 = 1


class TestEvaluatorsAgainstEnumeration:
    def test_average_max_delay_by_full_enumeration(self):
        """Avg_v Delta_f(v) cross-checked by summing the raw definition
        over every (client, quorum) pair."""
        from repro.core import Placement, average_max_delay

        system = QuorumSystem([{0, 1}, {1, 2}, {0, 1, 2}], universe=range(3))
        strategy = AccessStrategy.from_weights(system, [0.2, 0.3, 0.5])
        network = path_network(4).with_capacities(10.0)
        placement = Placement(system, network, {0: 0, 1: 2, 2: 3})
        metric = network.metric()

        total = 0.0
        for client in network.nodes:
            for index, quorum in enumerate(system.quorums):
                worst = max(
                    metric.distance(client, placement[u]) for u in quorum
                )
                total += strategy.probability(index) * worst
        expected = total / network.size
        assert average_max_delay(placement, strategy) == pytest.approx(expected)

    def test_average_total_delay_by_full_enumeration(self):
        from repro.core import Placement, average_total_delay

        system = QuorumSystem([{0, 1}, {1, 2}], universe=range(3))
        strategy = AccessStrategy.from_weights(system, [0.25, 0.75])
        network = path_network(4).with_capacities(10.0)
        placement = Placement(system, network, {0: 1, 1: 1, 2: 3})
        metric = network.metric()

        total = 0.0
        for client in network.nodes:
            for index, quorum in enumerate(system.quorums):
                cost = sum(
                    metric.distance(client, placement[u]) for u in quorum
                )
                total += strategy.probability(index) * cost
        expected = total / network.size
        assert average_total_delay(placement, strategy) == pytest.approx(expected)

    def test_naor_wool_lp_against_scipy_direct(self):
        """The strategy LP cross-built with raw scipy for majority(3)."""
        from repro.quorums import majority, optimal_strategy

        system = majority(3)
        ours = optimal_strategy(system).load

        # Variables: p0, p1, p2 (quorums {0,1},{0,2},{1,2} in system
        # order), L.  min L s.t. sum p = 1, per-element load <= L.
        order = list(system.quorums)
        c = np.array([0, 0, 0, 1.0])
        a_eq = np.array([[1, 1, 1, 0.0]])
        b_eq = np.array([1.0])
        rows = []
        for element in range(3):
            row = np.zeros(4)
            for j, quorum in enumerate(order):
                if element in quorum:
                    row[j] = 1.0
            row[3] = -1.0
            rows.append(row)
        reference = linprog(
            c, A_ub=np.array(rows), b_ub=np.zeros(3), A_eq=a_eq, b_eq=b_eq,
            bounds=[(0, None)] * 4, method="highs",
        )
        assert reference.success
        assert ours == pytest.approx(reference.fun, abs=1e-9)
        assert ours == pytest.approx(2 / 3, abs=1e-9)
