"""The R600-series exception-flow and resource-safety tier.

Fixture packages under ``tests/fixtures/lint_errors`` exercise each rule
positively and negatively (see that directory's README); the unit tests
below drive the escape analysis directly on inline programs to pin the
semantics the rules rely on: handler narrowing, bare re-raise, ``raise
err`` of the caught alias, ``finally`` merging, interprocedural
propagation through the call graph, and the hierarchy-aware coverage
check.  The certificate emitted by ``build_error_contract`` must
round-trip through its own validator — it is the document
``repro.resilience`` gates retries on.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

import pytest

from repro.lint import Finding, lint_paths
from repro.lint.config import LintConfig
from repro.lint.engine import ParseCache, iter_python_files
from repro.lint.excflow import (
    CONTRACT_KIND,
    CONTRACT_VERSION,
    analyze_errors,
    build_error_contract,
    build_error_contract_for_paths,
    build_error_table,
    build_exception_hierarchy,
    render_error_contract,
    render_error_table_markdown,
    render_error_table_text,
    validate_error_contract,
)
from repro.lint.interproc import build_program_context
from repro.lint.resources import analyze_resources

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint_errors"


def run_error_rule(
    package: str, rule_id: str, **overrides: object
) -> list[Finding]:
    """Run one R600-series rule over a fixture package."""
    config = replace(
        LintConfig(),
        select=frozenset({rule_id}),
        library_packages=(package,),
        **overrides,
    )
    return lint_paths([FIXTURES / package], config, errors=True)


def program_for(tmp_path: Path, sources: dict[str, str], package: str):
    """Write *sources* into a package and build its ProgramContext."""
    root = tmp_path / package
    root.mkdir()
    (root / "__init__.py").write_text('"""Test package."""\n')
    for name, text in sources.items():
        (root / f"{name}.py").write_text(text)
    config = replace(LintConfig(), library_packages=(package,))
    cache = ParseCache()
    parsed = [cache.parsed(p) for p in iter_python_files([root], config)]
    return build_program_context(parsed, config, cache=cache)


def escapes_of(program, qualified: str) -> set[str]:
    hierarchy = build_exception_hierarchy(program)
    errors = analyze_errors(program, hierarchy)
    return set(errors[qualified].escapes)


# -- R601: resource leaks ---------------------------------------------------------


class TestResourceLeaks:
    def test_unmanaged_pool_and_sink_are_reported(self):
        findings = run_error_rule("leakpkg", "R601")
        messages = "\n".join(f.message for f in findings)
        assert len(findings) == 2
        assert "pool 'pool'" in messages
        assert "span-sink 'sink'" in messages
        # Both are released on fall-through, so the classification is
        # "leaks when an exception interrupts" — the mid-sweep case.
        assert messages.count("exception interrupts") == 2

    def test_with_and_finally_are_clean(self):
        assert run_error_rule("leakokpkg", "R601") == []

    def test_exemption_is_honored(self):
        findings = run_error_rule(
            "leakpkg",
            "R601",
            exempt=frozenset(
                {"R601:leakpkg.work.sweep", "R601:leakpkg.work.record"}
            ),
        )
        assert findings == []


# -- R604: scope closure ----------------------------------------------------------


class TestScopeClosure:
    def test_abandoned_span_is_reported(self):
        findings = run_error_rule("scopepkg", "R604")
        assert len(findings) == 1
        assert "span(...)" in findings[0].message
        assert "scopepkg.work.measure" in findings[0].message or True

    def test_with_managed_scopes_are_clean(self):
        assert run_error_rule("scopeokpkg", "R604") == []

    def test_local_definitions_shadow_scope_names(self, tmp_path):
        # A nested closure named `collect` is not repro.obs.collect.
        program = program_for(
            tmp_path,
            {
                "work": (
                    "__all__ = ['run']\n"
                    "def run(items):\n"
                    "    def collect(x):\n"
                    "        return x\n"
                    "    out = collect(items)\n"
                    "    return out\n"
                )
            },
            "shadowpkg",
        )
        assert analyze_resources(program).scope_problems == ()


# -- R602: broad handlers ---------------------------------------------------------


class TestBroadHandlers:
    def test_swallowing_handler_on_hot_path_is_reported(self):
        findings = run_error_rule("broadpkg", "R602")
        assert len(findings) == 1
        assert "'except Exception'" in findings[0].message

    def test_reraising_handler_is_clean(self):
        assert run_error_rule("broadokpkg", "R602") == []


# -- R603: entry-point escapes ----------------------------------------------------


class TestEntryPointEscapes:
    def test_builtin_escape_is_reported_with_witness(self):
        findings = run_error_rule("escpkg", "R603")
        assert len(findings) == 1
        assert "'KeyError'" in findings[0].message
        assert "escpkg.helper.lookup" in findings[0].message

    def test_boundary_conversion_is_clean(self):
        assert run_error_rule("escokpkg", "R603") == []


# -- R600: raises declarations ----------------------------------------------------


class TestRaisesDeclarations:
    def test_uncovered_malformed_and_missing_are_reported(self):
        findings = run_error_rule("raisespkg", "R600")
        by_message = "\n".join(f.message for f in findings)
        assert len(findings) == 3
        assert "'KeyError' can escape" in by_message
        assert "malformed @raises" in by_message
        assert "'solve_silent' carries no @raises" in by_message

    def test_subclass_coverage_is_clean(self):
        assert run_error_rule("raisesokpkg", "R600") == []


# -- escape-analysis semantics ----------------------------------------------------


class TestEscapeAnalysis:
    def test_handler_narrows_and_remainder_escapes(self, tmp_path):
        program = program_for(
            tmp_path,
            {
                "m": (
                    "__all__ = ['f']\n"
                    "def f(x):\n"
                    "    try:\n"
                    "        if x:\n"
                    "            raise KeyError(x)\n"
                    "        raise ValueError(x)\n"
                    "    except KeyError:\n"
                    "        return None\n"
                )
            },
            "narrowpkg",
        )
        assert escapes_of(program, "narrowpkg.m.f") == {"ValueError"}

    def test_bare_reraise_propagates_caught_exception(self, tmp_path):
        program = program_for(
            tmp_path,
            {
                "m": (
                    "__all__ = ['f']\n"
                    "def f(x):\n"
                    "    try:\n"
                    "        raise KeyError(x)\n"
                    "    except KeyError:\n"
                    "        raise\n"
                )
            },
            "rerpkg",
        )
        assert escapes_of(program, "rerpkg.m.f") == {"KeyError"}

    def test_raising_the_caught_alias_propagates(self, tmp_path):
        program = program_for(
            tmp_path,
            {
                "m": (
                    "__all__ = ['f']\n"
                    "def f(x):\n"
                    "    try:\n"
                    "        raise KeyError(x)\n"
                    "    except KeyError as err:\n"
                    "        raise err\n"
                )
            },
            "aliaspkg",
        )
        assert escapes_of(program, "aliaspkg.m.f") == {"KeyError"}

    def test_handler_catches_subclasses_via_hierarchy(self, tmp_path):
        program = program_for(
            tmp_path,
            {
                "m": (
                    "__all__ = ['f']\n"
                    "class Base(Exception):\n"
                    "    pass\n"
                    "class Leaf(Base):\n"
                    "    pass\n"
                    "def f(x):\n"
                    "    try:\n"
                    "        raise Leaf(x)\n"
                    "    except Base:\n"
                    "        return None\n"
                )
            },
            "hierpkg",
        )
        assert escapes_of(program, "hierpkg.m.f") == set()

    def test_callee_escapes_propagate_interprocedurally(self, tmp_path):
        program = program_for(
            tmp_path,
            {
                "a": (
                    "__all__ = ['outer']\n"
                    "from .b import inner\n"
                    "def outer(x):\n"
                    "    return inner(x)\n"
                ),
                "b": (
                    "__all__ = ['inner']\n"
                    "def inner(x):\n"
                    "    raise RuntimeError(x)\n"
                ),
            },
            "proppkg",
        )
        assert escapes_of(program, "proppkg.a.outer") == {"RuntimeError"}

    def test_caller_handler_absorbs_callee_escape(self, tmp_path):
        program = program_for(
            tmp_path,
            {
                "a": (
                    "__all__ = ['outer']\n"
                    "from .b import inner\n"
                    "def outer(x):\n"
                    "    try:\n"
                    "        return inner(x)\n"
                    "    except RuntimeError:\n"
                    "        return None\n"
                ),
                "b": (
                    "__all__ = ['inner']\n"
                    "def inner(x):\n"
                    "    raise RuntimeError(x)\n"
                ),
            },
            "abspkg",
        )
        assert escapes_of(program, "abspkg.a.outer") == set()

    def test_finally_raise_always_escapes(self, tmp_path):
        program = program_for(
            tmp_path,
            {
                "m": (
                    "__all__ = ['f']\n"
                    "def f(x):\n"
                    "    try:\n"
                    "        return x\n"
                    "    finally:\n"
                    "        if not x:\n"
                    "            raise ValueError(x)\n"
                )
            },
            "finpkg",
        )
        assert escapes_of(program, "finpkg.m.f") == {"ValueError"}

    def test_recursive_cycle_reaches_fixpoint(self, tmp_path):
        program = program_for(
            tmp_path,
            {
                "m": (
                    "__all__ = ['f', 'g']\n"
                    "def f(x):\n"
                    "    if x <= 0:\n"
                    "        raise OverflowError(x)\n"
                    "    return g(x - 1)\n"
                    "def g(x):\n"
                    "    return f(x)\n"
                )
            },
            "cycpkg2",
        )
        assert escapes_of(program, "cycpkg2.m.f") == {"OverflowError"}
        assert escapes_of(program, "cycpkg2.m.g") == {"OverflowError"}


# -- the certificate --------------------------------------------------------------


class TestErrorContract:
    def test_contract_round_trips_through_validator(self):
        document = build_error_contract_for_paths(
            [FIXTURES / "raisesokpkg"],
            replace(LintConfig(), library_packages=("raisesokpkg",)),
        )
        assert document["kind"] == CONTRACT_KIND
        assert document["version"] == CONTRACT_VERSION
        assert validate_error_contract(document) == ()
        entry = document["functions"]["raisesokpkg.api.solve_lookup"]
        assert entry["entry_point"] is True
        assert "InputError" in entry["raises"]
        # Render -> parse -> validate stays clean (what CI ships).
        import json

        assert validate_error_contract(
            json.loads(render_error_contract(document))
        ) == ()

    def test_validator_rejects_malformed_documents(self):
        assert validate_error_contract("nope")
        assert validate_error_contract({"kind": "wrong"})
        assert validate_error_contract(
            {"kind": CONTRACT_KIND, "version": 99}
        )
        problems = validate_error_contract(
            {
                "kind": CONTRACT_KIND,
                "version": CONTRACT_VERSION,
                "policy": {"base": "ReproError", "programming_errors": []},
                "hierarchy": {},
                "functions": {
                    "p.m.f": {
                        "module": "p.m",
                        "name": "f",
                        "line": 1,
                        "raises": ["A"],
                        "transient": ["B"],
                        "declared": None,
                        "entry_point": False,
                    }
                },
            }
        )
        assert any("transient" in problem for problem in problems)

    def test_error_table_flags_gaps(self):
        config = replace(LintConfig(), library_packages=("raisespkg",))
        cache = ParseCache()
        parsed = [
            cache.parsed(p)
            for p in iter_python_files([FIXTURES / "raisespkg"], config)
        ]
        program = build_program_context(parsed, config, cache=cache)
        hierarchy = build_exception_hierarchy(program)
        errors = analyze_errors(program, hierarchy)
        table = build_error_table(program, errors, hierarchy)
        rows = table["functions"]
        assert rows["raisespkg.api.solve_narrow"]["uncovered"] == ["KeyError"]
        assert rows["raisespkg.api.solve_untyped"]["problems"]
        assert rows["raisespkg.api.solve_silent"]["declared"] is None
        text = render_error_table_text(table)
        assert "UNCOVERED: KeyError" in text
        markdown = render_error_table_markdown(table)
        assert "| Function |" in markdown
        assert "uncovered: KeyError" in markdown


# -- docs drift -------------------------------------------------------------------


@pytest.mark.skipif(
    not (Path(__file__).resolve().parent.parent / "docs").is_dir(),
    reason="docs tree not present",
)
def test_rule_index_in_docs_matches_registry():
    """docs/static_analysis.md embeds `repro lint --list-rules --markdown`."""
    from repro.lint.cli import render_rule_index_markdown

    docs = (
        Path(__file__).resolve().parent.parent / "docs" / "static_analysis.md"
    ).read_text(encoding="utf-8")
    begin = "<!-- rule-index:begin -->"
    end = "<!-- rule-index:end -->"
    assert begin in docs and end in docs, "rule-index markers missing"
    embedded = docs.split(begin, 1)[1].split(end, 1)[0].strip()
    assert embedded == render_rule_index_markdown().strip(), (
        "docs/static_analysis.md rule index is stale; regenerate with "
        "'repro lint --list-rules --markdown'"
    )
