"""Tests for the local-search ablation baseline."""

import numpy as np
import pytest

from repro.core import (
    average_max_delay,
    average_total_delay,
    improve_max_delay,
    improve_total_delay,
    is_capacity_respecting,
    local_search,
    random_placement,
    solve_qpp_exact,
)
from repro.network import path_network, random_geometric_network, uniform_capacities
from repro.quorums import AccessStrategy, majority


@pytest.fixture
def instance(rng):
    system = majority(5)
    strategy = AccessStrategy.uniform(system)
    network = uniform_capacities(random_geometric_network(7, 0.55, rng=rng), 1.0)
    return system, strategy, network


class TestDescent:
    def test_never_worsens(self, rng, instance):
        system, strategy, network = instance
        start = random_placement(system, strategy, network, rng=rng)
        result = improve_max_delay(start, strategy)
        assert result.objective <= result.initial_objective + 1e-12
        assert result.improvement >= 0.0

    def test_preserves_feasibility(self, rng, instance):
        system, strategy, network = instance
        start = random_placement(system, strategy, network, rng=rng)
        result = improve_max_delay(start, strategy)
        assert is_capacity_respecting(result.placement, strategy)

    def test_objective_matches_placement(self, rng, instance):
        system, strategy, network = instance
        start = random_placement(system, strategy, network, rng=rng)
        result = improve_max_delay(start, strategy)
        assert result.objective == pytest.approx(
            average_max_delay(result.placement, strategy)
        )

    def test_total_delay_variant(self, rng, instance):
        system, strategy, network = instance
        start = random_placement(system, strategy, network, rng=rng)
        result = improve_total_delay(start, strategy)
        assert result.objective == pytest.approx(
            average_total_delay(result.placement, strategy)
        )
        assert result.objective <= result.initial_objective + 1e-12

    def test_local_optimum_is_stable(self, rng, instance):
        """Re-running from a converged point makes no further progress."""
        system, strategy, network = instance
        start = random_placement(system, strategy, network, rng=rng)
        first = improve_max_delay(start, strategy)
        assert first.converged
        second = improve_max_delay(first.placement, strategy)
        assert second.iterations == 0
        assert second.objective == pytest.approx(first.objective)

    def test_iteration_budget_respected(self, rng, instance):
        system, strategy, network = instance
        start = random_placement(system, strategy, network, rng=rng)
        result = improve_max_delay(start, strategy, max_iterations=1)
        assert result.iterations <= 1

    def test_close_to_exact_on_tiny_instance(self, rng):
        """On a tiny instance, local search from random usually lands near
        the global optimum (sanity: within 2x here)."""
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        network = path_network(4).with_capacities(1.0)
        exact = solve_qpp_exact(system, strategy, network)
        start = random_placement(system, strategy, network, rng=rng)
        result = improve_max_delay(start, strategy)
        assert result.objective <= 2 * exact.objective + 1e-9
        assert result.objective >= exact.objective - 1e-9

    def test_swap_neighborhood_used_when_moves_blocked(self):
        """With exactly-tight capacities no single move is feasible; only
        swaps can improve.  Start from a bad arrangement on a path."""
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        network = path_network(3).with_capacities(2 / 3)  # each node: 1 element
        # Delays are permutation-invariant for majority; use total-delay
        # where position matters... actually for majority both objectives
        # are slot-multiset-invariant. Use a custom objective that prefers
        # element 0 on node 0 to force a swap.
        from repro.core import Placement

        start = Placement(system, network, {0: 2, 1: 1, 2: 0})
        result = local_search(
            start,
            strategy,
            lambda p: float(p.network.node_index(p[0])),
        )
        assert result.placement[0] == 0
        assert result.iterations >= 1
