"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network import (
    metric_cache_clear,
    metric_cache_info,
    random_geometric_network,
    uniform_capacities,
)
from repro.obs.metrics import default_registry
from repro.obs.trace import active_collector
from repro.quorums import AccessStrategy, majority


@pytest.fixture(autouse=True)
def _fresh_observability_state():
    """Zero the process-wide metrics registry before every test.

    The registry (which now backs the ``repro.network.graph`` metric
    cache aggregates) otherwise bleeds between tests: a test asserting
    "this code path triggered no rebuild" would pass or fail depending
    on what ran before it.  Also guards that no test leaks an installed
    trace collector.
    """
    default_registry().reset()
    metric_cache_clear()
    info = metric_cache_info()
    assert info.builds == 0 and info.hits == 0
    assert active_collector() is None
    yield
    assert active_collector() is None, "test leaked an installed trace collector"


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_network(rng):
    """A connected 8-node geometric network with unit capacities."""
    return uniform_capacities(random_geometric_network(8, 0.55, rng=rng), 1.0)


@pytest.fixture
def majority5():
    """The Majority system on five elements with its uniform strategy."""
    system = majority(5)
    return system, AccessStrategy.uniform(system)
