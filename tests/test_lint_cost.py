"""The cost tier: symbolic bounds, rules R500-R504, and ``repro cost``.

Each rule is exercised positively (it fires on a synthetic violating
package) and negatively (the corrected twin stays silent), plus unit
coverage for the ``@cost`` declaration grammar, the monomial/bound
algebra, the loop-structure inference (including the CFG corner cases:
``while``/``else``, ``enumerate``/``zip``, multi-generator
comprehensions, ``try``/``finally``), the interprocedural fixpoint with
widening, the R504 telemetry schema and log-log fit, the cost-table
document and its renderers, and the rule-selection prefixes that let
``--select``/``--ignore`` address a whole tier.
"""

from __future__ import annotations

import json
import textwrap
from dataclasses import replace
from pathlib import Path

import pytest

from repro._validation import (
    COST_SCALES,
    COST_SYMBOLS,
    cost,
    cost_expression_problems,
)
from repro.exceptions import LintError, ValidationError
from repro.lint import (
    CostBound,
    CostContext,
    CostRule,
    Finding,
    FunctionCost,
    LintConfig,
    Monomial,
    ParseCache,
    analyze_costs,
    build_cost_context,
    build_cost_table,
    lint_paths,
    load_cost_telemetry,
    parse_cost_expression,
    registered_rules,
    render_cost_table_json,
    render_cost_table_markdown,
    render_cost_table_text,
    validate_cost_telemetry,
)
from repro.lint.cli import main as lint_main
from repro.lint.config import _rule_matches
from repro.lint.cost_rules import (
    CostDeclarationRule,
    DenseMetricScaleRule,
    HotLoopAllocationRule,
    ReferenceOnHotPathRule,
    StaleCostDeclarationRule,
)
from repro.lint.costmodel import (
    COST_TABLE_KIND,
    COST_TABLE_VERSION,
    R504_TOLERANCE,
    TELEMETRY_KIND,
    TELEMETRY_VERSION,
    WIDENING_CAP,
    AllocationSite,
    CostDeclaration,
    CostObservation,
    DenseBuildSite,
    LocalCost,
    ReferenceCallSite,
    declared_cost,
    reachable_from,
    solver_reachable,
    stale_declarations,
)
from repro.lint.engine import iter_python_files
from repro.lint.interproc import build_program_context
from repro.obs.report import fit_scaling_exponent

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def write_package(root: Path, name: str, modules: dict[str, str]) -> Path:
    """Materialize a synthetic package under *root*."""
    package = root / name
    package.mkdir(parents=True, exist_ok=True)
    if "__init__" not in modules:
        (package / "__init__.py").write_text("", encoding="utf-8")
    for module, source in modules.items():
        (package / f"{module}.py").write_text(
            textwrap.dedent(source), encoding="utf-8"
        )
    return package


def build_context(package: Path, **overrides: object):
    """Program context over one synthetic package."""
    overrides.setdefault("library_packages", (package.name,))
    config = replace(LintConfig(), validated_packages=(), **overrides)
    cache = ParseCache()
    parsed = [cache.parsed(p) for p in iter_python_files([package], config)]
    return build_program_context(parsed, config, cache=cache)


def costs_of(package: Path, **overrides: object) -> dict[str, FunctionCost]:
    return analyze_costs(build_context(package, **overrides))


def cost_by_name(costs: dict[str, FunctionCost], name: str) -> FunctionCost:
    return next(c for q, c in costs.items() if q.endswith(f".{name}"))


def run_cost_rules(
    package: Path, rule_id: str, **overrides: object
) -> list[Finding]:
    overrides.setdefault("validated_packages", ())
    overrides.setdefault("library_packages", (package.name,))
    config = replace(LintConfig(), select=frozenset({rule_id}), **overrides)
    return lint_paths([package], config, cost=True)


def telemetry_file(tmp_path: Path, observations: list[dict]) -> Path:
    path = tmp_path / "telemetry.json"
    path.write_text(
        json.dumps(
            {
                "kind": TELEMETRY_KIND,
                "version": TELEMETRY_VERSION,
                "observations": observations,
            }
        ),
        encoding="utf-8",
    )
    return path


# -- the @cost decorator (runtime side) ---------------------------------------------


def test_cost_decorator_attaches_expression_without_wrapping():
    @cost("n**2 * q", scale="large")
    def fn():
        return 7

    assert fn() == 7  # no wrapper: the function object is returned as-is
    assert fn.__cost__ == "n**2 * q"
    assert fn.__cost_scale__ == "large"


def test_cost_decorator_default_scale_is_none():
    @cost("n + q * log(q)")
    def fn():
        return 1

    assert fn.__cost_scale__ is None


def test_cost_decorator_rejects_bad_grammar_and_scale():
    with pytest.raises(ValidationError):
        cost("n - 1")
    with pytest.raises(ValidationError):
        cost("n ** k")
    with pytest.raises(ValidationError):
        cost("n", scale="galactic")
    assert "large" in COST_SCALES


@pytest.mark.parametrize(
    "expression",
    ["n", "1", "n**2 * c + q * log(n)", "exp(n) * q", "2**n", "n * m + 5"],
)
def test_grammar_accepts_documented_forms(expression):
    assert cost_expression_problems(expression) == ()


@pytest.mark.parametrize(
    "expression",
    ["n - 1", "n / q", "x", "n ** k", "log(2)", "n**-1", "3**n", "q()"],
)
def test_grammar_rejects_everything_else(expression):
    assert cost_expression_problems(expression)


# -- the monomial / bound algebra ---------------------------------------------------


class TestCostAlgebra:
    def test_parse_renders_canonically(self):
        bound, problems = parse_cost_expression("q * log(n) + n**2 * c")
        assert problems == ()
        assert bound is not None
        assert bound.render() == "n**2 * c + q * log(n)"

    def test_sum_normalization_drops_dominated_terms(self):
        bound, _ = parse_cost_expression("n * q + n + q + 1")
        assert bound is not None
        assert bound.render() == "n * q"

    def test_exponential_absorbs_any_polynomial_degree(self):
        declared, _ = parse_cost_expression("exp(n)")
        inferred, _ = parse_cost_expression("n**5")
        assert inferred is not None and declared is not None
        assert inferred.covered_by(declared)
        assert not declared.covered_by(inferred)

    def test_two_to_the_n_is_the_same_exponential(self):
        spelled, _ = parse_cost_expression("2**n")
        named, _ = parse_cost_expression("exp(n)")
        assert spelled == named

    def test_log_factors_never_decide_coverage(self):
        declared, _ = parse_cost_expression("n")
        inferred, _ = parse_cost_expression("n * log(n)")
        assert inferred is not None and declared is not None
        assert inferred.covered_by(declared)
        assert declared.covered_by(inferred)

    def test_coverage_is_per_symbol_pointwise(self):
        declared, _ = parse_cost_expression("n**2 * q")
        too_wide, _ = parse_cost_expression("n * q**2")
        assert too_wide is not None and declared is not None
        assert not too_wide.covered_by(declared)

    def test_monomial_product_adds_exponents(self):
        n = Monomial.symbol("n")
        assert n.times(n).degree("n") == 2.0
        assert n.times(Monomial.unit()) == n

    def test_top_element_is_covered_only_by_top(self):
        top = CostBound.top("widened in a test")
        poly, _ = parse_cost_expression("n**4")
        assert poly is not None
        assert not top.covered_by(poly)
        assert poly.covered_by(top)
        assert top.render() == "unbounded"
        assert "widened" in top.reason

    def test_degree_reads_inf_for_exponentials(self):
        bound, _ = parse_cost_expression("exp(q) * n")
        assert bound is not None
        assert bound.degree("q") == float("inf")
        assert bound.degree("n") == 1.0
        assert bound.degree("m") == 0.0

    def test_symbols_vocabulary_is_the_papers(self):
        assert COST_SYMBOLS == ("n", "m", "q", "c")


# -- loop-structure inference (the CFG corner cases as cost cases) ------------------


class TestInference:
    def _infer(self, tmp_path: Path, body: str) -> str:
        package = write_package(
            tmp_path, "infpkg", {"mod": '"""m."""\n\n__all__ = []\n\n' + body}
        )
        costs = costs_of(package)
        return cost_by_name(costs, "target").inferred.render()

    def test_nested_loops_multiply(self, tmp_path):
        body = """
        def target(nodes, quorums):
            total = 0.0
            for node in nodes:
                for quorum in quorums:
                    total += 1.0
            return total
        """
        assert self._infer(tmp_path, textwrap.dedent(body)) == "n * q"

    def test_range_len_chain_is_unwrapped(self, tmp_path):
        body = """
        def target(nodes):
            out = []
            for index in range(len(nodes)):
                out.append(index)
            return out
        """
        assert self._infer(tmp_path, textwrap.dedent(body)) == "n"

    def test_range_stop_argument_governs_the_trip_count(self, tmp_path):
        body = """
        def target(quorums):
            total = 0
            for index in range(2, len(quorums)):
                total += index
            return total
        """
        assert self._infer(tmp_path, textwrap.dedent(body)) == "q"

    def test_enumerate_and_zip_are_transparent(self, tmp_path):
        body = """
        def target(nodes, quorums):
            for index, node in enumerate(nodes):
                pass
            for node, quorum in zip(nodes, quorums):
                pass
            return 0
        """
        assert self._infer(tmp_path, textwrap.dedent(body)) == "n"

    def test_multi_generator_comprehension_multiplies(self, tmp_path):
        body = """
        def target(nodes, quorums):
            return [
                (node, quorum) for node in nodes for quorum in quorums
            ]
        """
        assert self._infer(tmp_path, textwrap.dedent(body)) == "n * q"

    def test_while_loop_is_optimistically_constant(self, tmp_path):
        body = """
        def target(nodes):
            count = 0
            while count < 10:
                count += 1
            else:
                count = -1
            return count
        """
        assert self._infer(tmp_path, textwrap.dedent(body)) == "1"

    def test_for_else_branch_runs_outside_the_loop(self, tmp_path):
        body = """
        def target(nodes, quorums):
            for node in nodes:
                pass
            else:
                for quorum in quorums:
                    pass
            return 0
        """
        assert self._infer(tmp_path, textwrap.dedent(body)) == "n + q"

    def test_try_finally_bodies_are_scanned(self, tmp_path):
        body = """
        def target(nodes, quorums):
            try:
                for node in nodes:
                    pass
            finally:
                for quorum in quorums:
                    pass
            return 0
        """
        assert self._infer(tmp_path, textwrap.dedent(body)) == "n + q"

    def test_unrecognized_iterables_stay_constant(self, tmp_path):
        body = """
        def target(stuff):
            for item in stuff:
                pass
            return 0
        """
        assert self._infer(tmp_path, textwrap.dedent(body)) == "1"

    def test_nested_function_bodies_are_not_charged(self, tmp_path):
        body = """
        def target(nodes):
            def helper():
                for node in nodes:
                    for other in nodes:
                        pass
            return helper
        """
        assert self._infer(tmp_path, textwrap.dedent(body)) == "1"


class TestInterproceduralComposition:
    def test_callee_cost_multiplies_by_loop_context(self, tmp_path):
        package = write_package(
            tmp_path,
            "comppkg",
            {
                "mod": '''
                """m."""

                __all__ = []

                def inner(quorums):
                    for quorum in quorums:
                        pass

                def target(nodes, quorums):
                    for node in nodes:
                        inner(quorums)
                '''
            },
        )
        costs = costs_of(package)
        assert cost_by_name(costs, "target").inferred.render() == "n * q"

    def test_declared_callees_are_trusted_summaries(self, tmp_path):
        package = write_package(
            tmp_path,
            "trustpkg",
            {
                "mod": '''
                """m."""

                from repro._validation import cost

                __all__ = []

                @cost("n**3")
                def heavy(nodes):
                    return 0

                def target(nodes):
                    return heavy(nodes)
                '''
            },
        )
        costs = costs_of(package)
        assert cost_by_name(costs, "target").inferred.render() == "n**3"

    def test_inference_never_uses_a_functions_own_declaration(self, tmp_path):
        package = write_package(
            tmp_path,
            "honestpkg",
            {
                "mod": '''
                """m."""

                from repro._validation import cost

                __all__ = []

                @cost("1")
                def target(nodes, quorums):
                    for node in nodes:
                        for quorum in quorums:
                            pass
                '''
            },
        )
        record = cost_by_name(costs_of(package), "target")
        assert record.inferred.render() == "n * q"
        assert record.declared is not None
        assert record.declared.bound is not None
        assert not record.inferred.covered_by(record.declared.bound)

    def test_recursive_loop_cycles_widen_to_top(self, tmp_path):
        package = write_package(
            tmp_path,
            "cyclepkg",
            {
                "mod": '''
                """m."""

                __all__ = []

                def spin(nodes):
                    for node in nodes:
                        spin(nodes)

                def target(nodes):
                    return spin(nodes)
                '''
            },
        )
        record = cost_by_name(costs_of(package), "target")
        assert record.inferred.unbounded
        assert str(WIDENING_CAP) in record.inferred.reason or "widened" in (
            record.inferred.reason
        )

    def test_plain_self_recursion_does_not_widen(self, tmp_path):
        package = write_package(
            tmp_path,
            "recpkg",
            {
                "mod": '''
                """m."""

                __all__ = []

                def target(nodes):
                    if not nodes:
                        return 0
                    return target(nodes[1:])
                '''
            },
        )
        record = cost_by_name(costs_of(package), "target")
        assert not record.inferred.unbounded


# -- the @cost declaration parser (static side) -------------------------------------


class TestDeclaredCost:
    def _info(self, tmp_path: Path, source: str):
        package = write_package(tmp_path, "declpkg", {"mod": source})
        program = build_context(package)
        return next(
            info
            for q, info in program.calls.functions.items()
            if q.endswith(".target")
        )

    def test_well_formed_declaration_parses(self, tmp_path):
        declaration = declared_cost(
            self._info(
                tmp_path,
                '"""m."""\n\n__all__ = []\n\n'
                'import repro\n\n'
                '@repro._validation.cost("n * q", scale="medium")\n'
                "def target():\n    return 0\n",
            )
        )
        assert isinstance(declaration, CostDeclaration)
        assert declaration.expression == "n * q"
        assert declaration.scale == "medium"
        assert declaration.problems == ()
        assert declaration.bound is not None

    def test_undeclared_function_returns_none(self, tmp_path):
        info = self._info(
            tmp_path, '"""m."""\n\n__all__ = []\n\ndef target():\n    return 0\n'
        )
        assert declared_cost(info) is None

    def test_non_literal_expression_is_a_problem(self, tmp_path):
        declaration = declared_cost(
            self._info(
                tmp_path,
                '"""m."""\n\n__all__ = []\n\nEXPR = "n"\n\n'
                "from repro._validation import cost\n\n"
                "@cost(EXPR)\ndef target():\n    return 0\n",
            )
        )
        assert declaration is not None
        assert any("string literal" in p for p in declaration.problems)

    def test_unknown_scale_and_keyword_are_problems(self, tmp_path):
        declaration = declared_cost(
            self._info(
                tmp_path,
                '"""m."""\n\n__all__ = []\n\n'
                "from repro._validation import cost\n\n"
                '@cost("n", scale="huge")\ndef target():\n    return 0\n',
            )
        )
        assert declaration is not None
        assert any("huge" in p for p in declaration.problems)


# -- R500: declared vs inferred -----------------------------------------------------


ENTRY_OK = '''
"""m."""

from repro._validation import cost

__all__ = ["solve_thing"]

@cost("n * q")
def solve_thing(nodes, quorums):
    for node in nodes:
        for quorum in quorums:
            pass
    return 0
'''

ENTRY_UNDECLARED = '''
"""m."""

__all__ = ["solve_thing"]

def solve_thing(nodes, quorums):
    for node in nodes:
        for quorum in quorums:
            pass
    return 0
'''

ENTRY_LYING = '''
"""m."""

from repro._validation import cost

__all__ = ["solve_thing"]

@cost("n")
def solve_thing(nodes, quorums):
    for node in nodes:
        for quorum in quorums:
            pass
    return 0
'''


class TestCostDeclarationRule:
    def test_missing_entry_point_declaration_fires(self, tmp_path):
        package = write_package(tmp_path, "r500pkg", {"mod": ENTRY_UNDECLARED})
        findings = run_cost_rules(package, "R500")
        assert len(findings) == 1
        assert "no @cost declaration" in findings[0].message
        assert "O(n * q)" in findings[0].message

    def test_covering_declaration_is_silent(self, tmp_path):
        package = write_package(tmp_path, "r500ok", {"mod": ENTRY_OK})
        assert run_cost_rules(package, "R500") == []

    def test_too_tight_declaration_fires(self, tmp_path):
        package = write_package(tmp_path, "r500bad", {"mod": ENTRY_LYING})
        findings = run_cost_rules(package, "R500")
        assert len(findings) == 1
        assert "declared O(n)" in findings[0].message
        assert "infers O(n * q)" in findings[0].message

    def test_over_declaration_is_legal(self, tmp_path):
        generous = ENTRY_OK.replace('@cost("n * q")', '@cost("exp(n) * q")')
        package = write_package(tmp_path, "r500gen", {"mod": generous})
        assert run_cost_rules(package, "R500") == []

    def test_malformed_declaration_fires(self, tmp_path):
        malformed = ENTRY_OK.replace('@cost("n * q")', '@cost("n - q")')
        package = write_package(tmp_path, "r500mal", {"mod": malformed})
        findings = run_cost_rules(package, "R500")
        assert findings and "malformed @cost" in findings[0].message

    def test_private_helpers_need_no_declaration(self, tmp_path):
        package = write_package(
            tmp_path,
            "r500priv",
            {
                "mod": '"""m."""\n\n__all__ = []\n\n'
                "def _helper(nodes):\n"
                "    for node in nodes:\n        pass\n"
            },
        )
        assert run_cost_rules(package, "R500") == []

    def test_exemption_silences_the_entry_point(self, tmp_path):
        package = write_package(tmp_path, "r500ex", {"mod": ENTRY_UNDECLARED})
        findings = run_cost_rules(
            package,
            "R500",
            exempt=frozenset({"R500:r500ex.mod.solve_thing"}),
        )
        assert findings == []

    def test_rule_is_registered(self):
        rule = registered_rules()["R500"]
        assert isinstance(rule, CostDeclarationRule)
        assert isinstance(rule, CostRule)


# -- R501: allocations inside symbolic loops ----------------------------------------


R501_BAD = '''
"""m."""

import numpy as np

__all__ = ["solve_thing"]

def _inner(nodes):
    for node in nodes:
        buffer = np.zeros(len(nodes))
    return buffer

def solve_thing(nodes):
    return _inner(nodes)
'''


class TestHotLoopAllocationRule:
    def test_undeclared_hot_path_allocation_fires(self, tmp_path):
        package = write_package(tmp_path, "r501pkg", {"mod": R501_BAD})
        findings = run_cost_rules(package, "R501")
        assert len(findings) == 1
        assert "allocates inside an O(n) loop" in findings[0].message

    def test_declaring_the_bound_settles_it(self, tmp_path):
        declared = R501_BAD.replace(
            "def _inner(nodes):",
            'from repro._validation import cost\n\n'
            '@cost("n**2")\ndef _inner(nodes):',
        )
        package = write_package(tmp_path, "r501ok", {"mod": declared})
        assert run_cost_rules(package, "R501") == []

    def test_hoisted_allocation_is_silent(self, tmp_path):
        hoisted = R501_BAD.replace(
            "    for node in nodes:\n        buffer = np.zeros(len(nodes))",
            "    buffer = np.zeros(len(nodes))\n    for node in nodes:\n        pass",
        )
        package = write_package(tmp_path, "r501h", {"mod": hoisted})
        assert run_cost_rules(package, "R501") == []

    def test_off_hot_path_allocation_is_silent(self, tmp_path):
        cold = R501_BAD.replace(
            '__all__ = ["solve_thing"]', "__all__ = []"
        ).replace("def solve_thing", "def report_thing")
        package = write_package(tmp_path, "r501cold", {"mod": cold})
        assert run_cost_rules(package, "R501") == []

    def test_rule_is_registered(self):
        assert isinstance(registered_rules()["R501"], HotLoopAllocationRule)


# -- R502: dense metric builds behind scale='large' ---------------------------------


R502_BAD = '''
"""m."""

from repro._validation import cost
from repro.network.metric import Metric

__all__ = ["solve_thing"]

def _build(network):
    return Metric.from_network(network)

@cost("n**2", scale="large")
def solve_thing(network):
    return _build(network)
'''


class TestDenseMetricScaleRule:
    def test_scale_large_reaching_dense_build_fires(self, tmp_path):
        package = write_package(tmp_path, "r502pkg", {"mod": R502_BAD})
        findings = run_cost_rules(package, "R502")
        assert len(findings) == 1
        assert "scale='large'" in findings[0].message
        assert "all-pairs" in findings[0].message

    def test_untagged_function_may_build_dense(self, tmp_path):
        untagged = R502_BAD.replace(
            '@cost("n**2", scale="large")', '@cost("n**2")'
        )
        package = write_package(tmp_path, "r502ok", {"mod": untagged})
        assert run_cost_rules(package, "R502") == []

    def test_batched_with_explicit_sources_is_sparse(self, tmp_path):
        sparse = R502_BAD.replace(
            "from repro.network.metric import Metric",
            "from repro.network.metric import dijkstra_batched",
        ).replace(
            "return Metric.from_network(network)",
            "return dijkstra_batched(network, sources=[0])",
        )
        package = write_package(tmp_path, "r502sp", {"mod": sparse})
        assert run_cost_rules(package, "R502") == []

    def test_rule_is_registered(self):
        assert isinstance(registered_rules()["R502"], DenseMetricScaleRule)


# -- R503: reference oracles on hot paths -------------------------------------------


R503_BAD = '''
"""m."""

__all__ = ["solve_thing"]

def delay_reference(xs):
    return sum(xs)

def solve_thing(xs):
    return delay_reference(xs)
'''


class TestReferenceOnHotPathRule:
    def test_oracle_call_on_hot_path_fires(self, tmp_path):
        package = write_package(tmp_path, "r503pkg", {"mod": R503_BAD})
        findings = run_cost_rules(package, "R503")
        assert len(findings) == 1
        assert "delay_reference" in findings[0].message
        assert "vectorized twin" in findings[0].message

    def test_vectorized_twin_is_fine(self, tmp_path):
        fixed = R503_BAD.replace(
            "return delay_reference(xs)", "return delay(xs)"
        ).replace("def delay_reference", "def delay")
        package = write_package(tmp_path, "r503ok", {"mod": fixed})
        assert run_cost_rules(package, "R503") == []

    def test_oracles_outside_the_hot_set_are_fine(self, tmp_path):
        cold = R503_BAD.replace(
            '__all__ = ["solve_thing"]', "__all__ = []"
        ).replace("def solve_thing", "def check_thing")
        package = write_package(tmp_path, "r503cold", {"mod": cold})
        assert run_cost_rules(package, "R503") == []

    def test_rule_is_registered(self):
        assert isinstance(registered_rules()["R503"], ReferenceOnHotPathRule)


# -- R504: profile-guided verification ----------------------------------------------


R504_PACKAGE = '''
"""m."""

from repro._validation import cost

__all__ = ["solve_thing"]

@cost("n")
def solve_thing(nodes):
    for node in nodes:
        pass
    return 0
'''


class TestStaleCostDeclarationRule:
    """R504 against *recorded fixture telemetry* — no live timing."""

    def _context(self, tmp_path: Path, observations: list[CostObservation]):
        package = write_package(tmp_path, "r504pkg", {"mod": R504_PACKAGE})
        program = build_context(package)
        return build_cost_context(program, telemetry=observations)

    @staticmethod
    def _observe(sizes_seconds: list[tuple[int, float]]):
        return [
            CostObservation(
                function="r504pkg.mod.solve_thing",
                symbol="n",
                size=size,
                seconds=seconds,
            )
            for size, seconds in sizes_seconds
        ]

    def test_falsified_declaration_is_flagged(self, tmp_path):
        """The acceptance-criteria regression: declared O(n), measured n^2."""
        context = self._context(
            tmp_path, self._observe([(64, 0.10), (256, 1.60)])
        )
        stale = stale_declarations(context.costs, context.telemetry)
        assert len(stale) == 1
        assert stale[0].symbol == "n"
        assert stale[0].declared_degree == 1.0
        assert stale[0].fitted_exponent == pytest.approx(2.0)
        findings = list(
            StaleCostDeclarationRule().check_cost(context)
        )
        assert len(findings) == 1
        assert "n^2.00" in findings[0].message
        assert "update the declaration" in findings[0].message

    def test_measuring_better_than_declared_is_never_a_finding(self, tmp_path):
        context = self._context(
            tmp_path, self._observe([(64, 0.10), (256, 0.40)])
        )
        assert stale_declarations(context.costs, context.telemetry) == ()

    def test_tolerance_absorbs_log_factor_noise(self, tmp_path):
        # n log n over a 4x range fits ~1.17 — within 1 + R504_TOLERANCE.
        context = self._context(
            tmp_path, self._observe([(64, 0.064), (256, 0.3413)])
        )
        assert R504_TOLERANCE == pytest.approx(0.35)
        assert stale_declarations(context.costs, context.telemetry) == ()

    def test_single_size_groups_are_skipped(self, tmp_path):
        context = self._context(
            tmp_path, self._observe([(64, 0.1), (64, 99.0)])
        )
        assert stale_declarations(context.costs, context.telemetry) == ()

    def test_unknown_functions_are_skipped(self, tmp_path):
        observations = [
            CostObservation("r504pkg.mod.someone_else", "n", 64, 1.0),
            CostObservation("r504pkg.mod.someone_else", "n", 256, 64.0),
        ]
        context = self._context(tmp_path, observations)
        assert stale_declarations(context.costs, context.telemetry) == ()

    def test_rule_is_silent_without_telemetry(self, tmp_path):
        context = self._context(tmp_path, [])
        assert list(StaleCostDeclarationRule().check_cost(context)) == []
        assert isinstance(registered_rules()["R504"], StaleCostDeclarationRule)

    def test_profile_check_cli_flags_the_lie(self, tmp_path, capsys):
        """End-to-end: ``repro lint --profile-check`` exits 1 on a stale bound."""
        package = write_package(tmp_path, "r504cli", {"mod": R504_PACKAGE})
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-lint]\nlibrary-packages = ["r504cli"]\n',
            encoding="utf-8",
        )
        telemetry = telemetry_file(
            tmp_path,
            [
                {
                    "function": "r504cli.mod.solve_thing",
                    "symbol": "n",
                    "size": size,
                    "seconds": seconds,
                }
                for size, seconds in [(64, 0.10), (256, 1.60)]
            ],
        )
        code = lint_main(
            [
                str(package),
                "--select",
                "R504",
                "--profile-check",
                str(telemetry),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "R504" in out and "n^2.00" in out


class TestTelemetrySchema:
    def test_loader_round_trips_a_valid_file(self, tmp_path):
        path = telemetry_file(
            tmp_path,
            [{"function": "a.b", "symbol": "q", "size": 10, "seconds": 0.5}],
        )
        observations = load_cost_telemetry(path)
        assert observations == (
            CostObservation(function="a.b", symbol="q", size=10, seconds=0.5),
        )

    def test_schema_rejects_bad_rows(self):
        problems = validate_cost_telemetry(
            {
                "kind": TELEMETRY_KIND,
                "version": TELEMETRY_VERSION,
                "observations": [
                    {"function": 3, "symbol": "z", "size": 0, "seconds": -1},
                ],
            }
        )
        assert len(problems) == 4

    def test_schema_rejects_wrong_kind_and_shape(self):
        assert validate_cost_telemetry([]) == (
            "cost telemetry must be a JSON object",
        )
        problems = validate_cost_telemetry({"kind": "nope", "version": 99})
        assert any(TELEMETRY_KIND in p for p in problems)

    def test_loader_raises_lint_error_on_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(LintError):
            load_cost_telemetry(path)
        with pytest.raises(LintError):
            load_cost_telemetry(tmp_path / "missing.json")


def test_fit_scaling_exponent_recovers_known_slopes():
    assert fit_scaling_exponent([100, 200, 400], [1.0, 4.0, 16.0]) == (
        pytest.approx(2.0)
    )
    assert fit_scaling_exponent([10, 100], [3.0, 30.0]) == pytest.approx(1.0)


def test_fit_scaling_exponent_validates_inputs():
    with pytest.raises(ValidationError):
        fit_scaling_exponent([10], [1.0])
    with pytest.raises(ValidationError):
        fit_scaling_exponent([10, 10], [1.0, 2.0])
    with pytest.raises(ValidationError):
        fit_scaling_exponent([10, 20], [0.0, 2.0])


# -- the cost-table document and renderers ------------------------------------------


class TestCostTable:
    def _document(self, tmp_path: Path, source: str = ENTRY_OK):
        package = write_package(tmp_path, "tblpkg", {"mod": source})
        program = build_context(package)
        return build_cost_table(program, analyze_costs(program))

    def test_schema_and_coverage(self, tmp_path):
        document = self._document(tmp_path)
        assert document["kind"] == COST_TABLE_KIND
        assert document["version"] == COST_TABLE_VERSION
        assert document["symbols"] == list(COST_SYMBOLS)
        functions = document["functions"]
        assert list(functions) == ["tblpkg.mod.solve_thing"]
        entry = functions["tblpkg.mod.solve_thing"]
        assert entry["declared"] == "n * q"
        assert entry["inferred"] == "n * q"
        assert entry["covered"] is True
        assert entry["entry_point"] is True

    def test_undeclared_entry_point_shows_as_undeclared(self, tmp_path):
        document = self._document(tmp_path, ENTRY_UNDECLARED)
        text = render_cost_table_text(document)
        assert "undeclared" in text

    def test_text_renderer_headers_and_verdicts(self, tmp_path):
        text = render_cost_table_text(self._document(tmp_path))
        lines = text.splitlines()
        assert lines[0].split() == [
            "function", "declared", "inferred", "scale", "verdict",
        ]
        assert "ok" in lines[-1]

    def test_markdown_renderer_is_a_table(self, tmp_path):
        markdown = render_cost_table_markdown(self._document(tmp_path))
        assert markdown.startswith("| function |")
        assert "| `n * q` | `n * q` |" in markdown

    def test_json_renderer_round_trips(self, tmp_path):
        document = self._document(tmp_path)
        assert json.loads(render_cost_table_json(document)) == document

    def test_mismatch_renders_loudly(self, tmp_path):
        text = render_cost_table_text(self._document(tmp_path, ENTRY_LYING))
        assert "MISMATCH" in text


def test_hot_path_is_seeded_from_entry_points_not_cli_roots(tmp_path):
    package = write_package(
        tmp_path,
        "hotpkg",
        {
            "mod": '''
            """m."""

            __all__ = ["solve_thing"]

            def _support(xs):
                return list(xs)

            def _bench_helper(xs):
                return list(xs)

            def solve_thing(xs):
                return _support(xs)
            '''
        },
    )
    program = build_context(package)
    hot = solver_reachable(program)
    assert "hotpkg.mod.solve_thing" in hot
    assert "hotpkg.mod._support" in hot
    assert "hotpkg.mod._bench_helper" not in hot
    assert reachable_from(program, []) == frozenset()


def test_witness_types_capture_line_and_detail(tmp_path):
    package = write_package(
        tmp_path,
        "witpkg",
        {
            "mod": '''
            """m."""

            import numpy as np
            from repro.network.metric import Metric

            __all__ = []

            def worker(nodes, network):
                for node in nodes:
                    scratch = np.zeros(3)
                metric = Metric.from_network(network)
                check_reference(nodes)
                return scratch, metric

            def check_reference(nodes):
                return len(nodes)
            '''
        },
    )
    record = cost_by_name(costs_of(package), "worker")
    local = record.local
    assert isinstance(local, LocalCost)
    (allocation,) = local.allocations
    assert isinstance(allocation, AllocationSite)
    assert "O(n) loop" in allocation.detail
    (dense,) = local.dense_builds
    assert isinstance(dense, DenseBuildSite)
    assert "all-pairs" in dense.detail
    (oracle,) = local.reference_calls
    assert isinstance(oracle, ReferenceCallSite)
    assert oracle.text == "check_reference"


# -- rule selection: tier prefixes, baselines, suppressions -------------------------


class TestRuleSelection:
    def test_prefix_matching_semantics(self):
        assert _rule_matches("R500", ["R5"])
        assert _rule_matches("R504", ["R50"])
        assert _rule_matches("R500", ["R500"])
        assert not _rule_matches("R400", ["R5"])
        assert not _rule_matches("R500", ["R504"])
        # A full-length id never acts as a prefix of a longer id.
        assert not _rule_matches("R5000", ["R500"])

    def test_config_wants_honors_prefixes(self):
        config = replace(LintConfig(), select=frozenset({"R5"}))
        assert config.wants("R503")
        assert not config.wants("R203")
        ignored = replace(LintConfig(), ignore=frozenset({"R5"}))
        assert not ignored.wants("R500")
        assert ignored.wants("R400")

    def test_ignore_prefix_beats_explicit_select(self):
        config = replace(
            LintConfig(),
            select=frozenset({"R500"}),
            ignore=frozenset({"R5"}),
        )
        assert not config.wants("R500")

    def test_tier_prefix_selects_the_whole_cost_tier(self, tmp_path):
        package = write_package(tmp_path, "selpkg", {"mod": ENTRY_UNDECLARED})
        config = replace(
            LintConfig(),
            select=frozenset({"R5"}),
            validated_packages=(),
            library_packages=("selpkg",),
        )
        findings = lint_paths([package], config, cost=True)
        assert {f.rule_id for f in findings} == {"R500"}

    def test_inline_suppression_silences_a_cost_finding(self, tmp_path):
        suppressed = ENTRY_UNDECLARED.replace(
            "def solve_thing(nodes, quorums):",
            "def solve_thing(nodes, quorums):  # repro-lint: disable=R500",
        )
        package = write_package(tmp_path, "suppkg", {"mod": suppressed})
        assert run_cost_rules(package, "R500") == []

    def test_baseline_filters_known_findings(self, tmp_path, capsys):
        package = write_package(tmp_path, "basepkg", {"mod": ENTRY_UNDECLARED})
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-lint]\nlibrary-packages = ["basepkg"]\n',
            encoding="utf-8",
        )
        argv = [str(package), "--select", "R5", "--cost"]
        assert lint_main([*argv, "--format", "json"]) == 1
        report = capsys.readouterr().out
        assert json.loads(report)["findings"]
        baseline = tmp_path / "baseline.json"
        baseline.write_text(report, encoding="utf-8")
        assert lint_main([*argv, "--baseline", str(baseline)]) == 0
        assert "clean" in capsys.readouterr().out
