"""Run the library's docstring examples as tests.

Docstring examples are the first code users copy; this keeps every
``>>>`` block in the package true.  Modules are imported and scanned
with the stdlib doctest runner.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    names = ["repro"]
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        # repro.__main__ executes the CLI on import; skip it.
        if module_info.name.endswith("__main__"):
            continue
        names.append(module_info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
        verbose=False,
    )
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"


def test_some_modules_have_examples():
    """Guard against the doctest suite silently testing nothing."""
    total = 0
    for name in _all_modules():
        module = importlib.import_module(name)
        finder = doctest.DocTestFinder()
        total += sum(len(t.examples) for t in finder.find(module))
    assert total >= 10
