"""Tests for the classical quorum constructions.

Every construction is re-verified against the intersection property
(they are built with ``check=False`` for speed) and against its
published combinatorial parameters.
"""

from math import comb

import pytest

from repro.exceptions import ValidationError
from repro.quorums import (
    AccessStrategy,
    bgrid,
    complete_binary_tree_nodes,
    compose,
    crumbling_wall,
    cw_log,
    grid,
    grid_element,
    grid_quorum_index,
    is_prime,
    majority,
    paths_system,
    projective_plane,
    rectangular_grid,
    recursive_majority,
    singleton,
    star,
    threshold,
    tree_quorum_system,
    weighted_majority,
    wheel,
)

ALL_SMALL_SYSTEMS = [
    majority(5),
    bgrid(2, 2, 1),
    paths_system(2),
    threshold(6, 4),
    grid(3),
    rectangular_grid(2, 4),
    projective_plane(2),
    tree_quorum_system(2),
    crumbling_wall([1, 2, 3]),
    cw_log(3),
    wheel(5),
    singleton(),
    star(4),
    recursive_majority(3, 2),
    weighted_majority({"a": 3, "b": 2, "c": 2}),
]


@pytest.mark.parametrize("system", ALL_SMALL_SYSTEMS, ids=lambda s: s.name)
def test_intersection_property_holds(system):
    system.verify_intersection()  # raises on violation


class TestMajority:
    def test_majority_parameters(self):
        qs = majority(5)
        assert len(qs) == comb(5, 3)
        assert all(len(q) == 3 for q in qs)

    def test_threshold_requires_intersection_condition(self):
        with pytest.raises(ValidationError, match="2t > n"):
            threshold(6, 3)

    def test_threshold_counts(self):
        qs = threshold(6, 4)
        assert len(qs) == comb(6, 4)
        assert qs.universe == tuple(range(6))

    def test_threshold_degree(self):
        qs = threshold(5, 3)
        for u in qs.universe:
            assert qs.element_degree(u) == comb(4, 2)

    def test_majority_even_universe(self):
        qs = majority(4)  # quorum size 3
        assert all(len(q) == 3 for q in qs)

    def test_enumeration_guard(self):
        with pytest.raises(ValidationError, match="guard"):
            threshold(60, 31)

    def test_weighted_majority_minimal_coalitions(self):
        qs = weighted_majority({"a": 3, "b": 1, "c": 1})
        # "a" alone holds 3 of 5 votes; any winning set contains "a".
        assert frozenset({"a"}) in set(qs.quorums)
        assert qs.is_coterie()

    def test_weighted_majority_equal_weights_matches_majority(self):
        weighted = weighted_majority({i: 1.0 for i in range(5)})
        plain = majority(5)
        assert set(weighted.quorums) == set(plain.quorums)

    def test_weighted_majority_validation(self):
        with pytest.raises(ValidationError):
            weighted_majority({})
        with pytest.raises(ValidationError):
            weighted_majority({"a": -1.0})
        with pytest.raises(ValidationError, match="20"):
            weighted_majority({i: 1.0 for i in range(21)})


class TestGrid:
    def test_grid_counts(self):
        k = 4
        qs = grid(k)
        assert len(qs) == k * k
        assert qs.universe_size == k * k
        assert all(len(q) == 2 * k - 1 for q in qs)

    def test_grid_quorum_contains_row_and_column(self):
        k = 3
        qs = grid(k)
        quorum = qs.quorums[grid_quorum_index(k, 1, 2)]
        assert all((1, c) in quorum for c in range(k))
        assert all((r, 2) in quorum for r in range(k))

    def test_rectangular_grid(self):
        qs = rectangular_grid(2, 3)
        assert qs.universe_size == 6
        assert all(len(q) == 2 + 3 - 1 for q in qs)

    def test_degenerate_single_row_deduplicates(self):
        qs = rectangular_grid(1, 4)
        assert len(qs) == 1  # every quorum equals the single row
        assert len(qs.quorums[0]) == 4

    def test_grid_element_degree(self):
        k = 3
        qs = grid(k)
        for u in qs.universe:
            assert qs.element_degree(u) == 2 * k - 1

    def test_grid_element_names_universe_positions(self):
        k = 3
        qs = grid(k)
        assert set(qs.universe) == {
            grid_element(r, c) for r in range(k) for c in range(k)
        }
        with pytest.raises(ValidationError):
            grid_element(-1, 0)
        with pytest.raises(ValidationError):
            grid_element(0, -2)


class TestProjectivePlane:
    def test_is_prime(self):
        assert [q for q in range(2, 20) if is_prime(q)] == [2, 3, 5, 7, 11, 13, 17, 19]
        assert not is_prime(1)
        assert not is_prime(0)

    @pytest.mark.parametrize("q", [2, 3, 5])
    def test_plane_parameters(self, q):
        qs = projective_plane(q)
        n = q * q + q + 1
        assert qs.universe_size == n
        assert len(qs) == n
        assert all(len(line) == q + 1 for line in qs)

    def test_any_two_lines_meet_in_exactly_one_point(self):
        qs = projective_plane(3)
        quorums = qs.quorums
        for i, a in enumerate(quorums):
            for b in quorums[i + 1 :]:
                assert len(a & b) == 1

    def test_every_point_on_q_plus_1_lines(self):
        q = 3
        qs = projective_plane(q)
        for u in qs.universe:
            assert qs.element_degree(u) == q + 1

    def test_non_prime_rejected(self):
        with pytest.raises(ValidationError, match="prime"):
            projective_plane(4)

    def test_fpp_load_is_optimal_order(self):
        q = 3
        qs = projective_plane(q)
        p = AccessStrategy.uniform(qs)
        n = q * q + q + 1
        assert p.max_load() == pytest.approx((q + 1) / n)


class TestTree:
    def test_node_labels(self):
        assert complete_binary_tree_nodes(2) == list(range(1, 8))

    def test_height_zero(self):
        qs = tree_quorum_system(0)
        assert set(qs.quorums) == {frozenset({1})}

    def test_height_one_quorums(self):
        qs = tree_quorum_system(1)
        expected = {
            frozenset({1, 2}),
            frozenset({1, 3}),
            frozenset({2, 3}),
        }
        assert set(qs.quorums) == expected

    def test_quorum_count_recurrence(self):
        # m(h) = 2 m(h-1) + m(h-1)^2 counts with duplicates possible only
        # at leaves; for h <= 3 the families are duplicate-free.
        counts = {h: len(tree_quorum_system(h)) for h in range(3)}
        assert counts[0] == 1
        assert counts[1] == 3
        assert counts[2] == 2 * 3 + 3 * 3

    def test_height_guard(self):
        with pytest.raises(ValidationError, match="height"):
            tree_quorum_system(5)

    def test_min_quorum_is_root_path(self):
        qs = tree_quorum_system(2)
        assert qs.min_quorum_size() == 3  # root-to-leaf path length h+1


class TestCrumblingWalls:
    def test_small_wall_quorums(self):
        wall = crumbling_wall([1, 2])
        assert sorted(sorted(q) for q in wall.quorums) == [
            [(0, 0), (1, 0)],
            [(0, 0), (1, 1)],
            [(1, 0), (1, 1)],
        ]

    def test_bottom_row_is_a_quorum(self):
        wall = crumbling_wall([2, 3])
        assert frozenset({(1, 0), (1, 1), (1, 2)}) in set(wall.quorums)

    def test_cw_log_row_widths(self):
        wall = cw_log(4)
        assert wall.universe_size == 1 + 2 + 3 + 4

    def test_validation(self):
        with pytest.raises(ValidationError):
            crumbling_wall([])
        with pytest.raises(ValidationError):
            crumbling_wall([0, 2])


class TestWheelStarSingleton:
    def test_wheel_structure(self):
        qs = wheel(5)
        assert len(qs) == 5  # rim + 4 spokes pairs
        assert frozenset({1, 2, 3, 4}) in set(qs.quorums)

    def test_wheel_minimum_size(self):
        with pytest.raises(ValidationError):
            wheel(2)

    def test_singleton(self):
        qs = singleton("only")
        assert qs.universe == ("only",)
        assert len(qs) == 1

    def test_star_hub_in_every_quorum(self):
        qs = star(5)
        assert all(0 in q for q in qs.quorums)
        p = AccessStrategy.uniform(qs)
        assert p.load(0) == pytest.approx(1.0)


class TestComposition:
    def test_recursive_majority_universe_size(self):
        qs = recursive_majority(3, 2)
        assert qs.universe_size == 9
        assert len(qs) == 27  # 3 outer choices x 3^2... = C(3,2)^(1+2)

    def test_recursive_majority_depth_one_is_plain_majority(self):
        deep = recursive_majority(3, 1)
        plain = majority(3)
        assert len(deep) == len(plain)
        assert deep.universe_size == plain.universe_size

    def test_compose_missing_inner_rejected(self):
        outer = majority(3)
        with pytest.raises(ValidationError, match="slots"):
            compose(outer, {0: majority(3)})

    def test_compose_quorum_structure(self):
        outer = majority(3)
        inner = {slot: majority(3) for slot in outer.universe}
        composed = compose(outer, inner)
        # Each composed quorum covers 2 slots x 2 inner elements.
        assert all(len(q) == 4 for q in composed.quorums)
        composed.verify_intersection()
