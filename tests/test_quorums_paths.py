"""Tests for the monotone Paths quorum system."""

import pytest

from repro.exceptions import ValidationError
from repro.quorums import AccessStrategy, optimal_strategy, paths_system


class TestStructure:
    def test_k1_is_singleton(self):
        system = paths_system(1)
        assert len(system) == 1
        assert system.quorums[0] == frozenset({(0, 0)})

    def test_k2_family(self):
        system = paths_system(2)
        assert system.universe_size == 4
        assert len(system) == 5
        # The full anti-diagonal staircase union is one of them.
        assert any(len(q) == 4 for q in system.quorums)

    def test_intersection_verified_at_construction(self):
        # check=True in the constructor; re-verify for k=3 regardless.
        paths_system(3).verify_intersection()

    def test_quorum_sizes_bounded_by_two_staircases(self):
        k = 3
        system = paths_system(k)
        # Each staircase has between k and 2k-1 cells; the union of two
        # crossing staircases has at most 2(2k-1) - 1 cells.
        assert system.min_quorum_size() >= k
        assert system.max_quorum_size() <= 2 * (2 * k - 1) - 1

    def test_every_quorum_crosses_both_ways(self):
        k = 3
        system = paths_system(k)
        for quorum in system.quorums:
            columns = {c for _, c in quorum}
            rows = {r for r, _ in quorum}
            assert columns == set(range(k))  # touches every column
            assert rows == set(range(k))  # touches every row

    def test_enumeration_guard(self):
        with pytest.raises(ValidationError, match="enumerate"):
            paths_system(7)


class TestLoad:
    def test_paths_load_is_low(self):
        """Paths load should be O(1/sqrt(n))-ish: well below 1 and
        comparable to the grid at the same size."""
        system = paths_system(3)
        result = optimal_strategy(system)
        assert result.load < 0.75
        uniform = AccessStrategy.uniform(system)
        assert result.load <= uniform.max_load() + 1e-9

    def test_center_cell_is_hottest_under_uniform(self):
        """Crossing staircases concentrate on the center of the lattice."""
        system = paths_system(3)
        uniform = AccessStrategy.uniform(system)
        center_load = uniform.load((1, 1))
        corner_load = uniform.load((0, 2))
        assert center_load > corner_load
