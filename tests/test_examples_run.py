"""Integration: every example script runs cleanly end to end.

Examples are the first thing users execute; this test keeps them green
against API changes by running each as a real subprocess (fresh
interpreter, no shared state).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 8


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"


def test_quickstart_mentions_guarantees():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert "approximation ratio" in result.stdout
    assert "load" in result.stdout
