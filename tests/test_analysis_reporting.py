"""Tests for the benchmark report tables."""

import pytest

from repro.analysis import ResultTable, check_mark, format_value


class TestFormatValue:
    def test_floats_rounded(self):
        assert format_value(3.14159, precision=3) == "3.14"

    def test_bools_are_checks(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "NO"

    def test_special_floats(self):
        assert format_value(float("nan")) == "nan"
        assert format_value(float("inf")) == "inf"
        assert format_value(float("-inf")) == "-inf"

    def test_other_types_pass_through(self):
        assert format_value("grid(3)") == "grid(3)"
        assert format_value(7) == "7"


class TestResultTable:
    def test_render_aligns_columns(self):
        table = ResultTable("demo", ["instance", "delay", "ok"])
        table.add_row(instance="majority(5)", delay=1.23456, ok=True)
        table.add_row(instance="grid(3)", delay=10.0, ok=False)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "== demo =="
        assert "instance" in lines[1] and "delay" in lines[1]
        # All data lines have equal width.
        assert len(lines[3]) == len(lines[4])

    def test_missing_column_rejected(self):
        table = ResultTable("t", ["a", "b"])
        with pytest.raises(ValueError, match="missing"):
            table.add_row(a=1)

    def test_unknown_column_rejected(self):
        table = ResultTable("t", ["a"])
        with pytest.raises(ValueError, match="unknown"):
            table.add_row(a=1, z=2)

    def test_all_rows_pass(self):
        table = ResultTable("t", ["check"])
        table.add_row(check=True)
        table.add_row(check=True)
        assert table.all_rows_pass("check")
        table.add_row(check=False)
        assert not table.all_rows_pass("check")

    def test_empty_table_renders(self):
        table = ResultTable("empty", ["a"])
        assert "empty" in table.render()

    def test_print_smoke(self, capsys):
        table = ResultTable("t", ["a"])
        table.add_row(a=1)
        table.print()
        captured = capsys.readouterr()
        assert "== t ==" in captured.out

    def test_check_mark(self):
        assert check_mark(True) == "yes"
        assert check_mark(False) == "NO"
