"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main, parse_network_spec, parse_system_spec
from repro.exceptions import ValidationError


class TestSpecParsing:
    @pytest.mark.parametrize(
        "spec, quorums, universe",
        [
            ("grid:3", 9, 9),
            ("majority:5", 10, 5),
            ("threshold:5:4", 5, 5),
            ("fpp:2", 7, 7),
            ("wheel:4", 4, 4),
            ("tree:1", 3, 3),
            ("cwlog:2", 3, 3),
            ("star:4", 4, 4),
        ],
    )
    def test_system_specs(self, spec, quorums, universe):
        system = parse_system_spec(spec)
        assert len(system) == quorums
        assert system.universe_size == universe

    @pytest.mark.parametrize(
        "spec, size",
        [
            ("path:5", 5),
            ("cycle:6", 6),
            ("star:7", 7),
            ("complete:4", 4),
            ("lattice:2:3", 6),
            ("geometric:8:0.5", 8),
            ("er:9:0.4", 9),
            ("waxman:10", 10),
            ("twocluster:3:5.0", 6),
            ("broom:3", 9),
        ],
    )
    def test_network_specs(self, spec, size):
        network = parse_network_spec(spec, seed=1)
        assert network.size == size
        assert network.is_connected()

    def test_random_networks_seeded(self):
        a = parse_network_spec("geometric:8:0.5", seed=3)
        b = parse_network_spec("geometric:8:0.5", seed=3)
        assert a.edges() == b.edges()

    def test_unknown_specs_rejected(self):
        with pytest.raises(ValidationError, match="unknown system"):
            parse_system_spec("pyramid:3")
        with pytest.raises(ValidationError, match="unknown network"):
            parse_network_spec("torus:3")
        with pytest.raises(ValidationError, match="integer"):
            parse_system_spec("grid:x")
        with pytest.raises(ValidationError, match="parameter"):
            parse_system_spec("grid:1:2")


class TestCommands:
    def test_system_command(self, capsys):
        assert main(["system", "grid:2"]) == 0
        out = capsys.readouterr().out
        assert "quorums" in out and "resilience" in out

    def test_system_command_with_optimal_load(self, capsys):
        assert main(["system", "wheel:4", "--optimal-load"]) == 0
        out = capsys.readouterr().out
        assert "Naor-Wool" in out

    def test_place_and_evaluate_roundtrip(self, capsys, tmp_path):
        out_file = tmp_path / "placement.json"
        code = main(
            [
                "place", "majority:3", "path:4",
                "--capacity", "1.0", "--out", str(out_file),
            ]
        )
        assert code == 0
        data = json.loads(out_file.read_text())
        assert data["kind"] == "placement"

        assert main(["evaluate", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "avg max-delay" in out
        assert "busiest node" in out

    def test_place_total_objective(self, capsys):
        code = main(
            ["place", "majority:3", "path:4", "--capacity", "1.0",
             "--objective", "total"]
        )
        assert code == 0
        assert "LP bound" in capsys.readouterr().out

    def test_place_optimal_strategy(self, capsys):
        code = main(
            ["place", "wheel:4", "path:5", "--capacity", "1.0",
             "--strategy", "optimal"]
        )
        assert code == 0

    def test_gap_command(self, capsys):
        assert main(["gap", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "integral_opt" in out

    def test_errors_return_code_2(self, capsys):
        assert main(["system", "bogus:1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_infeasible_place_reports_error(self, capsys):
        # Capacity too small for any element.
        code = main(["place", "majority:3", "path:4", "--capacity", "0.1"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
