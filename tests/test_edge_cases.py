"""Edge-case hardening across modules.

Behaviors that only show up at boundaries: single-node networks,
single-element universes, zero-probability quorums, degenerate
capacities, and empty-ish inputs.
"""

import math

import numpy as np
import pytest

from repro.core import (
    Placement,
    average_max_delay,
    average_total_delay,
    expected_max_delay,
    node_loads,
    relay_analysis,
    solve_qpp,
    solve_ssqpp,
    solve_total_delay,
)
from repro.exceptions import ValidationError
from repro.network import Network, path_network
from repro.quorums import AccessStrategy, QuorumSystem, singleton


class TestSingleNodeWorld:
    """Everything collapses gracefully on a one-node network."""

    @pytest.fixture
    def world(self):
        system = singleton("s")
        strategy = AccessStrategy.uniform(system)
        network = Network([0], [], capacities=5.0)
        placement = Placement(system, network, {"s": 0})
        return system, strategy, network, placement

    def test_all_delays_zero(self, world):
        _, strategy, _, placement = world
        assert average_max_delay(placement, strategy) == 0.0
        assert average_total_delay(placement, strategy) == 0.0

    def test_relay_factor_one(self, world):
        _, strategy, _, placement = world
        assert relay_analysis(placement, strategy).factor == 1.0

    def test_solvers_work(self, world):
        system, strategy, network, _ = world
        ssqpp = solve_ssqpp(system, strategy, network, 0)
        assert ssqpp.delay == 0.0
        qpp = solve_qpp(system, strategy, network)
        assert qpp.average_delay == 0.0
        total = solve_total_delay(system, strategy, network)
        assert total.delay == 0.0


class TestZeroProbabilityQuorums:
    def test_unsupported_quorums_do_not_affect_delay(self):
        """A quorum with p = 0 can sit arbitrarily far away."""
        system = QuorumSystem([{0, 1}, {0, 2}], universe=range(3))
        strategy = AccessStrategy.from_weights(system, {0: 1.0})  # only {0,1}
        network = path_network(10).with_capacities(10.0)
        near = Placement(system, network, {0: 0, 1: 0, 2: 9})
        assert expected_max_delay(near, strategy, 0) == 0.0

    def test_zero_load_element_fits_anywhere(self):
        """Element 2 carries zero load: capacity 0 nodes can host it."""
        system = QuorumSystem([{0, 1}, {0, 2}], universe=range(3))
        strategy = AccessStrategy.from_weights(system, {0: 1.0})
        capacities = {0: 1.0, 1: 1.0, 2: 0.0}
        network = path_network(3).with_capacities(capacities)
        result = solve_ssqpp(system, strategy, network, 0)
        assert result.within_guarantees

    def test_node_loads_ignore_unsupported_quorums(self):
        system = QuorumSystem([{0, 1}, {0, 2}], universe=range(3))
        strategy = AccessStrategy.from_weights(system, {0: 1.0})
        network = path_network(3).with_capacities(1.0)
        placement = Placement(system, network, {0: 0, 1: 1, 2: 2})
        loads = node_loads(placement, strategy)
        assert loads[2] == 0.0


class TestDegenerateCapacities:
    def test_all_zero_capacity_with_positive_load_is_infeasible(self):
        from repro.exceptions import InfeasibleError

        system = singleton("s")
        strategy = AccessStrategy.uniform(system)
        network = path_network(3).with_capacities(0.0)
        with pytest.raises(InfeasibleError):
            solve_ssqpp(system, strategy, network, 0)

    def test_exactly_tight_capacity_is_feasible(self):
        system = singleton("s")
        strategy = AccessStrategy.uniform(system)
        network = path_network(2).with_capacities(1.0)  # load = cap = 1
        result = solve_ssqpp(system, strategy, network, 0)
        assert result.delay == pytest.approx(0.0)


class TestMetricEdges:
    def test_two_node_metric(self):
        network = Network([0, 1], [(0, 1, 7.0)])
        metric = network.metric()
        assert metric.diameter() == 7.0
        assert metric.median() in (0, 1)
        assert metric.k_centers(2) != [metric.median()] * 2

    def test_distances_from_returns_read_only_row(self):
        metric = path_network(3).metric()
        row = metric.distances_from(0)
        with pytest.raises(ValueError):
            row[0] = 99.0


class TestStrategySupportEdge:
    def test_point_mass_support_and_sampling(self):
        system = QuorumSystem([{0, 1}, {1, 2}], universe=range(3))
        strategy = AccessStrategy.point_mass(system, 1)
        assert strategy.support() == (1,)
        rng = np.random.default_rng(0)
        assert set(np.asarray(strategy.sample(rng, size=20)).tolist()) == {1}

    def test_expected_quorum_size_single_quorum(self):
        system = QuorumSystem([{0, 1, 2}])
        strategy = AccessStrategy.uniform(system)
        assert strategy.expected_quorum_size() == 3.0


class TestNumericRobustness:
    def test_tiny_edge_lengths(self):
        network = Network([0, 1, 2], [(0, 1, 1e-9), (1, 2, 1e-9)])
        metric = network.metric()
        assert metric.distance(0, 2) == pytest.approx(2e-9)

    def test_huge_edge_lengths(self):
        network = Network([0, 1], [(0, 1, 1e12)])
        assert network.metric().diameter() == pytest.approx(1e12)

    def test_mixed_scale_instance_solves(self):
        system = QuorumSystem([{0, 1}], universe=range(2))
        strategy = AccessStrategy.uniform(system)
        network = Network(
            [0, 1, 2], [(0, 1, 1e-6), (1, 2, 1e6)], capacities=1.0
        )
        result = solve_ssqpp(system, strategy, network, 0)
        assert math.isfinite(result.delay)
        assert result.within_guarantees
