"""Golden-value regression tests.

Reproduction libraries live and die by numerical stability: a silent
change in the LP construction, the metric, or a construction's quorum
order shifts every downstream number.  These tests pin exact values
(computed at release time, asserted with tight tolerances) for a handful
of fully deterministic instances, so any behavioral drift fails loudly
with a clear diff point.

If a deliberate algorithm change moves one of these numbers, update the
golden value *in the same commit* and say why in the commit message.
"""

import numpy as np
import pytest

from repro.analysis import broom_gap_instance
from repro.core import (
    average_max_delay,
    majority_delay_formula,
    optimal_grid_placement,
    solve_qpp_exact,
    solve_ssqpp,
    solve_total_delay,
)
from repro.network import broom_network, path_network
from repro.quorums import AccessStrategy, grid, majority, system_load


class TestGoldenValues:
    def test_broom_lp_value_k3(self):
        """LP optimum of the Figure 1 instance at k = 3."""
        instance = broom_gap_instance(3)
        assert instance.lp_value == pytest.approx(1.2222222222, abs=1e-6)
        assert instance.integral_optimum == 3.0

    def test_majority_formula_path(self):
        """Eq. (19) for majority(5) on distances 0..4: hand-derived
        (1/10) * (4*C(4,2) + 3*C(3,2) + 2*C(2,2)) = 35/10."""
        value = majority_delay_formula(5, 3, [0.0, 1.0, 2.0, 3.0, 4.0])
        assert value == pytest.approx(3.5)

    def test_grid_layout_on_path(self):
        """Concentric layout for grid(2) at the end of a 6-path with unit
        capacities.  Slots land on nodes 0..3 (loads 3/4 each); the
        distance matrix is [[3,2],[1,0]] and the average quorum max is
        (3+3+3+2)/4 = 2.75."""
        network = path_network(6).with_capacities(1.0)
        result = optimal_grid_placement(network, 0, 2)
        assert result.delay == pytest.approx(2.75)

    def test_system_loads_closed_forms(self):
        assert system_load(grid(4)) == pytest.approx(7 / 16, abs=1e-8)
        assert system_load(majority(7)) == pytest.approx(4 / 7, abs=1e-8)

    def test_exact_qpp_on_cycle(self):
        """majority(3) on a 6-cycle with capacity 1 (pinned at release)."""
        from repro.network import cycle_network

        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        network = cycle_network(6).with_capacities(1.0)
        exact = solve_qpp_exact(system, strategy, network)
        assert exact.objective == pytest.approx(2.0555555556, abs=1e-6)

    def test_ssqpp_lp_value_broom(self):
        """The single-source LP value for majority(3) at the handle of
        broom(3) with capacity 1 (deterministic instance)."""
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        network = broom_network(3).with_capacities(1.0)
        result = solve_ssqpp(system, strategy, network, 0, alpha=2.0)
        # Loads are 2/3 with unit capacities; the fractional optimum
        # half-completes quorums inside node 0 (value pinned at release).
        assert result.lp_value == pytest.approx(0.5, abs=1e-6)
        assert result.delay <= result.delay_bound + 1e-9

    def test_total_delay_on_path(self):
        """majority(3) on path(5), capacity 10 (uncapacitated in effect):
        everything lands on the median (node 2); avg total delay =
        3 elements x load 2/3 x avg distance 6/5 = 2.4."""
        system = majority(3)
        strategy = AccessStrategy.uniform(system)
        network = path_network(5).with_capacities(10.0)
        result = solve_total_delay(system, strategy, network)
        assert result.delay == pytest.approx(2.4)

    def test_deterministic_generators_fingerprint(self):
        """Edge-count fingerprints of seeded random generators."""
        from repro.network import erdos_renyi_network, random_geometric_network

        er = erdos_renyi_network(15, 0.3, rng=np.random.default_rng(42))
        geo = random_geometric_network(15, 0.4, rng=np.random.default_rng(42))
        assert er.edge_count == 30
        assert geo.edge_count == 33
